"""Regenerate ``tests/data/chaos_small.jsonl``, the checked-in chaos trace.

The trace is a small deterministic fault run used by the trace-inspector
smoke tests and the CI docs job: an 8x8 grid with a smooth scalar field,
ELink with explicit signalling and failure detection, and two scheduled
fail-stop crashes inside the protocol's kappa window (one mid-level
sentinel, so the sentinel-failover machinery fires and the trace contains
a full crash -> detection -> repair chain).

Everything is seeded and the fault plan is explicit (no randomness), so
rerunning this script after a behaviour change is the way to refresh the
fixture::

    PYTHONPATH=src python tools/make_chaos_trace.py [OUT_PATH]

The default output path is ``tests/data/chaos_small.jsonl`` relative to
the repository root.  Commit the regenerated file together with the
change that altered the trace, and sanity-check it first with::

    python -m repro trace tests/data/chaos_small.jsonl --repairs
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.core.elink import compute_kappa
from repro.geometry import QuadTreeDecomposition, grid_topology
from repro.obs import Tracer
from repro.sim import EventKernel, FaultInjector, FaultPlan, Network

SIDE = 8
DELTA = 1.0


def build_trace() -> tuple[Tracer, dict]:
    """Run the canonical small chaos run; returns (tracer, summary dict)."""
    topology = grid_topology(SIDE, SIDE)
    features = {
        node: np.array([(x + y) / 10.0])
        for node, (x, y) in topology.positions.items()
    }
    from repro.features import EuclideanMetric

    metric = EuclideanMetric()
    config = ELinkConfig(delta=DELTA, signalling="explicit", failure_detection=True)
    kappa = compute_kappa(topology.num_nodes, config.gamma)
    quadtree = QuadTreeDecomposition(topology)

    # Two explicit crashes inside the kappa window: a sentinel (so the
    # probe/takeover machinery produces a repair chain) and a leaf.  The
    # root is left alone -- it drives the explicit-mode round cascade.
    sentinels = sorted(
        (v for level in quadtree.sentinel_sets[1:] for v in level if v != quadtree.root),
        key=repr,
    )
    leaves = sorted(
        (v for v in topology.graph.nodes if quadtree.level_of[v] == quadtree.depth),
        key=repr,
    )
    plan = FaultPlan()
    plan.crash(0.40 * kappa, sentinels[len(sentinels) // 2])
    plan.crash(0.15 * kappa, leaves[len(leaves) // 3])

    tracer = Tracer()
    network = Network(topology.graph, EventKernel(), tracer=tracer)
    injector = FaultInjector(network, plan)
    result = run_elink(
        topology, features, metric, config,
        quadtree=quadtree, network=network, injector=injector, tracer=tracer,
    )
    summary = {
        "clusters": result.num_clusters,
        "messages": result.total_messages,
        "crashed": sorted(injector.crash_times, key=repr),
        "repairs": len(injector.repair_latencies()),
        "events": tracer.emitted,
    }
    return tracer, summary


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point; writes the fixture and prints a summary."""
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(__file__).resolve().parent.parent
    out = pathlib.Path(argv[0]) if argv else root / "tests" / "data" / "chaos_small.jsonl"
    tracer, summary = build_trace()
    out.parent.mkdir(parents=True, exist_ok=True)
    written = tracer.export_jsonl(str(out))
    print(f"wrote {out} ({written} events)")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if summary["repairs"] == 0:
        print("WARNING: no repair chain in the trace -- the smoke test needs one",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Determinism lint: forbid iterating unordered sets in schedule-adjacent code.

The determinism contract (docs/ARCHITECTURE.md) requires that fixed seeds
produce byte-identical runs.  The classic way to break it silently is
``for x in some_set:`` on a code path whose iteration order reaches the
event schedule — Python sets iterate in hash order, which varies with
insertion history (and, for str keys, with ``PYTHONHASHSEED``).  This
lint walks the AST of the schedule-adjacent modules (``core/elink.py``
and ``sim/faults.py`` by default) and flags ``for`` loops and
comprehensions whose iterable is:

- a ``set``/``frozenset`` literal, constructor call, or comprehension;
- a call to ``.union`` / ``.intersection`` / ``.difference`` /
  ``.symmetric_difference`` (these return sets);
- a local name bound to one of the above (or annotated ``set[...]``)
  earlier in the same file;
- an attribute known to hold a set in this codebase (``dead_nodes``,
  ``_removed_edges``, ``_taken_over``, ``_phase1_forwarded``,
  ``_phase2_acted``, ``crashed``).

Wrapping the iterable in ``sorted(...)`` (or ``list(sorted(...))``) is
the sanctioned fix and is never flagged.  A genuinely order-free loop can
be exempted with a ``# det-ok`` comment on the offending line.

No third-party dependencies; exits 1 with file:line diagnostics::

    python tools/check_set_iteration.py
    python tools/check_set_iteration.py src/repro/sim/network.py
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

#: Attributes known to hold ``set`` values in schedule-adjacent classes.
KNOWN_SET_ATTRS = frozenset(
    {
        "dead_nodes",
        "_removed_edges",
        "_taken_over",
        "_phase1_forwarded",
        "_phase2_acted",
        "crashed",
    }
)

#: set-returning methods — iterating their result is hash-ordered.
SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Files checked when none are given on the command line.
DEFAULT_TARGETS = ("src/repro/core/elink.py", "src/repro/sim/faults.py")


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    """True for ``set``/``frozenset`` annotations, bare or subscripted."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return isinstance(target, ast.Name) and target.id in ("set", "frozenset")


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _scope_statements(scope: ast.AST):
    """Walk *scope*'s own statements, stopping at nested scope boundaries."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue  # nested scope: analysed separately
        stack.extend(ast.iter_child_nodes(node))


def _collect_set_names(scope: ast.AST) -> set[str]:
    """Names assigned a set expression (or set annotation) within *scope*.

    Scoped (one function or the module top level) but flow-insensitive: a
    name that *ever* holds a set in the scope is suspect wherever the
    scope iterates it, and a false positive is a one-line ``sorted()`` or
    ``# det-ok`` away from silence.
    """
    names: set[str] = set()
    for node in _scope_statements(scope):
        if isinstance(node, ast.Assign):
            if _is_set_expression(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and (
                _is_set_annotation(node.annotation)
                or (node.value is not None and _is_set_expression(node.value, names))
            ):
                names.add(node.target.id)
    return names


def _is_set_expression(node: ast.expr, set_names: set[str]) -> bool:
    """True when *node* statically looks like an unordered set value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        return node.attr in KNOWN_SET_ATTRS
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
            return True
        # ``d.get(key, set())`` and friends: a set default means the
        # expression is sometimes a set.
        if isinstance(func, ast.Attribute) and func.attr in ("get", "setdefault"):
            return any(_is_set_expression(arg, set_names) for arg in node.args[1:])
    if isinstance(node, (ast.BinOp,)) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # a | b, a & b, a - b, a ^ b over sets; flag when either side is.
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    return False


def _iter_loop_iterables(scope: ast.AST):
    """Yield (lineno, iterable) for loops/comprehensions in *scope* itself."""
    for node in _scope_statements(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter.lineno, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter.lineno, generator.iter


def _iter_scopes(tree: ast.Module):
    """Yield every lexical scope in *tree*: the module, then each class/def."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_NODES):
            yield node


def check_file(path: pathlib.Path) -> list[str]:
    """Lint one file; returns ``file:line: message`` diagnostics."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    source_lines = source.splitlines()
    problems = []
    for scope in _iter_scopes(tree):
        problems.extend(_check_scope(scope, path, source_lines))
    return problems


def _check_scope(scope: ast.AST, path: pathlib.Path, source_lines: list[str]) -> list[str]:
    """Check one lexical scope's loops against its own set-valued names."""
    set_names = _collect_set_names(scope)
    problems = []
    for lineno, iterable in _iter_loop_iterables(scope):
        # sorted(...) normalizes order: never flagged, whatever is inside.
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Name):
            if iterable.func.id == "sorted":
                continue
            if iterable.func.id in ("list", "tuple") and iterable.args:
                inner = iterable.args[0]
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "sorted"
                ):
                    continue
        if not _is_set_expression(iterable, set_names):
            continue
        line = source_lines[lineno - 1] if lineno - 1 < len(source_lines) else ""
        if "# det-ok" in line:
            continue
        problems.append(
            f"{path}:{lineno}: iteration over an unordered set "
            f"({ast.unparse(iterable)}); wrap in sorted(...) or mark '# det-ok'"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; exits non-zero when any target file has violations."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help=f"files to lint (default: {', '.join(DEFAULT_TARGETS)})",
    )
    args = parser.parse_args(argv)
    all_problems: list[str] = []
    for name in args.files:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"{name}: no such file", file=sys.stderr)
            return 2
        all_problems.extend(check_file(path))
    for problem in all_problems:
        print(problem)
    if all_problems:
        print(f"{len(all_problems)} unordered-set iteration(s) found", file=sys.stderr)
        return 1
    print(f"set-iteration lint: {len(args.files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Check that intra-repository Markdown links resolve.

Scans the given Markdown files (default: every tracked ``*.md`` outside
hidden directories) for inline links and validates the local ones:

- relative file links must point at an existing file or directory
  (resolved against the linking file's directory);
- ``#fragment`` links into Markdown targets must match a heading slug in
  the target file (GitHub-style slugification: lowercase, spaces to
  dashes, punctuation dropped);
- external links (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on network reachability.

Usage::

    python tools/check_links.py            # whole repo
    python tools/check_links.py docs/*.md  # specific files
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: Inline Markdown links: [text](target).  Reference-style links are not
#: used in this repository.  Images (![alt](src)) match too, intentionally.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def _slug(heading: str) -> str:
    """GitHub-style heading slug (close enough for this repo's headings)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _heading_slugs(path: pathlib.Path) -> set[str]:
    return {_slug(m.group(1)) for m in _HEADING.finditer(path.read_text(encoding="utf-8"))}


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    """Return a list of broken-link descriptions for one Markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        target, _, fragment = target.partition("#")
        if not target:  # same-file #fragment
            if fragment and _slug(fragment) not in _heading_slugs(path):
                problems.append(f"{path}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / target).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            problems.append(f"{path}: link escapes the repository: {target}")
            continue
        if not resolved.exists():
            problems.append(f"{path}: broken link {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _slug(fragment) not in _heading_slugs(resolved):
                problems.append(f"{path}: broken anchor {target}#{fragment}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="Markdown files to check (default: all *.md in the repo)")
    args = parser.parse_args(argv)
    root = pathlib.Path.cwd().resolve()
    if args.files:
        files = [pathlib.Path(f) for f in args.files]
    else:
        files = [p for p in sorted(root.rglob("*.md"))
                 if not any(part.startswith(".") for part in p.relative_to(root).parts)]
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} files: {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""Docstring-coverage check for the ``repro`` package (no third-party
dependencies — the usual tool for this, ``interrogate``, is not in the
environment, and the check is small enough to own).

Counts module, public-class, and public-function/method docstrings via
``ast`` (no imports of the checked code), prints per-file gaps, and fails
when coverage drops below the threshold::

    python tools/check_docstrings.py --fail-under 95 src/repro

Rules:

- private names (leading underscore) are exempt, except ``__init__``,
  which is folded into its class (a documented class with an undocumented
  ``__init__`` is fine; an undocumented class is a gap either way);
- nested functions and lambdas are invisible to ``ast.walk`` at the
  depth we scan: only module-level and class-level definitions count;
- ``@overload``/``@property`` and other decorators are not special-cased —
  a public def is a public def.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys


def _public_defs(tree: ast.Module):
    """Yield (qualname, node) for every definition that needs a docstring."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not child.name.startswith("_"):
                        yield f"{node.name}.{child.name}", child


def audit_file(path: pathlib.Path) -> tuple[int, int, list[str]]:
    """Return (documented, total, missing qualnames) for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented, total, missing = 0, 1, []
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append("<module>")
    for qualname, node in _public_defs(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(qualname)
    return documented, total, missing


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=["src/repro"],
                        help="files or directories to audit (default src/repro)")
    parser.add_argument("--fail-under", type=float, default=95.0, metavar="PCT",
                        help="minimum coverage percentage (default 95)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print only the total and failures")
    args = parser.parse_args(argv)

    files: list[pathlib.Path] = []
    for root in args.roots:
        path = pathlib.Path(root)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    if not files:
        print("no Python files found", file=sys.stderr)
        return 2

    documented = total = 0
    for path in files:
        file_documented, file_total, missing = audit_file(path)
        documented += file_documented
        total += file_total
        if missing and not args.quiet:
            print(f"{path}: {file_documented}/{file_total}")
            for name in missing:
                print(f"  missing: {name}")
    coverage = 100.0 * documented / total if total else 100.0
    print(f"docstring coverage: {documented}/{total} = {coverage:.1f}% "
          f"(threshold {args.fail_under:.1f}%)")
    if coverage < args.fail_under:
        print("FAIL: coverage below threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the cost-model query planner and its result cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.queries.load import ScenarioSpec, WorkloadSpec, build_scenario, generate_workload
from repro.queries.planner import PLAN_BACKENDS, QueryPlanner, canonical_answer
from repro.queries.result_cache import QueryResultCache


@pytest.fixture(scope="module")
def scenario():
    """A seeded 50-node serving stack shared by the equivalence tests."""
    return build_scenario(ScenarioSpec(n=50, seed=42, delta=0.4))


def _workload(scenario, mix="balanced", queries=24, seed=3):
    spec = WorkloadSpec(mix=mix, queries=queries, seed=seed)
    return generate_workload(
        sorted(scenario["graph"].nodes, key=repr), scenario["features"], spec
    )


# ----------------------------------------------------------------------
# plan choice: argmin over the estimates, deterministic tie-break
# ----------------------------------------------------------------------


@given(
    est=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=3,
        max_size=3,
    )
)
@settings(max_examples=200, deadline=None)
def test_choice_is_argmin_with_backend_order_tiebreak(scenario, est):
    estimates = dict(zip(PLAN_BACKENDS, est))
    plan = scenario["planner"]._choose("range", estimates)
    best = min(PLAN_BACKENDS, key=lambda b: (estimates[b], PLAN_BACKENDS.index(b)))
    assert plan.backend == best
    # The headline property: flood is never chosen when the backbone scan
    # is strictly cheaper (and symmetrically for every backend pair).
    for cheaper in PLAN_BACKENDS:
        if estimates[cheaper] < estimates[plan.backend]:
            pytest.fail(f"chose {plan.backend} over strictly cheaper {cheaper}")


def test_planned_backend_minimizes_reported_estimates(scenario):
    planner = scenario["planner"]
    for query in _workload(scenario):
        plan = getattr(planner, f"plan_{query.op}")(**query.kwargs())
        assert plan.backend in PLAN_BACKENDS
        assert plan.estimates[plan.backend] == min(plan.estimates.values())
        assert plan.explain_text().startswith(f"plan {query.op}: {plan.backend}")


# ----------------------------------------------------------------------
# backend equivalence: byte-identical answers on seeded scenarios
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mix", ["range-heavy", "balanced", "path-knn"])
def test_all_backends_agree_on_seeded_workloads(scenario, mix):
    planner = scenario["planner"]
    for query in _workload(scenario, mix=mix, queries=16, seed=11):
        answers = {
            backend: canonical_answer(
                query.op,
                getattr(planner, query.op)(**query.kwargs(), backend=backend).result,
            )
            for backend in PLAN_BACKENDS
        }
        assert answers["mtree"] == answers["backbone"] == answers["flood"], (
            f"{query.op} answers diverge across backends: {query.params}"
        )


def test_auto_plan_matches_forced_backend(scenario):
    planner = scenario["planner"]
    for query in _workload(scenario, queries=12, seed=5):
        auto = getattr(planner, query.op)(**query.kwargs())
        forced = getattr(planner, query.op)(**query.kwargs(), backend=auto.plan.backend)
        assert canonical_answer(query.op, auto.result) == canonical_answer(
            query.op, forced.result
        )


def test_unknown_backend_rejected(scenario):
    with pytest.raises(ValueError):
        scenario["planner"].range(np.zeros(1), 0.5, 0, backend="oracle")


# ----------------------------------------------------------------------
# explain mode: chosen plan plus estimated-vs-actual message cost
# ----------------------------------------------------------------------


def test_explain_reports_estimated_and_actual_cost(scenario):
    planned = scenario["planner"].range(np.zeros(1), 0.8, 0)
    text = planned.explain_text()
    assert planned.plan.backend in text
    if planned.cached:
        assert "served from cache" in text
    else:
        assert f"actual {planned.messages}" in text


# ----------------------------------------------------------------------
# result cache: hits, generation-driven invalidation, zero staleness
# ----------------------------------------------------------------------


def _fresh_ctx(n=40):
    return build_scenario(ScenarioSpec(n=n, seed=42, delta=0.4))


def test_repeat_query_served_from_cache():
    ctx = _fresh_ctx()
    planner, cache = ctx["planner"], ctx["cache"]
    q = np.array([0.5])
    cold = planner.range(q, 0.6, 0)
    warm = planner.range(q, 0.6, 0)
    assert not cold.cached and warm.cached
    assert warm.messages == 0
    assert warm.result is cold.result
    assert cache.hits == 1 and cache.misses == 1


def test_forced_backend_bypasses_cache():
    ctx = _fresh_ctx()
    planner, cache = ctx["planner"], ctx["cache"]
    q = np.array([0.5])
    planner.range(q, 0.6, 0)
    forced = planner.range(q, 0.6, 0, backend="flood")
    assert not forced.cached
    assert cache.hits == 0  # forced runs never consult the cache


def test_maintenance_generation_invalidates_cache():
    ctx = _fresh_ctx()
    planner, cache, session = ctx["planner"], ctx["cache"], ctx["session"]
    q = np.array([0.5])
    planner.range(q, 0.6, 0)
    assert planner.range(q, 0.6, 0).cached
    victim = next(
        node for node in sorted(session.assignment, key=repr)
        if node != session.assignment[node]
    )
    session.remove_node(victim)
    after = planner.range(q, 0.6, 0)
    assert not after.cached, "pre-invalidation entry leaked through"
    assert cache.invalidations > 0
    # And the freshly cached answer is good again.
    assert planner.range(q, 0.6, 0).cached


def test_cache_counters_flow_to_metrics_registry():
    ctx = _fresh_ctx()
    planner, metrics = ctx["planner"], ctx["metrics"]
    q = np.array([0.2])
    planner.range(q, 0.5, 0)
    planner.range(q, 0.5, 0)
    snapshot = metrics.snapshot()
    assert snapshot["queries.cache.hits"]["value"] == 1
    assert snapshot["queries.cache.misses"]["value"] == 1
    assert snapshot["queries.cache_served.range"]["value"] == 1


def test_cache_lru_eviction_counted():
    cache = QueryResultCache(capacity=2)
    for i in range(3):
        cache.put(cache.key("range", {"i": i}), i)
    assert cache.evictions == 1
    assert cache.stats()["entries"] == 2


# ----------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# degraded topologies: the cost model must see dead/replaced nodes
# ----------------------------------------------------------------------


def _planner_for(ctx, *, graph=None, backbone=None, cache=None, **degraded):
    return QueryPlanner(
        ctx["graph"] if graph is None else graph,
        ctx["clustering"],
        ctx["features"],
        ctx["metric"],
        ctx["mtree"],
        ctx["backbone"] if backbone is None else backbone,
        cache=cache,
        **degraded,
    )


def _hub_root(ctx):
    """The highest-degree backbone root — killing it severs the most."""
    backbone = ctx["backbone"]
    return max(
        ctx["clustering"].roots, key=lambda r: (backbone.tree.degree(r), repr(r))
    )


def test_degraded_planner_never_plans_flood(scenario):
    """Flooding routes through dead nodes, so a degraded planner must
    never choose it — and must refuse to have it forced."""
    degraded = _planner_for(scenario, dead={_hub_root(scenario)})
    for query in _workload(scenario, queries=24, seed=3):
        plan = getattr(degraded, f"plan_{query.op}")(**query.kwargs())
        assert plan.backend != "flood"
        assert plan.estimates["flood"] == float("inf")
    q = np.array([0.5])
    with pytest.raises(ValueError, match="flood"):
        degraded.range(q, 0.6, 0, backend="flood")
    with pytest.raises(ValueError, match="flood"):
        degraded.knn(q, 2, 0, backend="flood")


def test_stale_fault_free_model_picks_strictly_costlier_backend(scenario):
    """The PR-8 regression: a planner that ignores the dead set keeps
    flood's fault-free price on the table and hands unselective queries
    to a backend the degraded engines refuse — strictly costlier than
    the degraded model's finite-cost choice, by its own estimate."""
    stale = _planner_for(scenario)
    degraded = _planner_for(scenario, dead={_hub_root(scenario)})
    divergent = 0
    for query in _workload(scenario, mix="balanced", queries=40, seed=3):
        stale_plan = getattr(stale, f"plan_{query.op}")(**query.kwargs())
        fresh_plan = getattr(degraded, f"plan_{query.op}")(**query.kwargs())
        if stale_plan.backend == fresh_plan.backend:
            continue
        divergent += 1
        assert stale_plan.backend == "flood"
        # The degraded engines refuse the stale choice outright...
        with pytest.raises(ValueError, match="flood"):
            getattr(degraded, query.op)(**query.kwargs(), backend=stale_plan.backend)
        # ...while the degraded model's choice executes at a finite cost
        # below what the stale model was prepared to pay for flooding.
        executed = getattr(degraded, query.op)(
            **query.kwargs(), backend=fresh_plan.backend
        )
        assert executed.messages < stale_plan.estimates["flood"]
    assert divergent > 0, "seeded chaos scenario produced no plan divergence"


def test_degraded_backends_agree_with_degraded_engines(scenario):
    """mtree and backbone plans return the degraded engines' answers —
    same matches/neighbors, same coverage — under a severed backbone."""
    dead = _hub_root(scenario)
    degraded = _planner_for(scenario, dead={dead})
    alive = sorted(
        (n for n in scenario["graph"].nodes if n != dead), key=repr
    )
    for query in _workload(scenario, queries=24, seed=7):
        kwargs = dict(query.kwargs())
        if query.op == "path":
            if kwargs["source"] == dead or kwargs["destination"] == dead:
                continue
        elif kwargs["initiator"] == dead:
            kwargs["initiator"] = alive[0]
        mtree = getattr(degraded, query.op)(**kwargs, backend="mtree")
        backbone = getattr(degraded, query.op)(**kwargs, backend="backbone")
        assert canonical_answer(query.op, mtree.result) == canonical_answer(
            query.op, backbone.result
        )
        assert mtree.result.coverage == pytest.approx(backbone.result.coverage)
        if query.op == "range":
            assert dead not in mtree.result.matches


def test_degraded_planner_with_replacement_root(scenario):
    """A re-elected root keeps its cluster consultable: both clustered
    backends agree, and the dead node itself never appears in answers."""
    import copy

    clustering = scenario["clustering"]
    dead = next(
        r
        for r in sorted(clustering.roots, key=repr)
        if len(clustering.members(r)) >= 2
    )
    replacement = min(
        (m for m in clustering.members(dead) if m != dead), key=repr
    )
    surviving = scenario["graph"].copy()
    surviving.remove_node(dead)
    rerouted = copy.deepcopy(scenario["backbone"])
    rerouted.reroute_around(surviving, dead, replacement)
    degraded = _planner_for(
        scenario,
        graph=surviving,
        backbone=rerouted,
        dead={dead},
        root_replacements={dead: replacement},
    )
    for query in _workload(scenario, queries=16, seed=9):
        kwargs = dict(query.kwargs())
        if query.op == "path":
            if dead in (kwargs["source"], kwargs["destination"]):
                continue
        elif kwargs["initiator"] == dead:
            continue
        mtree = getattr(degraded, query.op)(**kwargs, backend="mtree")
        backbone = getattr(degraded, query.op)(**kwargs, backend="backbone")
        assert canonical_answer(query.op, mtree.result) == canonical_answer(
            query.op, backbone.result
        )
        if query.op == "range":
            assert dead not in mtree.result.matches
        elif query.op == "knn":
            assert dead not in {node for node, _ in mtree.result.neighbors}
        elif mtree.result.path is not None:
            assert dead not in mtree.result.path


# ----------------------------------------------------------------------
# result cache: degraded context is part of the key (stale-answer fix)
# ----------------------------------------------------------------------


def test_cache_never_serves_fault_free_answer_to_degraded_query(scenario):
    """The PR-8 cache regression: one shared cache, a fault-free planner
    and a degraded one — the degraded query must miss (different key),
    recompute, and both contexts then hit their own entries."""
    cache = QueryResultCache()
    fault_free = _planner_for(scenario, cache=cache)
    degraded = _planner_for(scenario, cache=cache, dead={_hub_root(scenario)})
    dead = _hub_root(scenario)
    q = scenario["features"][dead]
    initiator = next(
        n
        for n in sorted(scenario["graph"].nodes, key=repr)
        if scenario["clustering"].root_of(n) != dead
    )
    cold = fault_free.range(q, 0.6, initiator)
    assert not cold.cached and dead in cold.result.matches
    served = degraded.range(q, 0.6, initiator)
    assert not served.cached, "fault-free cached answer served degraded"
    assert dead not in served.result.matches
    # Each context now hits its OWN entry, never the other's.
    assert fault_free.range(q, 0.6, initiator).result is cold.result
    assert degraded.range(q, 0.6, initiator).result is served.result


def test_cache_key_distinguishes_degraded_contexts():
    cache = QueryResultCache()
    params = {"q": np.array([0.5]), "radius": 0.6, "initiator": 0}
    plain = cache.key("range", params)
    ctx_a = {"dead": [3], "root_replacements": []}
    ctx_b = {"dead": [3], "root_replacements": [(3, 7)]}
    assert plain != cache.key("range", params, context=ctx_a)
    assert cache.key("range", params, context=ctx_a) != cache.key(
        "range", params, context=ctx_b
    )
    # The fault-free default context hashes exactly as no context.
    assert plain == cache.key("range", params, context=None)


def test_planner_emits_queries_trace_events():
    ctx = _fresh_ctx(n=30)
    tracer = Tracer()
    planner = QueryPlanner(
        ctx["graph"],
        ctx["clustering"],
        ctx["features"],
        ctx["metric"],
        ctx["mtree"],
        ctx["backbone"],
        tracer=tracer,
        cache=QueryResultCache(),
        generation=lambda: 0,
        metrics=MetricsRegistry(),
    )
    q = np.array([0.4])
    planner.range(q, 0.7, 0)
    planner.range(q, 0.7, 0)
    types = [e.type for e in tracer.events(prefix="queries.")]
    assert "queries.plan" in types
    assert "queries.execute" in types
    assert "queries.cache_miss" in types
    assert "queries.cache_hit" in types

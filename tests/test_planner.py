"""Tests for the cost-model query planner and its result cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.queries.load import ScenarioSpec, WorkloadSpec, build_scenario, generate_workload
from repro.queries.planner import PLAN_BACKENDS, QueryPlanner, canonical_answer
from repro.queries.result_cache import QueryResultCache


@pytest.fixture(scope="module")
def scenario():
    """A seeded 50-node serving stack shared by the equivalence tests."""
    return build_scenario(ScenarioSpec(n=50, seed=42, delta=0.4))


def _workload(scenario, mix="balanced", queries=24, seed=3):
    spec = WorkloadSpec(mix=mix, queries=queries, seed=seed)
    return generate_workload(
        sorted(scenario["graph"].nodes, key=repr), scenario["features"], spec
    )


# ----------------------------------------------------------------------
# plan choice: argmin over the estimates, deterministic tie-break
# ----------------------------------------------------------------------


@given(
    est=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=3,
        max_size=3,
    )
)
@settings(max_examples=200, deadline=None)
def test_choice_is_argmin_with_backend_order_tiebreak(scenario, est):
    estimates = dict(zip(PLAN_BACKENDS, est))
    plan = scenario["planner"]._choose("range", estimates)
    best = min(PLAN_BACKENDS, key=lambda b: (estimates[b], PLAN_BACKENDS.index(b)))
    assert plan.backend == best
    # The headline property: flood is never chosen when the backbone scan
    # is strictly cheaper (and symmetrically for every backend pair).
    for cheaper in PLAN_BACKENDS:
        if estimates[cheaper] < estimates[plan.backend]:
            pytest.fail(f"chose {plan.backend} over strictly cheaper {cheaper}")


def test_planned_backend_minimizes_reported_estimates(scenario):
    planner = scenario["planner"]
    for query in _workload(scenario):
        plan = getattr(planner, f"plan_{query.op}")(**query.kwargs())
        assert plan.backend in PLAN_BACKENDS
        assert plan.estimates[plan.backend] == min(plan.estimates.values())
        assert plan.explain_text().startswith(f"plan {query.op}: {plan.backend}")


# ----------------------------------------------------------------------
# backend equivalence: byte-identical answers on seeded scenarios
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mix", ["range-heavy", "balanced", "path-knn"])
def test_all_backends_agree_on_seeded_workloads(scenario, mix):
    planner = scenario["planner"]
    for query in _workload(scenario, mix=mix, queries=16, seed=11):
        answers = {
            backend: canonical_answer(
                query.op,
                getattr(planner, query.op)(**query.kwargs(), backend=backend).result,
            )
            for backend in PLAN_BACKENDS
        }
        assert answers["mtree"] == answers["backbone"] == answers["flood"], (
            f"{query.op} answers diverge across backends: {query.params}"
        )


def test_auto_plan_matches_forced_backend(scenario):
    planner = scenario["planner"]
    for query in _workload(scenario, queries=12, seed=5):
        auto = getattr(planner, query.op)(**query.kwargs())
        forced = getattr(planner, query.op)(**query.kwargs(), backend=auto.plan.backend)
        assert canonical_answer(query.op, auto.result) == canonical_answer(
            query.op, forced.result
        )


def test_unknown_backend_rejected(scenario):
    with pytest.raises(ValueError):
        scenario["planner"].range(np.zeros(1), 0.5, 0, backend="oracle")


# ----------------------------------------------------------------------
# explain mode: chosen plan plus estimated-vs-actual message cost
# ----------------------------------------------------------------------


def test_explain_reports_estimated_and_actual_cost(scenario):
    planned = scenario["planner"].range(np.zeros(1), 0.8, 0)
    text = planned.explain_text()
    assert planned.plan.backend in text
    if planned.cached:
        assert "served from cache" in text
    else:
        assert f"actual {planned.messages}" in text


# ----------------------------------------------------------------------
# result cache: hits, generation-driven invalidation, zero staleness
# ----------------------------------------------------------------------


def _fresh_ctx(n=40):
    return build_scenario(ScenarioSpec(n=n, seed=42, delta=0.4))


def test_repeat_query_served_from_cache():
    ctx = _fresh_ctx()
    planner, cache = ctx["planner"], ctx["cache"]
    q = np.array([0.5])
    cold = planner.range(q, 0.6, 0)
    warm = planner.range(q, 0.6, 0)
    assert not cold.cached and warm.cached
    assert warm.messages == 0
    assert warm.result is cold.result
    assert cache.hits == 1 and cache.misses == 1


def test_forced_backend_bypasses_cache():
    ctx = _fresh_ctx()
    planner, cache = ctx["planner"], ctx["cache"]
    q = np.array([0.5])
    planner.range(q, 0.6, 0)
    forced = planner.range(q, 0.6, 0, backend="flood")
    assert not forced.cached
    assert cache.hits == 0  # forced runs never consult the cache


def test_maintenance_generation_invalidates_cache():
    ctx = _fresh_ctx()
    planner, cache, session = ctx["planner"], ctx["cache"], ctx["session"]
    q = np.array([0.5])
    planner.range(q, 0.6, 0)
    assert planner.range(q, 0.6, 0).cached
    victim = next(
        node for node in sorted(session.assignment, key=repr)
        if node != session.assignment[node]
    )
    session.remove_node(victim)
    after = planner.range(q, 0.6, 0)
    assert not after.cached, "pre-invalidation entry leaked through"
    assert cache.invalidations > 0
    # And the freshly cached answer is good again.
    assert planner.range(q, 0.6, 0).cached


def test_cache_counters_flow_to_metrics_registry():
    ctx = _fresh_ctx()
    planner, metrics = ctx["planner"], ctx["metrics"]
    q = np.array([0.2])
    planner.range(q, 0.5, 0)
    planner.range(q, 0.5, 0)
    snapshot = metrics.snapshot()
    assert snapshot["queries.cache.hits"]["value"] == 1
    assert snapshot["queries.cache.misses"]["value"] == 1
    assert snapshot["queries.cache_served.range"]["value"] == 1


def test_cache_lru_eviction_counted():
    cache = QueryResultCache(capacity=2)
    for i in range(3):
        cache.put(cache.key("range", {"i": i}), i)
    assert cache.evictions == 1
    assert cache.stats()["entries"] == 2


# ----------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------


def test_planner_emits_queries_trace_events():
    ctx = _fresh_ctx(n=30)
    tracer = Tracer()
    planner = QueryPlanner(
        ctx["graph"],
        ctx["clustering"],
        ctx["features"],
        ctx["metric"],
        ctx["mtree"],
        ctx["backbone"],
        tracer=tracer,
        cache=QueryResultCache(),
        generation=lambda: 0,
        metrics=MetricsRegistry(),
    )
    q = np.array([0.4])
    planner.range(q, 0.7, 0)
    planner.range(q, 0.7, 0)
    types = [e.type for e in tracer.events(prefix="queries.")]
    assert "queries.plan" in types
    assert "queries.execute" in types
    assert "queries.cache_miss" in types
    assert "queries.cache_hit" in types

"""Tests for the shared argument-validation helpers."""

import pytest

from repro._validation import (
    require_finite,
    require_in_range,
    require_int_at_least,
    require_non_empty,
    require_non_negative,
    require_positive,
)


def test_require_positive():
    assert require_positive(1.5, "x") == 1.5
    with pytest.raises(ValueError):
        require_positive(0, "x")
    with pytest.raises(ValueError):
        require_positive(-1, "x")
    with pytest.raises(ValueError):
        require_positive(float("inf"), "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        require_non_negative(-0.1, "x")


def test_require_finite_rejects_non_numbers():
    with pytest.raises(TypeError):
        require_finite("1.0", "x")
    with pytest.raises(TypeError):
        require_finite(True, "x")
    with pytest.raises(ValueError):
        require_finite(float("nan"), "x")


def test_require_int_at_least():
    assert require_int_at_least(3, 1, "x") == 3
    with pytest.raises(ValueError):
        require_int_at_least(0, 1, "x")
    with pytest.raises(TypeError):
        require_int_at_least(1.0, 1, "x")
    with pytest.raises(TypeError):
        require_int_at_least(True, 1, "x")


def test_require_in_range():
    assert require_in_range(0.5, 0, 1, "x") == 0.5
    assert require_in_range(1.0, 0, 1, "x") == 1.0
    with pytest.raises(ValueError):
        require_in_range(1.0, 0, 1, "x", inclusive=False)
    with pytest.raises(ValueError):
        require_in_range(2.0, 0, 1, "x")


def test_require_non_empty():
    assert require_non_empty([1], "x") == [1]
    assert require_non_empty(iter([1, 2]), "x") == [1, 2]
    with pytest.raises(ValueError):
        require_non_empty([], "x")

"""Tests for the trace inspector: timeline reconstruction, the
crash -> detection -> repair report, CLI plumbing, and a smoke test over
the checked-in chaos fixture (``tests/data/chaos_small.jsonl``)."""

import pathlib

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import ELinkConfig, run_elink
from repro.features.metrics import EuclideanMetric
from repro.geometry import QuadTreeDecomposition, grid_topology
from repro.obs import TraceInspector, Tracer
from repro.obs.inspect import main as trace_main
from repro.obs.trace import TraceEvent
from repro.sim import EventKernel, FaultInjector, FaultPlan, Network

FIXTURE = pathlib.Path(__file__).parent / "data" / "chaos_small.jsonl"


def _event(t, type, node=None, **data):
    return TraceEvent(t, type, node, data)


# ----------------------------------------------------------------------
# Reconstruction on hand-built traces
# ----------------------------------------------------------------------
def test_filters_and_node_timeline():
    events = [
        _event(0.0, "msg.send", 1, dst=2, kind="expand"),
        _event(1.0, "msg.deliver", 2, src=1, kind="expand"),
        _event(2.0, "node.crash", 3, degree=2),
        _event(3.0, "repair.note", 4, kind="orphan_root", dead=3),
    ]
    inspector = TraceInspector(events)
    assert len(inspector) == 4
    assert inspector.span == (0.0, 3.0)
    assert inspector.nodes() == [1, 2, 3, 4]
    # node filter matches payload references too: node 3 sees its repair.
    timeline = inspector.node_timeline(3)
    assert [e.type for e in timeline] == ["node.crash", "repair.note"]
    # node 2 sees the send addressed to it.
    assert [e.type for e in inspector.node_timeline(2)] == ["msg.send", "msg.deliver"]
    sub = inspector.filtered(prefix="msg.", until=0.5)
    assert [e.type for e in sub.events] == ["msg.send"]


def test_repair_report_joins_crash_detection_repair():
    events = [
        _event(1.0, "node.crash", 7, degree=3),
        _event(2.5, "elink.orphan", 9, dead=7, old_root=7),
        _event(3.0, "repair.note", 9, kind="orphan_root", dead=7),
        _event(4.0, "node.crash", 8, degree=2),  # never repaired
    ]
    (first, second) = TraceInspector(events).repair_report()
    assert first["node"] == 7
    assert first["detect_time"] == 2.5 and first["detect_kind"] == "elink.orphan"
    assert first["repair_time"] == 3.0 and first["repair_by"] == 9
    assert first["latency"] == pytest.approx(2.0)
    assert second["node"] == 8
    assert second["detect_time"] is None and second["repair_time"] is None
    assert TraceInspector(events).repair_latencies() == [pytest.approx(2.0)]


def test_repair_note_counts_as_detection():
    # A probe-timeout failover can emit repair.note before the takeover
    # event lands; the report must stay monotone (detect <= repair).
    events = [
        _event(1.0, "node.crash", 7),
        _event(5.0, "repair.note", 4, kind="sentinel_failover", dead=7),
        _event(6.0, "elink.takeover", 5, dead=7, round=2),
    ]
    (report,) = TraceInspector(events).repair_report()
    assert report["detect_time"] == 5.0
    assert report["detect_kind"] == "repair.note"
    assert report["detect_time"] <= report["repair_time"]


def test_drop_summary():
    events = [
        _event(0.0, "msg.drop", 1, reason="no_route"),
        _event(1.0, "msg.drop", 2, reason="no_route"),
        _event(2.0, "msg.drop", 3, reason="dead_destination"),
    ]
    drops = TraceInspector(events).drop_summary()
    assert drops == {"no_route": 2, "dead_destination": 1}


def test_render_helpers():
    events = [
        _event(0.0, "msg.send", 1, dst=2, kind="expand"),
        _event(2.0, "node.crash", 3),
    ]
    inspector = TraceInspector(events)
    assert "2 events" in inspector.summary_text()
    text = inspector.timeline_text(1, limit=10)
    assert "msg.send" in text and "dst=2" in text
    assert "never repaired" in inspector.repair_text()
    assert TraceInspector([]).repair_text() == "no crashes in trace"


# ----------------------------------------------------------------------
# Round trip: live run -> JSONL -> inspector
# ----------------------------------------------------------------------
def test_live_run_round_trip(tmp_path):
    topology = grid_topology(5, 5)
    features = {
        node: np.array([(x + y) / 10.0])
        for node, (x, y) in topology.positions.items()
    }
    config = ELinkConfig(delta=1.0, signalling="explicit", failure_detection=True)
    quadtree = QuadTreeDecomposition(topology)
    victim = next(
        v for v in sorted(topology.graph.nodes)
        if v != quadtree.root and quadtree.level_of[v] == quadtree.depth
    )
    tracer = Tracer()
    network = Network(topology.graph.copy(), EventKernel(), tracer=tracer)
    injector = FaultInjector(network, FaultPlan().crash(2.0, victim))
    run_elink(
        topology, features, EuclideanMetric(), config,
        quadtree=quadtree, network=network, injector=injector, tracer=tracer,
    )
    path = tmp_path / "run.jsonl"
    written = tracer.export_jsonl(str(path))
    assert written == tracer.emitted  # nothing evicted at this scale

    inspector = TraceInspector.from_jsonl(str(path))
    assert len(inspector) == written
    counts = inspector.type_counts()
    # The reconstruction sees the whole lifecycle the live tracer saw.
    assert counts == dict(tracer.type_counts())
    assert counts["node.crash"] == 1
    assert counts["msg.send"] > 0 and counts["elink.episode_done"] > 0
    (report,) = inspector.repair_report()
    assert report["node"] == victim
    assert report["crash_time"] == pytest.approx(2.0)
    # The victim's timeline starts before its crash and includes it.
    timeline = inspector.node_timeline(victim)
    assert any(e.type == "node.crash" for e in timeline)


# ----------------------------------------------------------------------
# CLI + checked-in fixture
# ----------------------------------------------------------------------
def test_fixture_smoke(capsys):
    assert FIXTURE.is_file(), "regenerate with tools/make_chaos_trace.py"
    assert trace_main([str(FIXTURE)]) == 0
    out = capsys.readouterr().out
    assert "events by type:" in out and "node.crash" in out
    assert trace_main([str(FIXTURE), "--repairs"]) == 0
    out = capsys.readouterr().out
    assert "crash -> detection -> repair:" in out
    assert "repaired t=" in out  # the fixture contains a full repair chain


def test_fixture_has_full_repair_chain():
    inspector = TraceInspector.from_jsonl(str(FIXTURE))
    reports = inspector.repair_report()
    assert len(reports) == 2
    repaired = [r for r in reports if r["latency"] is not None]
    assert repaired, "fixture must contain a crash -> detection -> repair chain"
    assert all(
        r["detect_time"] <= r["repair_time"] for r in repaired
    )


def test_cli_dispatches_trace_subcommand(capsys):
    assert cli_main(["trace", str(FIXTURE), "--drops"]) == 0
    out = capsys.readouterr().out
    assert "dead_destination" in out or "no drops in trace" in out


def test_cli_trace_missing_file(capsys):
    assert trace_main(["/nonexistent/trace.jsonl"]) == 1
    assert "cannot read trace" in capsys.readouterr().err


def test_cli_rejects_non_positive_limit(capsys):
    assert trace_main([str(FIXTURE), "--limit", "0"]) == 2
    assert "--limit must be >= 1" in capsys.readouterr().err
    assert trace_main([str(FIXTURE), "--limit", "-3"]) == 2


def test_cli_limit_caps_timeline_lines(capsys):
    assert trace_main([str(FIXTURE), "--node", "38", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    body = [line for line in out.splitlines() if line.startswith("  ")]
    assert len(body) <= 3  # 2 events + the "... N more" marker
    assert any("more (raise --limit)" in line for line in out.splitlines())


def test_stream_jsonl_matches_eager_load_with_filters():
    eager = TraceInspector.from_jsonl(FIXTURE).filtered(prefix="msg.", until=40.0)
    streamed = TraceInspector.stream_jsonl(FIXTURE, prefix="msg.", until=40.0)
    assert [
        (e.time, e.type, e.node, e.data) for e in eager.events
    ] == [(e.time, e.type, e.node, e.data) for e in streamed.events]
    assert len(streamed) == len(eager)


def test_stream_jsonl_node_filter_matches_node_timeline():
    eager = TraceInspector.from_jsonl(FIXTURE)
    node = eager.nodes()[0]
    streamed = TraceInspector.stream_jsonl(FIXTURE, node=node)
    assert [e.type for e in streamed.events] == [
        e.type for e in eager.node_timeline(node)
    ]


def test_cli_node_timeline_and_filters(capsys):
    assert trace_main([str(FIXTURE), "--node", "38", "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "timeline of node 38" in out
    assert trace_main([str(FIXTURE), "--type", "node.crash"]) == 0
    out = capsys.readouterr().out
    assert "node.crash" in out


# ----------------------------------------------------------------------
# serve.* rollup (live-service traces)
# ----------------------------------------------------------------------
SERVE_FIXTURE = pathlib.Path(__file__).parent / "data" / "serve_chaos.jsonl"


def test_serve_report_on_hand_built_trace():
    events = [
        _event(0.0, "serve.start", n=4),
        _event(0.1, "serve.stage_crash", "pipeline", stage="pipeline", error="boom"),
        _event(0.1, "serve.stage_restart", "pipeline", stage="pipeline", backoff=0.05),
        _event(0.2, "serve.degraded", coverage=0.5),
        _event(0.3, "serve.shed_episode", "pipeline", topic="readings", count=7),
        _event(0.4, "serve.recovered", coverage=1.0),
        _event(0.5, "serve.checkpoint_write", seq=100, bytes=10),
        _event(0.6, "serve.exit", code=0, reason="stream_end"),
    ]
    report = TraceInspector(events).serve_report()
    assert report["stage_crashes"] == {"pipeline": 1}
    assert report["shed_total"]["pipeline"] == 7
    assert report["checkpoint_writes"] == 1
    assert report["checkpoint_last_seq"] == 100
    [episode] = report["degraded_episodes"]
    assert episode["floor"] == 0.5
    assert episode["duration"] == pytest.approx(0.2)
    assert report["exit"] == {"time": 0.6, "code": 0, "reason": "stream_end"}


def test_serve_report_absent_without_serve_events():
    inspector = TraceInspector([_event(0.0, "msg.send", 1, dst=2)])
    assert inspector.serve_report() is None
    assert "no serve.* events" in inspector.serve_text()


def test_serve_fixture_smoke(capsys):
    assert SERVE_FIXTURE.is_file(), "regenerate per tests/data/README.md"
    assert trace_main([str(SERVE_FIXTURE), "--serve"]) == 0
    out = capsys.readouterr().out
    assert "stage crashes/restarts:" in out
    assert "checkpoints:" in out
    assert "recovered" in out
    # the rollup also rides along in the default summary
    assert trace_main([str(SERVE_FIXTURE)]) == 0
    assert "serve:" in capsys.readouterr().out


def test_serve_fixture_degraded_window_recovers():
    report = TraceInspector.from_jsonl(str(SERVE_FIXTURE)).serve_report()
    assert sum(report["stage_crashes"].values()) >= 1
    assert report["checkpoint_writes"] >= 1
    assert report["degraded_episodes"], "chaos fixture must contain a degraded window"
    assert all(e["end"] is not None for e in report["degraded_episodes"])
    assert report["exit"]["code"] == 0


def test_stage_names_resolve_in_timelines(capsys):
    assert trace_main([str(SERVE_FIXTURE), "--node", "pipeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline of node 'pipeline'" in out


def test_queries_report_on_hand_built_trace():
    events = [
        _event(0.0, "queries.cache_miss", op="range", generation=0),
        _event(0.1, "queries.plan", op="range", backend="mtree", reason="cheapest"),
        _event(0.2, "queries.execute", op="range", backend="mtree", estimated=100.0, actual=120),
        _event(0.3, "queries.cache_hit", op="range", backend="mtree", generation=1),
        _event(0.4, "queries.cache_miss", op="knn", generation=1),
        _event(0.5, "queries.plan", op="knn", backend="flood", reason="cheapest"),
        _event(0.6, "queries.execute", op="knn", backend="flood", estimated=200.0, actual=100),
    ]
    report = TraceInspector(events).queries_report()
    assert report["executed"] == {"range": 1, "knn": 1}
    assert report["plans"] == {"mtree": 1, "flood": 1}
    assert report["cache_hits"] == {"range": 1}
    assert report["cache_misses"] == {"range": 1, "knn": 1}
    assert report["estimate_ratio_mean"] == pytest.approx(0.85)
    assert report["estimate_ratio_worst"] == pytest.approx(1.2)
    assert report["generations"] == [0, 1]
    text = TraceInspector(events).queries_text()
    assert "plans: flood=1, mtree=1" in text
    assert "1 hits, 2 misses" in text


def test_queries_report_absent_without_queries_events():
    inspector = TraceInspector([_event(0.0, "msg.send", 1, dst=2)])
    assert inspector.queries_report() is None
    assert "no queries.* events" in inspector.queries_text()


def test_queries_rollup_from_live_planner_trace(tmp_path, capsys):
    from repro.queries.load import ScenarioSpec, WorkloadSpec, build_scenario, generate_workload
    from repro.queries.planner import QueryPlanner
    from repro.queries.result_cache import QueryResultCache

    ctx = build_scenario(ScenarioSpec(n=30, seed=42, delta=0.4))
    tracer = Tracer()
    planner = QueryPlanner(
        ctx["graph"],
        ctx["clustering"],
        ctx["features"],
        ctx["metric"],
        ctx["mtree"],
        ctx["backbone"],
        tracer=tracer,
        cache=QueryResultCache(),
        generation=lambda: ctx["session"].generation,
    )
    workload = generate_workload(
        sorted(ctx["graph"].nodes, key=repr),
        ctx["features"],
        WorkloadSpec(mix="balanced", queries=12, seed=2),
    )
    for query in workload:
        getattr(planner, query.op)(**query.kwargs())
    trace_path = tmp_path / "queries.jsonl"
    tracer.export_jsonl(str(trace_path))
    assert trace_main([str(trace_path), "--queries"]) == 0
    out = capsys.readouterr().out
    assert "queries:" in out
    assert "executed: 12" in out

"""Tests for topologies and bounding boxes."""

import networkx as nx
import numpy as np
import pytest

from repro.geometry import (
    BoundingBox,
    Topology,
    grid_topology,
    random_geometric_topology,
    scatter_topology,
)


def test_grid_shape_and_edges():
    topology = grid_topology(3, 4)
    assert topology.num_nodes == 12
    # 3 rows x 4 cols grid: 3*3 horizontal + 2*4 vertical edges
    assert topology.graph.number_of_edges() == 3 * 3 + 2 * 4
    assert topology.is_connected()


def test_grid_positions_match_indices():
    topology = grid_topology(2, 3, spacing=2.0)
    assert topology.positions[0] == (0.0, 0.0)
    assert topology.positions[5] == (4.0, 2.0)  # row 1, col 2


def test_grid_four_neighborhood():
    topology = grid_topology(3, 3)
    center = 4
    assert sorted(topology.graph.neighbors(center)) == [1, 3, 5, 7]


def test_grid_validation():
    with pytest.raises(ValueError):
        grid_topology(0, 3)
    with pytest.raises(ValueError):
        grid_topology(3, 3, spacing=-1.0)


def test_single_node_grid():
    topology = grid_topology(1, 1)
    assert topology.num_nodes == 1
    assert topology.bounds.width == 1.0  # degenerate box inflated


def test_random_geometric_connected_by_default():
    for seed in range(5):
        topology = random_geometric_topology(60, seed=seed)
        assert topology.is_connected()
        assert topology.num_nodes == 60


def test_random_geometric_target_degree_approximate():
    topology = random_geometric_topology(400, seed=1, target_degree=4.0)
    # Stitching adds a few edges; allow a generous band around 4.
    assert 2.5 <= topology.average_degree() <= 6.5


def test_random_geometric_deterministic_per_seed():
    a = random_geometric_topology(50, seed=9)
    b = random_geometric_topology(50, seed=9)
    assert a.positions == b.positions
    assert set(a.graph.edges) == set(b.graph.edges)


def test_random_geometric_unconnected_option():
    topology = random_geometric_topology(100, seed=2, radio_range=0.1, connect=False)
    assert not nx.is_connected(topology.graph)


def test_scatter_topology_edges_within_range():
    points = {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (5.0, 0.0)}
    topology = scatter_topology(points, radio_range=1.5, connect=False)
    assert topology.graph.has_edge("a", "b")
    assert not topology.graph.has_edge("b", "c")


def test_scatter_topology_stitches_components():
    points = {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (5.0, 0.0)}
    topology = scatter_topology(points, radio_range=1.5, connect=True)
    assert topology.is_connected()


def test_scatter_topology_empty_rejected():
    with pytest.raises(ValueError):
        scatter_topology({}, radio_range=1.0)


def test_bounds_are_square_and_contain_all_nodes():
    topology = random_geometric_topology(40, seed=3)
    bounds = topology.bounds
    assert bounds.width == pytest.approx(bounds.height)
    for x, y in topology.positions.values():
        assert bounds.contains(x, y)


def test_bounding_box_center():
    box = BoundingBox(0.0, 0.0, 4.0, 2.0)
    assert box.center == (2.0, 1.0)
    assert box.contains(2.0, 1.0)
    assert not box.contains(5.0, 1.0)


def test_topology_requires_positions_for_all_nodes():
    graph = nx.path_graph(3)
    with pytest.raises(ValueError, match="positions missing"):
        Topology(graph, {0: (0.0, 0.0), 1: (1.0, 0.0)})


def test_average_degree():
    topology = grid_topology(2, 2)
    assert topology.average_degree() == pytest.approx(2.0)


# ----------------------------------------------------------------------
# spatial-hash fast path (n >= SPATIAL_HASH_MIN_N)
# ----------------------------------------------------------------------
def test_grid_edges_match_quadratic_path():
    """The cell grid must produce the identical edge set as the O(n²) loop
    on the same coordinates (the range predicate is shared)."""
    import math

    from repro.geometry.topology import _range_edges_grid

    n, seed = 600, 17
    rng = np.random.default_rng(seed)
    side = math.sqrt(n / 0.8)
    coords = rng.uniform(0.0, side, size=(n, 2))
    radio_range = side * math.sqrt(4.0 / (math.pi * (n - 1)))

    quadratic = nx.Graph()
    quadratic.add_nodes_from(range(n))
    for i in range(n):
        deltas = coords[i + 1 :] - coords[i]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        for offset in np.nonzero(dists <= radio_range)[0]:
            quadratic.add_edge(i, i + 1 + int(offset))

    gridded = nx.Graph()
    gridded.add_nodes_from(range(n))
    _range_edges_grid(gridded, coords, radio_range)

    assert set(map(frozenset, quadratic.edges)) == set(map(frozenset, gridded.edges))


def test_fast_path_topology_connected_and_deterministic():
    from repro.geometry.topology import SPATIAL_HASH_MIN_N

    n = SPATIAL_HASH_MIN_N  # smallest size that takes the fast path
    first = random_geometric_topology(n, seed=5)
    second = random_geometric_topology(n, seed=5)
    assert first.is_connected()
    assert first.num_nodes == n
    assert list(first.graph.edges) == list(second.graph.edges)
    # degree stays at the paper's target despite the different stitcher
    assert 3.0 < first.average_degree() < 5.0


def test_centroid_mst_stitcher_connects_fragments():
    from repro.geometry.topology import _stitch_components_grid

    graph = nx.Graph()
    graph.add_nodes_from(range(9))
    # three triangles, far apart
    coords = []
    for cluster, origin in enumerate([(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)]):
        base = cluster * 3
        graph.add_edges_from([(base, base + 1), (base + 1, base + 2), (base, base + 2)])
        for k in range(3):
            coords.append((origin[0] + 0.1 * k, origin[1] + 0.05 * k))
    coords = np.asarray(coords)
    _stitch_components_grid(graph, coords)
    assert nx.is_connected(graph)
    # exactly one stitch edge per MST edge over 3 components
    assert graph.number_of_edges() == 9 + 2

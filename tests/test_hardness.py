"""Tests for the Theorem 1 reduction and the exact solvers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import validate_clustering
from repro.core.hardness import (
    clique_cover_to_delta_clustering,
    delta_clustering_to_clique_cover,
    optimal_clique_cover,
    optimal_delta_clustering,
    verify_reduction,
)
from repro.features import EuclideanMetric


def test_reduction_builds_clique_with_one_two_distances():
    graph = nx.path_graph(4)
    communication, metric, delta = clique_cover_to_delta_clustering(graph)
    assert communication.number_of_edges() == 6  # K4
    assert delta == 1.0
    assert metric.distance(0, 1) == 1.0  # path edge
    assert metric.distance(0, 2) == 2.0  # non-edge


def test_reduction_on_triangle():
    clusters, cover = verify_reduction(nx.complete_graph(3))
    assert clusters == cover == 1


def test_reduction_on_path():
    # P4 = 0-1-2-3: cliques are edges -> minimum cover is 2.
    clusters, cover = verify_reduction(nx.path_graph(4))
    assert clusters == cover == 2


def test_reduction_on_independent_set():
    graph = nx.empty_graph(4)
    clusters, cover = verify_reduction(graph)
    assert clusters == cover == 4


def test_reduction_on_cycle5():
    # C5 needs 3 cliques (edges) to cover 5 vertices.
    clusters, cover = verify_reduction(nx.cycle_graph(5))
    assert clusters == cover == 3


@given(n=st.integers(min_value=2, max_value=7), seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=15, deadline=None)
def test_reduction_answer_preserving_property(n, seed):
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, 0.5, seed=seed)
    clusters, cover = verify_reduction(graph)
    assert clusters == cover


def test_optimal_clique_cover_known_graphs():
    assert len(optimal_clique_cover(nx.complete_graph(5))) == 1
    assert len(optimal_clique_cover(nx.star_graph(3))) == 3  # hub + 3 leaves
    cover = optimal_clique_cover(nx.cycle_graph(4))
    assert len(cover) == 2


def test_optimal_delta_clustering_line():
    graph = nx.path_graph(5)
    features = {i: np.array([float(i)]) for i in range(5)}
    clusters = optimal_delta_clustering(graph, features, EuclideanMetric(), 1.0)
    # Features 0..4 with delta 1: pairs only -> ceil(5/2) = 3 clusters.
    assert len(clusters) == 3


def test_optimal_respects_connectivity():
    # Two identical-feature nodes that are NOT graph-connected cannot merge.
    graph = nx.Graph()
    graph.add_nodes_from([0, 1, 2])
    graph.add_edge(0, 1)
    features = {0: np.array([0.0]), 1: np.array([5.0]), 2: np.array([0.0])}
    clusters = optimal_delta_clustering(graph, features, EuclideanMetric(), 1.0)
    assert len(clusters) == 3


def test_optimal_solver_size_guard():
    graph = nx.path_graph(30)
    features = {i: np.array([0.0]) for i in range(30)}
    with pytest.raises(ValueError, match="limited"):
        optimal_delta_clustering(graph, features, EuclideanMetric(), 1.0)
    with pytest.raises(ValueError, match="limited"):
        optimal_clique_cover(nx.path_graph(30))


def test_heuristics_never_beat_optimum():
    from repro.core import ELinkConfig, run_elink
    from repro.geometry import random_geometric_topology

    metric = EuclideanMetric()
    rng = np.random.default_rng(1)
    for seed in range(4):
        topology = random_geometric_topology(9, seed=seed)
        features = {v: rng.normal(size=1) for v in topology.graph.nodes}
        optimal = optimal_delta_clustering(topology.graph, features, metric, 1.0)
        elink = run_elink(topology, features, metric, ELinkConfig(delta=1.0))
        assert elink.num_clusters >= len(optimal)


def test_compatibility_graph_for_clique_cg():
    graph = nx.complete_graph(3)
    features = {0: np.array([0.0]), 1: np.array([0.5]), 2: np.array([5.0])}
    compatibility = delta_clustering_to_clique_cover(
        graph, features, EuclideanMetric(), 1.0
    )
    assert compatibility.has_edge(0, 1)
    assert not compatibility.has_edge(0, 2)


def test_empty_graph_rejected():
    with pytest.raises(ValueError):
        clique_cover_to_delta_clustering(nx.Graph())

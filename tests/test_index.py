"""Tests for the distributed M-tree index and the leader backbone."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import grid_topology, random_geometric_topology
from repro.index import (
    build_backbone,
    build_mtree,
    verify_covering_invariant,
)


def _clustered(topology, features, delta=1.0):
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    return clustering, metric


def test_covering_invariant_holds(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    index = build_mtree(clustering, small_grid_features, metric)
    assert verify_covering_invariant(index, clustering, small_grid_features, metric) == []


def test_leaf_radius_zero(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    index = build_mtree(clustering, small_grid_features, metric)
    children = clustering.tree_children()
    for node in clustering.assignment:
        if not children[node]:
            assert index.covering_radius[node] == 0.0


def test_child_info_matches_metric(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    index = build_mtree(clustering, small_grid_features, metric)
    for node, info in index.child_info.items():
        for child, (distance, radius) in info.items():
            assert distance == pytest.approx(
                metric.distance(
                    index.routing_feature[node], index.routing_feature[child]
                )
            )
            assert radius == index.covering_radius[child]


def test_build_cost_is_dim_plus_one_per_tree_edge(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    index = build_mtree(clustering, small_grid_features, metric)
    tree_edges = sum(
        1 for node, parent in clustering.parent.items() if parent != node
    )
    dim = 1
    assert index.build_messages == (dim + 1) * tree_edges


def test_verify_covering_invariant_reports_violations(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    index = build_mtree(clustering, small_grid_features, metric)
    # Corrupt one radius and expect a report (pick a root with children).
    root = next(r for r in clustering.roots if len(clustering.members(r)) > 1)
    index.covering_radius[root] = 0.0
    problems = verify_covering_invariant(index, clustering, small_grid_features, metric)
    assert problems


@given(seed=st.integers(min_value=0, max_value=40))
@settings(max_examples=15, deadline=None)
def test_covering_invariant_property(seed):
    topology = random_geometric_topology(40, seed=seed)
    rng = np.random.default_rng(seed)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    clustering, metric = _clustered(topology, features, delta=1.5)
    index = build_mtree(clustering, features, metric)
    assert verify_covering_invariant(index, clustering, features, metric) == []


# ----------------------------------------------------------------------
# backbone
# ----------------------------------------------------------------------
def test_backbone_is_spanning_tree_over_roots(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features, delta=0.5)
    assert clustering.num_clusters > 1
    backbone = build_backbone(small_grid.graph, clustering)
    assert set(backbone.tree.nodes) == set(clustering.roots)
    assert backbone.tree.number_of_edges() == clustering.num_clusters - 1
    assert nx.is_connected(backbone.tree)


def test_backbone_paths_are_graph_paths(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features, delta=0.5)
    backbone = build_backbone(small_grid.graph, clustering)
    for a, b in backbone.tree.edges:
        path = backbone.path(a, b)
        assert path[0] == a and path[-1] == b
        for u, v in zip(path, path[1:]):
            assert small_grid.graph.has_edge(u, v)
        assert backbone.edge_hops(a, b) == len(path) - 1
        # The reversed lookup works too.
        reversed_path = backbone.path(b, a)
        assert list(reversed_path) == list(reversed(path))


def test_backbone_single_cluster():
    topology = grid_topology(3, 3)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    clustering, metric = _clustered(topology, features, delta=5.0)
    assert clustering.num_clusters == 1
    backbone = build_backbone(topology.graph, clustering)
    assert backbone.tree.number_of_edges() == 0
    assert backbone.build_messages == 0


def test_backbone_build_cost_positive_for_multiple_clusters(
    small_grid, small_grid_features
):
    clustering, metric = _clustered(small_grid, small_grid_features, delta=0.5)
    backbone = build_backbone(small_grid.graph, clustering)
    assert backbone.build_messages > 0


# ----------------------------------------------------------------------
# backbone repair after a cluster-root crash
# ----------------------------------------------------------------------
def test_reroute_around_replaces_dead_root(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    backbone = build_backbone(small_grid.graph, clustering)
    dead = next(r for r in clustering.roots if backbone.tree.degree(r) >= 1)
    neighbours = list(backbone.tree.neighbors(dead))
    replacement = next(
        m for m in clustering.members(dead) if m != dead
    )
    surviving = small_grid.graph.copy()
    surviving.remove_node(dead)
    repair_values_before = backbone.stats.category_values("repair")
    rerouted = backbone.reroute_around(surviving, dead, replacement)
    assert dead not in backbone.tree
    assert replacement in backbone.tree
    assert rerouted == len([n for n in neighbours if n != replacement])
    for neighbour in backbone.tree.neighbors(replacement):
        path = backbone.path(replacement, neighbour)
        assert path[0] == replacement and path[-1] == neighbour
        assert dead not in path
        assert all(surviving.has_edge(a, b) for a, b in zip(path, path[1:]))
    # Repair traffic is charged and visible in the repair category.
    assert backbone.stats.category_values("repair") > repair_values_before


def test_reroute_around_unknown_root_raises(small_grid, small_grid_features):
    clustering, metric = _clustered(small_grid, small_grid_features)
    backbone = build_backbone(small_grid.graph, clustering)
    with pytest.raises(KeyError):
        backbone.reroute_around(small_grid.graph, "not-a-root", 0)

"""Property-based tests: MessageStats counter conservation.

Hypothesis drives arbitrary interleavings of the full MessageStats
surface — charge, record, record_drop, snapshot, diff, reset — and
asserts the accounting identities the verification oracle relies on:
running totals always equal the per-kind and per-category counter sums,
snapshots are faithful copies, and diffs of successive snapshots are
themselves conserved.  ``derandomize=True`` keeps the corpus fixed so CI
runs are reproducible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.messages import Message
from repro.sim.stats import MessageStats
from repro.verify import check_stats_conservation

KINDS = ("join", "newcluster", "ack1", "ack2", "probe", "update")
CATEGORIES = ("clustering", "repair", "query", "maintenance")
REASONS = ("dead_destination", "dead_source", "link_down", "no_route")

#: One abstract operation against the stats object.
_operations = st.one_of(
    st.tuples(
        st.just("charge"),
        st.sampled_from(KINDS),
        st.sampled_from(CATEGORIES),
        st.integers(min_value=1, max_value=8),   # values
        st.integers(min_value=1, max_value=12),  # hops
    ),
    st.tuples(st.just("drop"), st.sampled_from(KINDS), st.sampled_from(REASONS)),
    st.tuples(st.just("reset")),
)


def _conserved(stats: MessageStats) -> None:
    assert check_stats_conservation(stats) == [], check_stats_conservation(stats)


@settings(derandomize=True, deadline=None, max_examples=60)
@given(st.lists(_operations, max_size=40))
def test_totals_equal_counter_sums_under_any_op_sequence(operations):
    """The running totals are conserved at every step, not just at the end."""
    stats = MessageStats()
    for operation in operations:
        if operation[0] == "charge":
            _, kind, category, values, hops = operation
            stats.charge(kind, category, values, hops=hops)
        elif operation[0] == "drop":
            _, kind, reason = operation
            stats.record_drop(
                Message(src=0, dst=1, kind=kind, category=CATEGORIES[0]), reason
            )
        else:
            stats.reset()
        _conserved(stats)


@settings(derandomize=True, deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(KINDS),
            st.sampled_from(CATEGORIES),
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
        ),
        max_size=20,
    ),
    st.integers(min_value=0, max_value=20),
)
def test_snapshot_and_diff_are_conserved(charges, cut):
    """snapshot() copies faithfully; diff() of a later state is conserved
    and adds back up to the later totals."""
    stats = MessageStats()
    earlier = None
    for index, (kind, category, values, hops) in enumerate(charges):
        if index == cut:
            earlier = stats.snapshot()
            _conserved(earlier)
        stats.charge(kind, category, values, hops=hops)
    if earlier is None:
        earlier = stats.snapshot()
    delta = stats.diff(earlier)
    _conserved(delta)
    assert earlier.total_values + delta.total_values == stats.total_values
    assert earlier.total_packets + delta.total_packets == stats.total_packets


@settings(derandomize=True, deadline=None, max_examples=30)
@given(st.data())
def test_snapshot_is_independent_of_source(data):
    """Mutating the source after snapshot() never changes the snapshot."""
    stats = MessageStats()
    stats.charge("join", "clustering", 2, hops=2)
    frozen = stats.snapshot()
    before = (frozen.total_packets, frozen.total_values)
    kind = data.draw(st.sampled_from(KINDS))
    stats.charge(kind, "repair", 1, hops=3)
    assert (frozen.total_packets, frozen.total_values) == before
    _conserved(frozen)
    _conserved(stats)


# ----------------------------------------------------------------------
# charge_batch: one call == N charges; totals maintained in O(1)
# ----------------------------------------------------------------------
@given(
    st.sampled_from(KINDS),
    st.sampled_from(CATEGORIES),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=20),
)
@settings(derandomize=True, max_examples=60)
def test_charge_batch_equals_repeated_charges(kind, category, values, count):
    batched = MessageStats()
    batched.charge_batch(kind, category, values, count)
    looped = MessageStats()
    for _ in range(count):
        looped.charge(kind, category, values)
    assert batched.snapshot() == looped.snapshot()
    assert batched.total_packets == looped.total_packets
    assert batched.total_values == looped.total_values
    check_stats_conservation(batched)


def test_charge_batch_validates_inputs():
    import pytest

    stats = MessageStats()
    with pytest.raises(ValueError):
        stats.charge_batch("join", "clustering", 0, 3)
    with pytest.raises(ValueError):
        stats.charge_batch("join", "clustering", 2, 0)
    # failed validation must not have charged anything
    assert stats.total_packets == 0
    assert stats.total_values == 0


def test_snapshot_and_diff_carry_totals_without_rederiving():
    stats = MessageStats()
    stats.charge("join", "clustering", 4, hops=3)
    stats.charge_batch("probe", "repair", 1, 5)
    snap = stats.snapshot()
    assert snap.total_packets == stats.total_packets == 8
    assert snap.total_values == stats.total_values == 17
    stats.charge("update", "maintenance", 2)
    delta = stats.snapshot().diff(snap)
    assert delta.total_packets == 1
    assert delta.total_values == 2
    check_stats_conservation(delta)

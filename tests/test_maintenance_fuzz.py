"""Property-based fuzzing of the maintenance layer and post-drift queries.

Invariants that must survive ANY update stream:

- every node stays assigned to exactly one cluster;
- every cluster's membership induces a connected subgraph (after the
  session's repairs);
- rebuilding the index on the drifted state keeps range queries exact.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, MaintenanceSession, run_elink
from repro.features import EuclideanMetric
from repro.geometry import random_geometric_topology
from repro.index import build_backbone, build_mtree
from repro.queries import RangeQueryEngine, brute_force_range

DELTA = 1.2
SLACK = 0.15


def _session(seed):
    topology = random_geometric_topology(30, seed=seed)
    rng = np.random.default_rng(seed + 1)
    features = {v: rng.normal(size=1) for v in topology.graph.nodes}
    metric = EuclideanMetric()
    clustering = run_elink(
        topology, features, metric, ELinkConfig(delta=DELTA - 2 * SLACK)
    ).clustering
    session = MaintenanceSession(
        topology.graph, clustering, features, metric, DELTA, SLACK
    )
    return topology, session


@given(
    seed=st.integers(min_value=0, max_value=20),
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=29),
            st.floats(min_value=-2.0, max_value=2.0),
        ),
        min_size=1,
        max_size=60,
    ),
)
@settings(max_examples=25, deadline=None)
def test_maintenance_invariants_under_arbitrary_streams(seed, steps):
    topology, session = _session(seed)
    for node, delta_value in steps:
        new_feature = session.features[node] + np.array([delta_value])
        session.update_feature(node, new_feature)

    # Coverage: every node assigned, every root self-assigned.
    assert set(session.assignment) == set(topology.graph.nodes)
    for root in session.root_features:
        assert session.assignment.get(root) == root

    # Connectivity after the session's repairs (the materialized clustering
    # performs the final split of any stray components).
    clustering = session.current_clustering()
    assert sorted(clustering.assignment) == sorted(topology.graph.nodes)
    for root, members in clustering.clusters().items():
        assert nx.is_connected(topology.graph.subgraph(members))

    # Tree sanity: parents are in-cluster graph edges.
    for node in clustering.assignment:
        parent = clustering.parent[node]
        if parent != node:
            assert topology.graph.has_edge(node, parent)
            assert clustering.assignment[parent] == clustering.assignment[node]


@given(seed=st.integers(min_value=0, max_value=15))
@settings(max_examples=10, deadline=None)
def test_queries_exact_after_drift(seed):
    topology, session = _session(seed)
    rng = np.random.default_rng(seed + 77)
    nodes = list(topology.graph.nodes)
    for _ in range(80):
        node = nodes[int(rng.integers(len(nodes)))]
        session.update_feature(node, session.features[node] + rng.normal(0, 0.4, 1))

    clustering = session.current_clustering()
    metric = session.metric
    features = session.features
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
    for _ in range(5):
        q = rng.normal(size=1)
        radius = float(rng.uniform(0.2, 1.5))
        out = engine.query(q, radius, nodes[0])
        assert out.matches == brute_force_range(features, metric, q, radius)

"""Service-level acceptance tests for the live clustering service.

The three lifecycle guarantees CI certifies:

1. **SIGTERM graceful drain** — a real subprocess receiving SIGTERM stops
   intake, flushes its queues, writes a final checkpoint, and exits 0.
2. **Kill-and-resume equivalence** — a run killed mid-stream (task
   cancellation, the in-process SIGKILL analogue: no drain, no final
   checkpoint) and resumed from its newest checkpoint reaches exactly the
   snapshot digest of an uninterrupted run on the same replay source.
3. **Chaos acceptance** — with seed-deterministic stage crashes and
   source stalls injected, the service restarts its stages within the
   crash budget, surfaces the degraded coverage window as trace events,
   recovers, and still exits 0.
"""

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ClusteringService, ServiceConfig, snapshots_equal
from repro.serve.broker import POLICY_SHED_OLDEST
from repro.sim.faults import FaultPlan

REPO = pathlib.Path(__file__).resolve().parent.parent


def _spawn_serve(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for(condition, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.05)
    pytest.fail(message)


# ----------------------------------------------------------------------
# 1. SIGTERM graceful drain (real subprocess, real signal)
# ----------------------------------------------------------------------
def test_sigterm_drains_and_exits_zero(tmp_path):
    ckpt = tmp_path / "ckpt"
    snapshot = tmp_path / "final.json"
    # a stream long enough (64k readings at 400/s) that SIGTERM lands mid-run
    proc = _spawn_serve(
        "--n", "16", "--rounds", "4000", "--rate", "400",
        "--checkpoint-dir", str(ckpt), "--checkpoint-every", "50",
        "--snapshot-out", str(snapshot),
    )
    try:
        _wait_for(
            lambda: list(ckpt.glob("ckpt-*.bin")),
            timeout=30,
            message="service never wrote a periodic checkpoint",
        )
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "exit 0 (sigterm)" in stderr
    # the drain epilogue wrote a final checkpoint and the exit snapshot
    assert list(ckpt.glob("ckpt-*.bin"))
    assert json.loads(snapshot.read_text())["digest"]


# ----------------------------------------------------------------------
# 2. kill-and-resume snapshot equivalence
# ----------------------------------------------------------------------
def _base_config(tmp_path, **overrides):
    defaults = dict(
        n=16, seed=7, rounds=60, delta=0.35, slack=0.05, bootstrap_rounds=8
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def test_kill_and_resume_matches_uninterrupted(tmp_path):
    uninterrupted = ClusteringService(_base_config(tmp_path))
    assert uninterrupted.run() == 0
    reference = uninterrupted.pipeline.snapshot()

    ckpt = tmp_path / "ckpt"
    victim = ClusteringService(
        _base_config(
            tmp_path,
            rate=2500.0,  # paced, so the kill lands mid-stream
            checkpoint_dir=str(ckpt),
            checkpoint_every_readings=150,
        )
    )

    async def run_and_kill():
        task = asyncio.ensure_future(victim.run_async())
        while victim.checkpoints.writes < 2 and not task.done():
            await asyncio.sleep(0.01)
        assert not task.done(), "stream ended before the kill — slow the rate"
        # SIGKILL analogue: abrupt cancellation, no drain, no final checkpoint
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        await victim.supervisor.cancel()  # process death takes the stages too

    asyncio.run(run_and_kill())
    killed_at = victim.pipeline.applied_total
    assert 0 < killed_at < victim.stream.total_readings

    resumed = ClusteringService(
        _base_config(tmp_path, checkpoint_dir=str(ckpt), resume=True)
    )
    assert resumed.run() == 0
    recovered = resumed.pipeline.snapshot()
    assert snapshots_equal(reference, recovered), (
        f"killed at {killed_at}: {reference['digest']} != {recovered['digest']}"
    )
    # the resume actually skipped work: it did not replay the whole stream
    resumed_applied = resumed.ctx.metrics.counter("serve.applied_total").value
    assert resumed_applied < resumed.stream.total_readings


def test_resume_without_checkpoint_is_a_fresh_run(tmp_path):
    service = ClusteringService(
        _base_config(tmp_path, checkpoint_dir=str(tmp_path / "empty"), resume=True)
    )
    assert service.run() == 0
    assert service.pipeline.applied_total == service.stream.total_readings


# ----------------------------------------------------------------------
# 3. chaos acceptance: crashes + stalls at a fixed seed
# ----------------------------------------------------------------------
def test_chaos_run_recovers_and_exits_zero(tmp_path):
    plan = FaultPlan.random_service(
        seed=11,
        positions=(140, 700),
        stages=["pipeline", "ingest:src-0", "ingest:src-1"],
        stage_crashes=3,
        sources=["src-0", "src-1"],
        stalls=2,
        stall_duration=0.1,
        malformed=3,
    )
    service = ClusteringService(
        _base_config(
            tmp_path,
            rounds=60,
            sources=2,
            rate=3000.0,
            queue_size=48,
            backpressure=POLICY_SHED_OLDEST,
            chaos_plan=plan,
            backoff_base=0.02,
        )
    )
    assert service.run() == 0

    # every injected crash was absorbed by a supervised restart
    assert service.supervisor.total_restarts() == 3
    assert not service.supervisor.failed.is_set()
    counters = {
        "malformed": service.ctx.metrics.counter("serve.malformed_total").value,
        "restarts": service.ctx.metrics.counter("serve.stage_restarts").value,
    }
    assert counters == {"malformed": 3, "restarts": 3}

    # the damage was visible while it lasted: coverage dipped below 1 and
    # the degraded window closed with a recovery before exit
    types = [e.type for e in service.ctx.tracer.events()]
    assert "serve.degraded" in types
    assert types.index("serve.degraded") < types.index("serve.recovered")
    assert service.pipeline.coverage() == pytest.approx(1.0)
    assert service.pipeline.num_clusters > 0

    # health endpoint reflects the history
    health = service.health()
    assert health["status"] == "ok"
    assert sum(health["stage_restarts"].values()) == 3


def test_crash_budget_exhaustion_fails_fast(tmp_path):
    plan = FaultPlan()
    for position in (40, 50, 60, 70):
        plan.stage_crash(position, "pipeline")
    service = ClusteringService(
        _base_config(
            tmp_path, rounds=30, rate=2000.0, crash_budget=2, backoff_base=0.01,
            chaos_plan=plan,
        )
    )
    assert service.run() == 1
    assert service.supervisor.stages["pipeline"].failed
    assert any(e.type == "serve.stage_giveup" for e in service.ctx.tracer.events())


# ----------------------------------------------------------------------
# query API over a real socket
# ----------------------------------------------------------------------
def test_api_answers_healthz_and_range_over_tcp(tmp_path):
    service = ClusteringService(
        _base_config(tmp_path, rounds=80, rate=4000.0, port=0)
    )

    async def scenario():
        task = asyncio.ensure_future(service.run_async())
        while service.api.port == 0 and not task.done():
            await asyncio.sleep(0.01)
        while service.pipeline.session is None and not task.done():
            await asyncio.sleep(0.01)
        assert not task.done(), "stream ended before the query — raise rounds"
        reader, writer = await asyncio.open_connection("127.0.0.1", service.api.port)

        async def ask(request):
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            return json.loads(await asyncio.wait_for(reader.readline(), timeout=5))

        health = await ask({"op": "healthz"})
        ranged = await ask({"op": "range", "q": [0.5], "radius": 0.3})
        bad = await ask({"op": "range"})
        writer.close()
        code = await task
        return health, ranged, bad, code

    health, ranged, bad, code = asyncio.run(scenario())
    assert code == 0
    assert health["ready"] is True and health["clusters"] > 0
    assert isinstance(ranged["matches"], list)
    assert ranged["staleness"]["updates_behind"] <= 500
    assert bad["error"] == "bad_request"

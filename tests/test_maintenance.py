"""Tests for slack-based dynamic cluster maintenance (paper §6)."""

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    run_elink,
)
from repro.features import EuclideanMetric
from repro.geometry import grid_topology


DELTA = 1.0
SLACK = 0.1


def _session(delta=DELTA, slack=SLACK):
    """A 4x4 grid with two feature plateaus -> two clusters."""
    topology = grid_topology(4, 4)
    features = {
        v: np.array([0.0 if topology.positions[v][0] < 2 else 5.0])
        for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    clustering = run_elink(
        topology, features, metric, ELinkConfig(delta=delta - 2 * slack)
    ).clustering
    session = MaintenanceSession(
        topology.graph, clustering, features, metric, delta, slack
    )
    return topology, features, session


def test_constructor_validates_slack():
    topology, features, session = _session()
    with pytest.raises(ValueError, match="2\\*slack"):
        MaintenanceSession(
            topology.graph,
            session.current_clustering(),
            features,
            EuclideanMetric(),
            1.0,
            0.5,
        )


def test_a1_small_drift_is_silent():
    topology, features, session = _session()
    member = next(n for n in session.assignment if session.assignment[n] != n)
    outcome = session.update_feature(member, session.features[member] + 0.05)
    assert outcome.kind == "silent"
    assert outcome.messages == 0


def test_a3_far_from_boundary_is_silent():
    """A jump bigger than the slack stays silent while still well inside δ-Δ
    of the stored root feature (condition A3)."""
    topology, features, session = _session()
    member = next(n for n in session.assignment if session.assignment[n] != n)
    root_feature = session.stored_root[member]
    new_feature = root_feature + (DELTA - SLACK) * 0.5
    outcome = session.update_feature(member, new_feature)
    assert outcome.kind == "silent"


def test_all_conditions_violated_costs_messages():
    topology, features, session = _session()
    member = next(
        n
        for n in session.assignment
        if session.assignment[n] != n and session.parent[n] != session.assignment[n]
    )
    # Jump far beyond delta from the root: A1 (big step), A2 (distance grew
    # by more than slack) and A3 (beyond delta - slack) all fail.
    outcome = session.update_feature(member, session.features[member] + 100.0)
    assert outcome.kind in ("merged", "singleton")
    assert outcome.messages > 0


def test_revalidation_without_detach():
    topology, features, session = _session()
    member = next(n for n in session.assignment if session.assignment[n] != n)
    root = session.assignment[member]
    # Drift the node's stored root copy out of date, then move the node so
    # A1-A3 fail but it is still within delta of the *fresh* root feature.
    new_feature = session.root_features[root] + DELTA * 0.95
    outcome = session.update_feature(member, new_feature)
    assert outcome.kind == "revalidated"
    assert outcome.messages > 0
    assert session.assignment[member] == root


def test_detached_node_merges_with_neighbor_cluster():
    topology, features, session = _session()
    # A node on the 0.0-plateau boundary jumps to the 5.0 plateau's value.
    member = next(
        n
        for n in session.assignment
        if session.features[n][0] == 0.0
        and any(session.features[nb][0] == 5.0 for nb in topology.graph.neighbors(n))
        and session.assignment[n] != n
    )
    outcome = session.update_feature(member, np.array([5.0]))
    assert outcome.kind == "merged"
    new_root = session.assignment[member]
    assert session.features[new_root][0] == 5.0


def test_detached_node_without_fit_becomes_singleton():
    topology, features, session = _session()
    member = next(
        n
        for n in session.assignment
        if session.assignment[n] != n and session.parent[n] != session.assignment[n]
    )
    outcome = session.update_feature(member, np.array([1000.0]))
    assert outcome.kind == "singleton"
    assert session.assignment[member] == member
    assert member in session.root_features


def test_root_small_drift_is_silent():
    topology, features, session = _session()
    root = next(n for n in session.assignment if session.assignment[n] == n)
    outcome = session.update_feature(root, session.features[root] + 0.05)
    assert outcome.kind == "silent"


def test_root_large_drift_broadcasts():
    topology, features, session = _session()
    root = next(
        n
        for n in session.assignment
        if session.assignment[n] == n and len(session_members(session, n)) > 1
    )
    outcome = session.update_feature(root, session.features[root] + 3 * SLACK)
    assert outcome.kind == "root_broadcast"
    assert outcome.messages > 0
    # Members' stored root copies are refreshed.
    for member in session_members(session, root):
        assert np.allclose(session.stored_root[member], session.features[root])


def session_members(session, root):
    return [n for n, r in session.assignment.items() if r == root]


def test_root_jump_evicts_far_members():
    topology, features, session = _session()
    root = next(
        n
        for n in session.assignment
        if session.assignment[n] == n and len(session_members(session, n)) > 2
    )
    before = set(session_members(session, root))
    session.update_feature(root, session.features[root] + 50.0)
    after = set(session_members(session, root))
    assert after < before  # members detached


def test_current_clustering_stays_connected_after_stream():
    topology, features, session = _session()
    rng = np.random.default_rng(0)
    nodes = list(session.assignment)
    for _ in range(400):
        node = nodes[int(rng.integers(len(nodes)))]
        session.update_feature(node, session.features[node] + rng.normal(0, 0.2))
    clustering = session.current_clustering()
    for root, members in clustering.clusters().items():
        assert nx.is_connected(topology.graph.subgraph(members))


def test_message_totals_accumulate():
    topology, features, session = _session()
    member = next(n for n in session.assignment if session.assignment[n] != n)
    before = session.total_messages()
    session.update_feature(member, session.features[member] + 100.0)
    assert session.total_messages() > before


# ----------------------------------------------------------------------
# CentralizedUpdateBaseline
# ----------------------------------------------------------------------
def test_centralized_ships_on_violation_only():
    topology = grid_topology(3, 3)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    baseline = CentralizedUpdateBaseline(topology.graph, features, 0, slack=0.5)
    silent = baseline.update_feature(8, np.array([0.4]))
    assert silent.kind == "silent" and silent.messages == 0
    shipped = baseline.update_feature(8, np.array([1.0]))
    assert shipped.kind == "shipped"
    # Node 8 is 4 hops from node 0 on the 3x3 grid; 1 coefficient value.
    assert shipped.messages == 4


def test_centralized_reanchors_after_shipping():
    topology = grid_topology(3, 3)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    baseline = CentralizedUpdateBaseline(topology.graph, features, 0, slack=0.5)
    baseline.update_feature(8, np.array([1.0]))
    # Within slack of the *shipped* value now.
    assert baseline.update_feature(8, np.array([1.2])).kind == "silent"


def test_centralized_raw_mode_charges_every_measurement():
    topology = grid_topology(3, 3)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    baseline = CentralizedUpdateBaseline(topology.graph, features, 0, slack=0.5, raw=True)
    hops = baseline.observe_raw(8)
    assert hops == 4
    assert baseline.total_messages() == 4


def test_centralized_unknown_base_rejected():
    topology = grid_topology(2, 2)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    with pytest.raises(KeyError):
        CentralizedUpdateBaseline(topology.graph, features, 99, slack=0.1)


def test_elink_updates_cheaper_than_centralized_on_stream():
    """The Fig 10 headline: maintenance messages sit well below shipping."""
    topology, features, session = _session()
    baseline = CentralizedUpdateBaseline(topology.graph, features, 0, slack=SLACK)
    rng = np.random.default_rng(1)
    nodes = list(session.assignment)
    for _ in range(600):
        node = nodes[int(rng.integers(len(nodes)))]
        new = session.features[node] + rng.normal(0, 0.08)
        session.update_feature(node, new)
        baseline.update_feature(node, new)
    assert baseline.total_messages() > 3 * session.total_messages()


# ----------------------------------------------------------------------
# fail-stop removal (fault repair layer)
# ----------------------------------------------------------------------
def test_remove_member_repairs_tree():
    topology, features, session = _session()
    before = session.num_clusters
    victim = next(
        n for n, r in session.assignment.items() if r != n  # a non-root member
    )
    session.remove_node(victim)
    assert victim not in session.assignment
    clustering = session.current_clustering()
    graph = topology.graph.subgraph(set(session.assignment))
    from repro.core import validate_clustering
    from repro.features import EuclideanMetric

    assert not validate_clustering(
        graph, clustering, features, EuclideanMetric(), DELTA
    )
    assert session.num_clusters >= before  # repair never loses survivors


def test_remove_root_reelects_and_keeps_pruning_feature():
    topology, features, session = _session()
    root = next(r for r in set(session.assignment.values()))
    members = [n for n, r in session.assignment.items() if r == root and n != root]
    old_base = session.root_features[root].copy()
    session.remove_node(root)
    assert root not in session.assignment
    # Every old member survives, re-rooted, and new roots keep the dead
    # root's feature as pruning feature (δ/2 guarantee survives).
    for member in members:
        new_root = session.assignment[member]
        assert new_root != root
        np.testing.assert_allclose(session.root_features[new_root], old_base)


def test_remove_unknown_node_is_noop():
    _, _, session = _session()
    before = dict(session.assignment)
    session.remove_node("never-existed")
    assert session.assignment == before

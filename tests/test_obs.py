"""Tests for the observability layer: tracer ring buffer, JSONL
round-trip, metrics instruments, profiler, and the zero-cost-when-disabled
contract (a traced run changes nothing about the run itself)."""

import json

import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features.metrics import EuclideanMetric
from repro.geometry import grid_topology
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    KernelProfiler,
    MetricsRegistry,
    TimeSeries,
    Tracer,
    current_profiler,
    iter_jsonl,
    profiled,
)
from repro.obs.trace import TraceEvent
from repro.sim import EventKernel, FaultInjector, FaultPlan, Message, Network, ProtocolNode


# ----------------------------------------------------------------------
# Tracer: ring buffer + filters
# ----------------------------------------------------------------------
def test_tracer_emit_and_filter():
    tracer = Tracer()
    tracer.emit(1.0, "msg.send", 3, dst=4, kind="expand")
    tracer.emit(2.0, "msg.deliver", 4, src=3, kind="expand")
    tracer.emit(3.0, "timer.fire", None)
    assert tracer.emitted == 3
    assert tracer.evicted == 0
    sends = list(tracer.events(type="msg.send"))
    assert len(sends) == 1 and sends[0].node == 3
    assert len(list(tracer.events(prefix="msg."))) == 2
    assert len(list(tracer.events(since=2.0, until=2.0))) == 1
    assert tracer.type_counts() == {"msg.send": 1, "msg.deliver": 1, "timer.fire": 1}


def test_tracer_ring_evicts_oldest():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.emit(float(i), "tick", i)
    assert tracer.emitted == 10
    assert tracer.evicted == 6
    kept = [event.node for event in tracer.events()]
    assert kept == [6, 7, 8, 9]


def test_tracer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_trace_event_json_round_trip():
    event = TraceEvent(1.5, "msg.drop", 7, {"reason": "no_route", "dst": 9})
    back = TraceEvent.from_json(event.to_json())
    assert back == event


def test_jsonl_export_round_trip(tmp_path):
    tracer = Tracer()
    tracer.emit(0.0, "node.crash", 2, degree=3)
    tracer.emit(1.0, "msg.send", "a", dst=("b",), feature=np.array([1.0, 2.0]))
    path = tmp_path / "run.jsonl"
    written = tracer.export_jsonl(str(path))
    assert written == 2
    events = Tracer.load_jsonl(str(path))
    assert [event.type for event in events] == ["node.crash", "msg.send"]
    # numpy arrays serialize to lists; tuples come back as lists too.
    assert events[1].data["feature"] == [1.0, 2.0]
    assert events[1].data["dst"] == ["b"]
    streamed = list(iter_jsonl(str(path)))
    assert streamed == events


# ----------------------------------------------------------------------
# Metrics: counters, gauges, histogram bucket edges, registry
# ----------------------------------------------------------------------
def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = Gauge()
    gauge.set(2.5)
    gauge.inc(-0.5)
    assert gauge.value == 2.0


def test_histogram_bucket_edges_are_inclusive_upper():
    hist = Histogram(edges=(1.0, 5.0, 10.0))
    for value in (0.5, 1.0, 1.0001, 5.0, 9.9, 10.0, 11.0, 1e9):
        hist.observe(value)
    # Buckets: <=1, (1,5], (5,10], overflow.  Exactly-on-edge goes in-bucket.
    assert hist.counts == [2, 2, 2, 2]
    assert hist.count == 8
    assert hist.cumulative() == [2, 4, 6, 8]
    assert hist.mean == pytest.approx((0.5 + 1.0 + 1.0001 + 5.0 + 9.9 + 10.0 + 11.0 + 1e9) / 8)


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        Histogram(edges=(5.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(edges=())


def test_time_series_records_pairs():
    series = TimeSeries()
    series.observe(0.0, 1.0)
    series.observe(2.0, 3.0)
    assert series.points == [(0.0, 1.0), (2.0, 3.0)]
    assert series.values() == [1.0, 3.0]


def test_registry_get_or_create_and_type_checks(tmp_path):
    registry = MetricsRegistry()
    counter = registry.counter("msgs")
    assert registry.counter("msgs") is counter
    registry.gauge("depth").set(4)
    hist = registry.histogram("latency", edges=(1.0, 2.0))
    hist.observe(1.5)
    registry.series("rounds").observe(0.0, 1.0)
    with pytest.raises(TypeError):
        registry.gauge("msgs")  # name already bound to a Counter
    with pytest.raises(ValueError):
        registry.histogram("latency", edges=(1.0, 3.0))  # edge mismatch
    snapshot = registry.snapshot()
    assert snapshot["msgs"] == {"type": "counter", "value": 0.0}
    assert snapshot["latency"]["counts"] == [0, 1, 0]
    out = tmp_path / "metrics.json"
    registry.export_json(str(out))
    assert json.loads(out.read_text())["depth"]["value"] == 4.0
    assert registry.names() == ["depth", "latency", "msgs", "rounds"]
    assert "msgs" in registry and len(registry) == 4


# ----------------------------------------------------------------------
# Profiler: ambient activation, recording, report
# ----------------------------------------------------------------------
def test_profiled_context_sets_ambient_profiler():
    assert current_profiler() is None
    with profiled() as profiler:
        assert current_profiler() is profiler
        kernel = EventKernel()
        assert kernel.profiler is profiler
    assert current_profiler() is None


def test_profiler_records_kernel_callbacks():
    with profiled() as profiler:
        kernel = EventKernel()
        seen = []
        kernel.schedule(1.0, seen.append, "x")
        kernel.schedule(2.0, seen.append, "y")
        kernel.run()
    assert seen == ["x", "y"]
    assert profiler.total_events == 2
    (row,) = profiler.rows()
    name, events, _seconds = row
    assert events == 2 and "append" in name
    report = profiler.report()
    assert "append" in report


def test_profiler_merge():
    a, b = KernelProfiler(), KernelProfiler()
    a.record(len, 0.5)
    b.record(len, 0.25)
    b.record(max, 1.0)
    a.merge(b)
    assert a.total_events == 3
    assert a.total_seconds == pytest.approx(1.75)


# ----------------------------------------------------------------------
# Zero-cost-when-disabled: tracing must not change the run
# ----------------------------------------------------------------------
def _chaos_run(tracer):
    topology = grid_topology(6, 6)
    features = {
        node: np.array([(x + y) / 10.0])
        for node, (x, y) in topology.positions.items()
    }
    config = ELinkConfig(delta=1.0, signalling="explicit", failure_detection=True)
    network = Network(topology.graph.copy(), EventKernel(), tracer=tracer)
    plan = FaultPlan().crash(2.0, 21)
    injector = FaultInjector(network, plan)
    result = run_elink(
        topology, features, EuclideanMetric(), config,
        network=network, injector=injector, tracer=tracer,
    )
    return result, network


def test_traced_run_identical_to_untraced():
    plain, plain_net = _chaos_run(None)
    tracer = Tracer()
    traced, traced_net = _chaos_run(tracer)
    assert tracer.emitted > 0
    assert traced.total_messages == plain.total_messages
    assert traced.protocol_time == plain.protocol_time
    assert traced.num_clusters == plain.num_clusters
    assert traced.clustering.assignment == plain.clustering.assignment
    assert traced_net.stats.snapshot() == plain_net.stats.snapshot()


class _Sink(ProtocolNode):
    def __init__(self, node_id, network):
        super().__init__(node_id, network, np.zeros(1))
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def test_untraced_fast_path_has_no_tracer_attached():
    network = Network(grid_topology(2, 2).graph, EventKernel())
    assert network.tracer is None
    assert network.kernel.tracer is None
    nodes = {i: _Sink(i, network) for i in range(4)}
    assert all(node._obs is None for node in nodes.values())
    # The fast path still delivers: no tracer hooks fire, nothing breaks.
    sent = network.send(Message(kind="ping", src=0, dst=1, payload={}))
    network.run()
    assert sent and len(nodes[1].received) == 1


def test_tracer_attach_after_registration_is_rejected_by_contract():
    # Attaching a tracer later is allowed at the network level but nodes
    # cache their tracer at construction: the documented contract is
    # attach-at-construction.  Verify the setter threads to the kernel.
    network = Network(grid_topology(2, 2).graph, EventKernel())
    tracer = Tracer()
    network.tracer = tracer
    assert network.kernel.tracer is tracer
    assert network._tracer is tracer

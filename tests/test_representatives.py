"""Tests for representative sampling (paper §1 motivation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, run_elink
from repro.core.representatives import RepresentativeSampler
from repro.features import EuclideanMetric
from repro.geometry import grid_topology, random_geometric_topology


def _setup(delta=0.6):
    topology = grid_topology(6, 6)
    rng = np.random.default_rng(0)
    features = {
        v: np.array([0.1 * topology.positions[v][0] + rng.normal(0, 0.02)])
        for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    sampler = RepresentativeSampler(topology.graph, clustering, metric, feature_dim=1)
    return topology, features, clustering, sampler


def test_plan_lists_all_roots():
    topology, features, clustering, sampler = _setup()
    plan = sampler.plan(base_station=0)
    assert set(plan.representatives) == set(clustering.roots)
    assert 0 < plan.sampled_fraction <= 1.0


def test_plan_cost_reduction_positive():
    topology, features, clustering, sampler = _setup()
    plan = sampler.plan(base_station=0)
    assert plan.representative_collection_cost < plan.full_collection_cost
    assert plan.cost_reduction > 1.0


def test_reconstruct_requires_all_roots():
    topology, features, clustering, sampler = _setup()
    with pytest.raises(ValueError, match="missing cluster roots"):
        sampler.reconstruct({})


def test_reconstruction_error_bounded_by_delta():
    delta = 0.6
    topology, features, clustering, sampler = _setup(delta)
    errors = sampler.reconstruction_error(features)
    assert set(errors) == set(topology.graph.nodes)
    assert max(errors.values()) <= delta + 1e-9


def test_representatives_have_zero_error():
    topology, features, clustering, sampler = _setup()
    errors = sampler.reconstruction_error(features)
    for root in clustering.roots:
        assert errors[root] == pytest.approx(0.0)


@given(seed=st.integers(min_value=0, max_value=25), delta=st.floats(min_value=0.3, max_value=2.0))
@settings(max_examples=15, deadline=None)
def test_error_bound_property(seed, delta):
    topology = random_geometric_topology(40, seed=seed)
    rng = np.random.default_rng(seed + 9)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    sampler = RepresentativeSampler(topology.graph, clustering, metric, feature_dim=2)
    errors = sampler.reconstruction_error(features)
    # Pairwise delta-compactness bounds the estimate error by delta.
    assert max(errors.values()) <= delta + 1e-9


def test_partial_reconstruct_tolerates_dead_representatives():
    topology, features, clustering, sampler = _setup()
    roots = clustering.roots
    sampled = {root: features[root] for root in roots}
    dead_root = roots[0]
    del sampled[dead_root]
    with pytest.raises(ValueError, match="missing cluster roots"):
        sampler.reconstruct(sampled)
    estimates = sampler.reconstruct(sampled, partial=True)
    lost = set(clustering.members(dead_root))
    assert set(estimates) == set(clustering.assignment) - lost
    coverage = sampler.coverage(sampled)
    assert coverage == pytest.approx(1.0 - len(lost) / len(clustering.assignment))
    assert sampler.coverage({root: features[root] for root in roots}) == 1.0

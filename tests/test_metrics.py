"""Tests for feature metrics, including property-based axiom checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    EuclideanMetric,
    ManhattanMetric,
    MatrixMetric,
    TAO_WEIGHTS,
    WeightedEuclideanMetric,
    as_feature,
    check_metric_axioms,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
vectors = st.lists(finite_floats, min_size=1, max_size=6)


def test_as_feature_scalar_becomes_vector():
    out = as_feature(3.0)
    assert out.shape == (1,)


def test_as_feature_rejects_matrix():
    with pytest.raises(ValueError):
        as_feature(np.zeros((2, 2)))


def test_as_feature_rejects_nan():
    with pytest.raises(ValueError):
        as_feature([1.0, float("nan")])


def test_euclidean_known_value():
    metric = EuclideanMetric()
    assert metric.distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)


def test_manhattan_known_value():
    metric = ManhattanMetric()
    assert metric.distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)


def test_weighted_euclidean_known_value():
    metric = WeightedEuclideanMetric([4.0, 1.0])
    assert metric.distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(np.sqrt(4 + 4))


def test_weighted_euclidean_emphasizes_weighted_coordinates():
    metric = WeightedEuclideanMetric(TAO_WEIGHTS)
    base = np.zeros(4)
    move_first = np.array([0.1, 0, 0, 0])
    move_last = np.array([0, 0, 0, 0.1])
    assert metric.distance(base, move_first) > metric.distance(base, move_last)


def test_weighted_euclidean_dimension_mismatch():
    metric = WeightedEuclideanMetric([1.0, 1.0])
    with pytest.raises(ValueError):
        metric.distance([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])


def test_weighted_euclidean_rejects_bad_weights():
    with pytest.raises(ValueError):
        WeightedEuclideanMetric([1.0, 0.0])
    with pytest.raises(ValueError):
        WeightedEuclideanMetric([])
    with pytest.raises(ValueError):
        WeightedEuclideanMetric([1.0, -2.0])


def test_dimension_mismatch_raises():
    metric = EuclideanMetric()
    with pytest.raises(ValueError):
        metric.distance([1.0], [1.0, 2.0])


@pytest.mark.parametrize(
    "metric",
    [EuclideanMetric(), ManhattanMetric(), WeightedEuclideanMetric([0.5, 0.3, 0.2])],
    ids=["euclidean", "manhattan", "weighted"],
)
def test_axioms_on_random_sample(metric):
    rng = np.random.default_rng(0)
    sample = [rng.normal(size=3) for _ in range(6)]
    check_metric_axioms(metric, sample)


@given(a=vectors, b=vectors, c=vectors)
@settings(max_examples=60, deadline=None)
def test_euclidean_triangle_inequality_property(a, b, c):
    size = min(len(a), len(b), len(c))
    metric = EuclideanMetric()
    va, vb, vc = a[:size], b[:size], c[:size]
    assert metric.distance(va, vb) <= (
        metric.distance(va, vc) + metric.distance(vc, vb) + 1e-6
    )


@given(a=vectors, b=vectors)
@settings(max_examples=60, deadline=None)
def test_manhattan_symmetry_property(a, b):
    size = min(len(a), len(b))
    metric = ManhattanMetric()
    assert metric.distance(a[:size], b[:size]) == pytest.approx(
        metric.distance(b[:size], a[:size])
    )


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_weighted_euclidean_axioms_property(data):
    dim = data.draw(st.integers(min_value=1, max_value=4))
    weights = data.draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=dim, max_size=dim
        )
    )
    points = data.draw(
        st.lists(
            st.lists(finite_floats, min_size=dim, max_size=dim), min_size=2, max_size=4
        )
    )
    metric = WeightedEuclideanMetric(weights)
    check_metric_axioms(metric, points, tolerance=1e-5)


def test_pairwise_matches_distance():
    metric = WeightedEuclideanMetric([0.5, 0.5])
    rng = np.random.default_rng(1)
    sample = [rng.normal(size=2) for _ in range(5)]
    matrix = metric.pairwise(sample)
    for i in range(5):
        for j in range(5):
            assert matrix[i, j] == pytest.approx(metric.distance(sample[i], sample[j]))


def test_pairwise_empty_rejected():
    with pytest.raises(ValueError):
        EuclideanMetric().pairwise([])


# ----------------------------------------------------------------------
# MatrixMetric
# ----------------------------------------------------------------------
def fig3_metric():
    """A Fig-3-style 5-node distance table (consistent with the axioms)."""
    return MatrixMetric(
        {
            ("a", "b"): 2, ("a", "c"): 4, ("a", "d"): 5, ("a", "e"): 1,
            ("b", "c"): 3, ("b", "d"): 4, ("b", "e"): 2,
            ("c", "d"): 6, ("c", "e"): 5,
            ("d", "e"): 5,
        }
    )


def test_matrix_metric_lookup_and_symmetry():
    metric = fig3_metric()
    assert metric.distance("a", "b") == 2
    assert metric.distance("b", "a") == 2
    assert metric.distance("c", "c") == 0


def test_matrix_metric_unknown_pair():
    metric = fig3_metric()
    with pytest.raises(KeyError):
        metric.distance("a", "z")


def test_matrix_metric_rejects_triangle_violation():
    with pytest.raises(ValueError, match="triangle"):
        MatrixMetric({("a", "b"): 1, ("b", "c"): 1, ("a", "c"): 5})


def test_matrix_metric_rejects_negative():
    with pytest.raises(ValueError):
        MatrixMetric({("a", "b"): -1})


def test_matrix_metric_rejects_nonzero_self_distance():
    with pytest.raises(ValueError):
        MatrixMetric({("a", "a"): 2})


def test_matrix_metric_theorem1_reduction_distances_are_metric():
    """The 1/2-valued distances of the clique-cover reduction satisfy the
    triangle inequality (values in {1, 2} always do)."""
    rng = np.random.default_rng(0)
    names = [f"v{i}" for i in range(6)]
    table = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            table[(a, b)] = 1 if rng.random() < 0.5 else 2
    MatrixMetric(table)  # construction runs the triangle check


def test_check_metric_axioms_catches_violation():
    class Broken(EuclideanMetric):
        def distance(self, a, b):
            return -1.0

    with pytest.raises(AssertionError):
        check_metric_axioms(Broken(), [np.zeros(2), np.ones(2)])

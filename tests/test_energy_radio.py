"""Tests for the energy model and the lossy-link (ARQ) radio model."""

import networkx as nx
import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.features import EuclideanMetric
from repro.geometry import grid_topology
from repro.sim import (
    EnergyModel,
    EventKernel,
    LossyLinkModel,
    Message,
    Network,
    ProtocolNode,
)


class Sink(ProtocolNode):
    def handle_message(self, message):
        pass


def _network(**kwargs):
    graph = nx.path_graph(4)
    network = Network(graph, EventKernel(), **kwargs)
    for v in graph.nodes:
        Sink(v, network, np.zeros(1))
    return network


# ----------------------------------------------------------------------
# energy
# ----------------------------------------------------------------------
def test_energy_charged_per_hop():
    energy = EnergyModel(tx_per_value=2.0, rx_per_value=1.0)
    network = _network(energy=energy)
    network.route(Message("feature", 0, 3, values=2))  # 3 hops x 2 values
    network.run()
    # Each hop: sender pays 2 values x 2 J, receiver 2 values x 1 J.
    assert energy.spent[0] == pytest.approx(4.0)   # TX only
    assert energy.spent[1] == pytest.approx(6.0)   # RX 2 + TX 4
    assert energy.spent[2] == pytest.approx(6.0)
    assert energy.spent[3] == pytest.approx(2.0)   # RX only
    assert energy.total_energy() == pytest.approx(18.0)


def test_energy_hotspot_ranking():
    energy = EnergyModel(tx_per_value=1.0, rx_per_value=1.0)
    network = _network(energy=energy)
    for _ in range(3):
        network.route(Message("feature", 0, 3))
    network.run()
    hottest = energy.hottest(2)
    assert hottest[0][0] in (1, 2)  # relays burn the most


def test_energy_imbalance_balanced_vs_skewed():
    balanced = EnergyModel()
    balanced.spent = {0: 1.0, 1: 1.0, 2: 1.0}
    assert balanced.imbalance() == pytest.approx(1.0)
    skewed = EnergyModel()
    skewed.spent = {0: 10.0, 1: 1.0, 2: 1.0}
    assert skewed.imbalance() == pytest.approx(10.0 / 4.0)


def test_energy_lifetime_rounds():
    energy = EnergyModel()
    assert energy.lifetime_rounds(10.0, 2.0) == pytest.approx(5.0)
    assert energy.lifetime_rounds(10.0, 0.0) == float("inf")


def test_energy_validation():
    with pytest.raises(ValueError):
        EnergyModel(tx_per_value=0.0)


# ----------------------------------------------------------------------
# lossy links
# ----------------------------------------------------------------------
def test_loss_model_validation():
    with pytest.raises(ValueError):
        LossyLinkModel(1.0)
    with pytest.raises(ValueError):
        LossyLinkModel(-0.1)
    with pytest.raises(ValueError):
        LossyLinkModel(0.5, max_attempts=0)


def test_zero_loss_is_single_attempt():
    model = LossyLinkModel(0.0)
    assert all(model.attempts_for_hop() == 1 for _ in range(20))


def test_loss_attempts_mean_matches_expectation():
    model = LossyLinkModel(0.5, seed=3)
    samples = [model.attempts_for_hop() for _ in range(4000)]
    assert np.mean(samples) == pytest.approx(2.0, rel=0.1)
    assert min(samples) >= 1


def test_lossy_network_inflates_cost_and_delay():
    lossless = _network()
    lossless.route(Message("feature", 0, 3))
    lossless.run()
    lossy = _network(loss=LossyLinkModel(0.4, seed=7))
    lossy.route(Message("feature", 0, 3))
    lossy.run()
    assert lossy.stats.total_values >= lossless.stats.total_values
    assert lossy.kernel.now >= lossless.kernel.now


def test_elink_valid_under_loss_every_mode():
    topology = grid_topology(6, 6)
    rng = np.random.default_rng(0)
    features = {
        v: np.array([0.1 * topology.positions[v][0] + rng.normal(0, 0.01)])
        for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    for mode, window in (("implicit", 2.5), ("unordered", 2.5), ("explicit", 40.0)):
        network = Network(topology.graph, EventKernel(), loss=LossyLinkModel(0.2, seed=1))
        result = run_elink(
            topology,
            features,
            metric,
            ELinkConfig(delta=0.5, signalling=mode, ack_window=window),
            network=network,
        )
        violations = validate_clustering(
            topology.graph, result.clustering, features, metric, 0.5
        )
        assert violations == [], mode


def test_expected_inflation_formula():
    assert LossyLinkModel(0.2).expected_inflation() == pytest.approx(1.25)


# ----------------------------------------------------------------------
# delay jitter (asynchrony)
# ----------------------------------------------------------------------
def test_jitter_validation():
    with pytest.raises(ValueError):
        _network(jitter=-0.5)


def test_jitter_inflates_delay_not_cost():
    calm = _network()
    calm.route(Message("feature", 0, 3))
    calm.run()
    jittery = _network(jitter=2.0, jitter_seed=5)
    jittery.route(Message("feature", 0, 3))
    jittery.run()
    assert jittery.stats.total_values == calm.stats.total_values
    assert jittery.kernel.now > calm.kernel.now
    assert jittery.kernel.now <= calm.kernel.now * 3.0 + 1e-9  # <= (1+jitter)x


def test_elink_valid_under_jitter_both_modes():
    topology = grid_topology(6, 6)
    rng = np.random.default_rng(1)
    features = {
        v: np.array([0.1 * topology.positions[v][0] + rng.normal(0, 0.01)])
        for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    for mode in ("implicit", "explicit"):
        network = Network(topology.graph, EventKernel(), jitter=1.5, jitter_seed=2)
        result = run_elink(
            topology, features, metric, ELinkConfig(delta=0.5, signalling=mode),
            network=network,
        )
        assert validate_clustering(
            topology.graph, result.clustering, features, metric, 0.5
        ) == [], mode


# ----------------------------------------------------------------------
# lossy links: sampler edge cases
# ----------------------------------------------------------------------
def test_loss_max_attempts_caps_samples():
    model = LossyLinkModel(0.99, seed=5, max_attempts=10)
    samples = [model.attempts_for_hop() for _ in range(500)]
    assert max(samples) == 10  # p=0.99 overwhelmingly exceeds the cap
    assert min(samples) >= 1


def test_loss_buffer_refills_at_chunk_boundary():
    from repro.sim.radio import _SAMPLE_CHUNK

    model = LossyLinkModel(0.3, seed=9)
    for _ in range(_SAMPLE_CHUNK):
        model.attempts_for_hop()
    assert model._cursor == _SAMPLE_CHUNK  # buffer exactly exhausted
    model.attempts_for_hop()  # triggers the refill
    assert model._cursor == 1


def test_loss_determinism_across_refills():
    from repro.sim.radio import _SAMPLE_CHUNK

    n = 2 * _SAMPLE_CHUNK + 17  # spans three buffers
    a = LossyLinkModel(0.4, seed=21)
    b = LossyLinkModel(0.4, seed=21)
    assert [a.attempts_for_hop() for _ in range(n)] == [
        b.attempts_for_hop() for _ in range(n)
    ]
    # The chunked draws consume the generator exactly like scalar draws.
    rng = np.random.default_rng(21)
    expected = [max(1, int(x)) for x in rng.geometric(0.6, size=3 * _SAMPLE_CHUNK)][:n]
    c = LossyLinkModel(0.4, seed=21)
    assert [c.attempts_for_hop() for _ in range(n)] == expected

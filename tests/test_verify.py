"""Tests for the repro.verify correctness oracle.

Covers the invariant monitors (with synthetic violating streams — the
real protocol should never produce one, so violations are manufactured),
the stats-conservation check, the run-level verification policy, the
trace differ, and the replay determinism harness.
"""

import networkx as nx
import pytest

from repro.obs.trace import TraceEvent, Tracer
from repro.sim import EventKernel, Network
from repro.sim.messages import Message
from repro.sim.stats import MessageStats
from repro.verify import (
    AckConservationMonitor,
    InvariantError,
    MonitorSuite,
    MonotoneTimeMonitor,
    RepairCausalityMonitor,
    ScenarioSpec,
    TimerOwnershipMonitor,
    check_stats_conservation,
    diff_traces,
    replay_check,
    run_scenario,
    runtime_verifier,
    verification,
    verification_level,
)
from repro.verify.runtime import RunVerifier


def _event(time, type, node=None, **data):
    return TraceEvent(time, type, node, data)


# ----------------------------------------------------------------------
# invariant monitors (synthetic streams)
# ----------------------------------------------------------------------
def test_monotone_time_clean_and_violating():
    monitor = MonotoneTimeMonitor()
    for event in [_event(0.0, "msg.send"), _event(1.0, "msg.send"), _event(1.0, "msg.send")]:
        monitor.observe(event)
    assert monitor.finish() == []
    monitor = MonotoneTimeMonitor()
    monitor.observe(_event(2.0, "msg.send"))
    monitor.observe(_event(1.0, "msg.send"))
    assert len(monitor.finish()) == 1


def test_timer_ownership_flags_dead_owner_fire():
    monitor = TimerOwnershipMonitor()
    monitor.observe(_event(1.0, "node.crash", "a"))
    monitor.observe(_event(2.0, "timer.fire", "a", callback="f"))
    violations = monitor.finish()
    assert len(violations) == 1
    assert "dead owner" in violations[0].detail


def test_timer_ownership_allows_unowned_and_recovered():
    monitor = TimerOwnershipMonitor()
    monitor.observe(_event(1.0, "node.crash", "a"))
    monitor.observe(_event(2.0, "timer.fire", None, callback="f"))  # unattributed
    monitor.observe(_event(3.0, "node.recover", "a"))
    monitor.observe(_event(4.0, "timer.fire", "a", callback="f"))  # recovered
    assert monitor.finish() == []


def test_timer_ownership_flags_dead_setting_timer():
    monitor = TimerOwnershipMonitor()
    monitor.observe(_event(1.0, "node.crash", "a"))
    monitor.observe(_event(2.0, "timer.set", "a", callback="f", delay=1.0))
    assert len(monitor.finish()) == 1


def test_ack_conservation_balanced_is_clean():
    monitor = AckConservationMonitor()
    monitor.observe(_event(1.0, "msg.deliver", "p", src="c", kind="ack1"))
    monitor.observe(_event(2.0, "msg.deliver", "p", src="c", kind="ack2"))
    assert monitor.finish() == []


def test_ack_conservation_flags_unmatched_ack2():
    monitor = AckConservationMonitor()
    monitor.observe(_event(1.0, "msg.deliver", "p", src="c", kind="ack2"))
    violations = monitor.finish()
    assert len(violations) == 1
    assert "no outstanding ack1" in violations[0].detail


def test_ack_conservation_is_per_node():
    monitor = AckConservationMonitor()
    monitor.observe(_event(1.0, "msg.deliver", "p", src="c", kind="ack1"))
    monitor.observe(_event(2.0, "msg.deliver", "q", src="c", kind="ack2"))  # other node
    assert len(monitor.finish()) == 1


def test_repair_causality_flags_repair_before_crash():
    monitor = RepairCausalityMonitor()
    monitor.observe(_event(5.0, "node.crash", "a"))
    monitor.observe(_event(3.0, "repair.note", "s", kind="prune_child", dead="a"))
    # Feed order is stream order; the repair event carries an earlier time.
    assert len(monitor.finish()) == 1


def test_repair_causality_allows_non_crashed_targets():
    # prune_child legitimately fires for alive-but-unreachable nodes.
    monitor = RepairCausalityMonitor()
    monitor.observe(_event(3.0, "repair.note", "s", kind="prune_child", dead="a"))
    monitor.observe(_event(5.0, "node.crash", "b"))
    monitor.observe(_event(6.0, "repair.note", "s", kind="sentinel_failover", dead="b"))
    assert monitor.finish() == []


# ----------------------------------------------------------------------
# stats conservation
# ----------------------------------------------------------------------
def test_stats_conservation_clean_after_charges():
    stats = MessageStats()
    stats.charge("join", "clustering", 2, hops=3)
    stats.record(Message(src="a", dst="b", kind="ack1", category="clustering"))
    assert check_stats_conservation(stats) == []


def test_stats_conservation_detects_corrupt_total():
    stats = MessageStats()
    stats.charge("join", "clustering", 1, hops=1)
    stats._total_packets += 1  # simulate a missed-counter bug
    violations = check_stats_conservation(stats)
    assert violations
    assert all(v.invariant == "stats-conservation" for v in violations)


# ----------------------------------------------------------------------
# MonitorSuite plumbing
# ----------------------------------------------------------------------
def test_suite_attach_observes_and_detaches():
    tracer = Tracer()
    suite = MonitorSuite()
    suite.attach(tracer)
    tracer.emit(1.0, "node.crash", "a")
    tracer.emit(2.0, "timer.fire", "a", callback="f")
    violations = suite.finish()
    assert suite.events_observed == 2
    assert len(violations) == 1
    tracer.emit(3.0, "timer.fire", "a", callback="f")  # after detach: unseen
    assert suite.events_observed == 2


def test_suite_double_attach_rejected():
    suite = MonitorSuite()
    suite.attach(Tracer())
    with pytest.raises(RuntimeError, match="already attached"):
        suite.attach(Tracer())


def test_suite_feed_offline():
    suite = MonitorSuite()
    suite.feed([_event(1.0, "node.crash", "a"), _event(2.0, "timer.set", "a", callback="f")])
    assert len(suite.finish()) == 1


# ----------------------------------------------------------------------
# run-level policy
# ----------------------------------------------------------------------
def test_verifier_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert verification_level() == "off"
    assert runtime_verifier() is None


def test_verification_context_sets_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    with verification("full"):
        assert verification_level() == "full"
        verifier = runtime_verifier()
        assert verifier is not None and verifier.level == "full"
    assert verification_level() == "off"


def test_unknown_level_degrades_to_off(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "bogus")
    assert verification_level() == "off"


def test_run_verifier_finish_raises_on_corrupt_stats():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    network.stats.charge("join", "clustering", 1, hops=1)
    network.stats._total_values += 5  # corrupt the running total
    from repro.core import clustering_from_assignment
    import numpy as np

    features = {0: np.zeros(1), 1: np.zeros(1)}
    clustering = clustering_from_assignment(graph, {0: 0, 1: 0}, features)
    from repro.features import EuclideanMetric

    verifier = RunVerifier("cheap")
    with pytest.raises(InvariantError, match="stats-conservation"):
        verifier.finish(
            network=network,
            graph=graph,
            clustering=clustering,
            features=features,
            metric=EuclideanMetric(),
            delta=1.0,
        )


def test_full_level_installs_and_removes_private_tracer():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    verifier = RunVerifier("full")
    verifier.attach(network)
    assert network.tracer is not None
    import numpy as np

    from repro.core import clustering_from_assignment
    from repro.features import EuclideanMetric

    features = {0: np.zeros(1), 1: np.zeros(1)}
    clustering = clustering_from_assignment(graph, {0: 0, 1: 0}, features)
    verifier.finish(
        network=network,
        graph=graph,
        clustering=clustering,
        features=features,
        metric=EuclideanMetric(),
        delta=1.0,
    )
    assert network.tracer is None  # private tracer removed again


# ----------------------------------------------------------------------
# verified end-to-end runs and the replay differ
# ----------------------------------------------------------------------
def test_run_scenario_fully_verified_clean():
    result = run_scenario(
        ScenarioSpec(side=5, seed=2, crash_fraction=0.12), level="full"
    )
    assert result.num_clusters >= 1


def test_diff_traces_identical_and_divergent():
    events = [_event(1.0, "msg.send", "a", kind="join"), _event(2.0, "msg.deliver", "b")]
    assert diff_traces(events, list(events)) is None
    mutated = [events[0], _event(2.0, "msg.deliver", "c")]
    divergence = diff_traces(events, mutated)
    assert divergence is not None and divergence.index == 1
    shorter = diff_traces(events, events[:1])
    assert shorter is not None and shorter.second is None


def test_replay_check_is_deterministic():
    report = replay_check(ScenarioSpec(side=5, seed=4, crash_fraction=0.1))
    assert report.identical, str(report)
    assert report.events > 0

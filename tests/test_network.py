"""Tests for the message-passing network layer and protocol node base."""

import networkx as nx
import numpy as np
import pytest

from repro.geometry import grid_topology
from repro.sim import EventKernel, Message, Network, ProtocolNode


class Recorder(ProtocolNode):
    """Collects every delivered message with its arrival time."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network, np.zeros(1))
        self.received = []

    def handle_message(self, message):
        self.received.append((message, self.now))


def _line_network(n=4, hop_delay=1.0):
    graph = nx.path_graph(n)
    network = Network(graph, EventKernel(), hop_delay=hop_delay)
    nodes = {i: Recorder(i, network) for i in range(n)}
    return network, nodes


def test_send_requires_adjacency():
    network, nodes = _line_network()
    with pytest.raises(ValueError, match="adjacency"):
        network.send(Message("feature", 0, 3))


def test_send_delivers_after_one_hop_delay():
    network, nodes = _line_network(hop_delay=2.0)
    network.send(Message("feature", 0, 1))
    network.run()
    assert len(nodes[1].received) == 1
    _, arrival = nodes[1].received[0]
    assert arrival == 2.0


def test_route_charges_values_times_hops():
    network, nodes = _line_network()
    hops = network.route(Message("feature", 0, 3, values=4))
    network.run()
    assert hops == 3
    assert network.stats.total_values == 12
    assert nodes[3].received[0][1] == 3.0


def test_route_to_self_is_free():
    network, nodes = _line_network()
    hops = network.route(Message("feature", 1, 1))
    network.run()
    assert hops == 0
    assert network.stats.total_values == 0
    assert len(nodes[1].received) == 1


def test_route_along_validates_path():
    network, nodes = _line_network()
    with pytest.raises(ValueError, match="path must run"):
        network.route_along([1, 2], Message("feature", 0, 2))
    with pytest.raises(ValueError, match="not a graph edge"):
        network.route_along([0, 2], Message("feature", 0, 2))


def test_route_along_charges_path_length():
    network, nodes = _line_network()
    network.route_along([0, 1, 2], Message("feature", 0, 2, values=3))
    network.run()
    assert network.stats.total_values == 6


def test_broadcast_reaches_all_neighbors():
    topology = grid_topology(3, 3)
    network = Network(topology.graph, EventKernel())
    nodes = {v: Recorder(v, network) for v in topology.graph.nodes}
    count = network.broadcast(4, lambda nb: Message("feature", 4, nb))  # center node
    network.run()
    assert count == 4
    for neighbor in topology.graph.neighbors(4):
        assert len(nodes[neighbor].received) == 1


def test_unregistered_handler_raises():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    Recorder(0, network)
    network.send(Message("feature", 0, 1))
    with pytest.raises(KeyError, match="no handler"):
        network.run()


def test_register_unknown_node_rejected():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    with pytest.raises(KeyError):
        network.register(99, object())


def test_hop_distance_uses_shortest_path():
    network, _ = _line_network(5)
    assert network.hop_distance(0, 4) == 4
    assert network.hop_distance(2, 2) == 0


def test_no_path_raises():
    graph = nx.Graph()
    graph.add_nodes_from([0, 1])
    network = Network(graph, EventKernel())
    Recorder(0, network)
    Recorder(1, network)
    with pytest.raises(nx.NetworkXNoPath):
        network.route(Message("feature", 0, 1))


def test_empty_graph_rejected():
    with pytest.raises(ValueError):
        Network(nx.Graph(), EventKernel())


def test_hop_delay_must_be_positive():
    with pytest.raises(ValueError):
        Network(nx.path_graph(2), EventKernel(), hop_delay=0.0)


class Echo(ProtocolNode):
    """Replies to ping with pong via the dispatch mechanism."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network, np.zeros(1))
        self.pongs = 0

    def handle_ping(self, message):
        self.send(message.src, "pong")

    def handle_pong(self, message):
        self.pongs += 1


def test_protocol_node_dispatch():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    a, b = Echo(0, network), Echo(1, network)
    a.send(1, "ping")
    network.run()
    assert a.pongs == 1


def test_protocol_node_unknown_kind_raises():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    a, b = Echo(0, network), Echo(1, network)
    a.send(1, "mystery")
    with pytest.raises(NotImplementedError, match="mystery"):
        network.run()


def test_protocol_node_timer():
    graph = nx.path_graph(2)
    network = Network(graph, EventKernel())
    node = Echo(0, network)
    Echo(1, network)
    fired = []
    node.set_timer(3.0, lambda: fired.append(node.now))
    network.run()
    assert fired == [3.0]


def test_message_validation():
    with pytest.raises(ValueError):
        Message("feature", 0, 1, values=0)
    message = Message("expand", 0, 1)
    assert message.category == "clustering"
    assert Message("phase1", 0, 1).category == "sync"
    assert Message("unknown_kind", 0, 1).category == "data"


def test_stats_snapshot_and_diff():
    network, _ = _line_network()
    network.send(Message("expand", 0, 1, values=2))
    snap = network.stats.snapshot()
    network.send(Message("expand", 1, 2, values=2))
    network.run()
    diff = network.stats.diff(snap)
    assert diff.total_values == 2
    assert network.stats.total_values == 4
    assert network.stats.category_values("clustering") == 4


def test_stats_reset():
    network, _ = _line_network()
    network.send(Message("feature", 0, 1))
    network.stats.reset()
    assert network.stats.total_values == 0
    assert network.stats.total_packets == 0


def test_stats_rejects_zero_hops():
    network, _ = _line_network()
    with pytest.raises(ValueError):
        network.stats.record(Message("feature", 0, 1), hops=0)


# ----------------------------------------------------------------------
# fast path vs general path
# ----------------------------------------------------------------------
def _grid_network(**kwargs):
    topology = grid_topology(4, 4)
    network = Network(topology.graph, EventKernel(), **kwargs)
    nodes = {v: Recorder(v, network) for v in topology.graph.nodes}
    return network, nodes


def _drive_mixed_traffic(network):
    """A deterministic workload exercising send, route and broadcast."""
    network.send(Message("expand", 0, 1, values=2))
    network.route(Message("query", 0, 15, values=3))
    network.broadcast(5, lambda nb: Message("phase1", 5, nb))
    network.route_along([0, 1, 2, 3], Message("feature", 0, 3, values=4))
    network.run()


def _delivery_trace(nodes):
    return {
        v: [(m.kind, m.src, m.values, t) for m, t in node.received]
        for v, node in nodes.items()
    }


def test_fast_path_matches_general_path():
    """The zero-overhead path (jitter=0, no loss) must be observationally
    identical to the general per-hop path.  A zero-probability loss model
    forces the general machinery (per-hop charging, per-attempt delays)
    without changing any outcome, so every counter, energy charge and
    arrival time must agree bit for bit."""
    from repro.sim.energy import EnergyModel
    from repro.sim.radio import LossyLinkModel

    fast_net, fast_nodes = _grid_network(energy=EnergyModel())
    assert fast_net._fast
    general_net, general_nodes = _grid_network(
        energy=EnergyModel(), loss=LossyLinkModel(0.0)
    )
    assert not general_net._fast

    _drive_mixed_traffic(fast_net)
    _drive_mixed_traffic(general_net)

    assert fast_net.stats.packets_by_kind == general_net.stats.packets_by_kind
    assert fast_net.stats.values_by_kind == general_net.stats.values_by_kind
    assert fast_net.stats.values_by_category == general_net.stats.values_by_category
    assert fast_net.stats.total_packets == general_net.stats.total_packets
    assert fast_net.energy.spent == general_net.energy.spent
    assert _delivery_trace(fast_nodes) == _delivery_trace(general_nodes)
    assert fast_net.kernel.now == general_net.kernel.now


def test_jitter_deterministic_per_seed():
    """Batched jitter sampling stays reproducible: same seed, same arrivals."""
    traces = []
    for _ in range(2):
        network, nodes = _grid_network(jitter=0.5, jitter_seed=7)
        _drive_mixed_traffic(network)
        traces.append(_delivery_trace(nodes))
    assert traces[0] == traces[1]
    network, nodes = _grid_network(jitter=0.5, jitter_seed=8)
    _drive_mixed_traffic(network)
    assert _delivery_trace(nodes) != traces[0]


# ----------------------------------------------------------------------
# path cache
# ----------------------------------------------------------------------
def test_bfs_paths_match_networkx():
    """BFS-on-demand must reproduce networkx's exact paths (not just
    lengths) — routed energy traces depend on the tie-breaking."""
    graph = nx.gnp_random_graph(24, 0.15, seed=3)
    graph.add_edges_from(nx.path_graph(24).edges)  # guarantee connectivity
    network = Network(graph, EventKernel())
    for src in graph.nodes:
        expected = nx.single_source_shortest_path(graph, src)
        for dst in graph.nodes:
            assert tuple(network.shortest_path(src, dst)) == tuple(expected[dst])


def test_path_cache_eviction_stays_correct():
    graph = nx.path_graph(6)
    network = Network(graph, EventKernel(), path_cache_size=2)
    for src in range(6):
        for dst in range(6):
            path = network.shortest_path(src, dst)
            assert len(path) == abs(src - dst) + 1
    assert len(network._path_cache) <= 2
    assert tuple(network.shortest_path(5, 0)) == (5, 4, 3, 2, 1, 0)


def test_invalidate_paths_after_topology_change():
    graph = nx.path_graph(4)
    network = Network(graph, EventKernel())
    nodes = {i: Recorder(i, network) for i in range(4)}
    assert network.hop_distance(0, 3) == 3
    graph.add_edge(0, 3)
    # Precomputed adjacency is stale until the caller resynchronizes.
    with pytest.raises(ValueError, match="adjacency"):
        network.send(Message("feature", 0, 3))
    network.invalidate_paths()
    assert network.hop_distance(0, 3) == 1
    network.send(Message("feature", 0, 3))
    network.run()
    assert len(nodes[3].received) == 1


# ----------------------------------------------------------------------
# incremental adjacency patching (both engines)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["object", "array"])
def test_adjacency_patching_matches_full_rebuild(engine):
    """Random crash/restore/link-flap sequences: the patched adjacency must
    equal a from-scratch rebuild over the mutated graph, row for row."""
    import random

    rng = random.Random(99)
    base = grid_topology(6, 6).graph
    network = Network(base.copy(), engine=engine)
    removed_nodes = {}
    removed_edges = set()

    for _ in range(120):
        op = rng.choice(["crash", "restore", "down", "up"])
        if op == "crash":
            alive = [v for v in network.graph.nodes if network.is_alive(v)]
            if len(alive) > 2:
                victim = rng.choice(alive)
                removed_nodes[victim] = network.remove_node(victim)
        elif op == "restore" and removed_nodes:
            victim = rng.choice(sorted(removed_nodes))
            neighbours = [
                v for v in removed_nodes.pop(victim) if v in network.graph.nodes
            ]
            network.restore_node(victim, neighbours)
        elif op == "down":
            edges = list(network.graph.edges)
            if edges:
                u, v = rng.choice(edges)
                if network.remove_edge(u, v):
                    removed_edges.add((u, v))
        elif op == "up" and removed_edges:
            u, v = rng.choice(sorted(removed_edges))
            if u in network.graph.nodes and v in network.graph.nodes:
                network.restore_edge(u, v)
            removed_edges.discard((u, v))

    # Rebuild over the *same* graph object: nx .copy() normalizes adjacency
    # order (it re-adds edges lowest-node-first), so a copy is not the
    # reference — the mutated graph's own insertion order is.
    fresh = Network(network.graph, engine=engine)
    assert set(network.graph.nodes) == set(fresh.graph.nodes)
    for node in network.graph.nodes:
        assert network._adj[node] == fresh._adj[node], node
        assert network._adj_sets[node] == fresh._adj_sets[node], node
    for gone in removed_nodes:
        assert gone not in network._adj
        assert network._adj.get(gone) is None


@pytest.mark.parametrize("engine", ["object", "array"])
def test_adjacency_patch_preserves_neighbour_order(engine):
    network = Network(grid_topology(4, 4).graph.copy(), engine=engine)
    before = network._adj[5]
    assert network.remove_edge(5, 6)
    after = network._adj[5]
    # removal filters in place: surviving neighbours keep their order
    assert after == tuple(v for v in before if v != 6)
    network.restore_edge(5, 6)
    # restoration appends, matching graph.adj insertion order
    assert network._adj[5] == after + (6,)
    fresh = Network(network.graph.copy(), engine=engine)
    assert network._adj[5] == fresh._adj[5]

"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import EventKernel, TimerWheelKernel


def test_events_run_in_time_order():
    kernel = EventKernel()
    seen = []
    kernel.schedule(3.0, seen.append, "c")
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(2.0, seen.append, "b")
    kernel.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    kernel = EventKernel()
    seen = []
    for label in "abcde":
        kernel.schedule(1.0, seen.append, label)
    kernel.run()
    assert seen == list("abcde")


def test_now_advances_to_event_time():
    kernel = EventKernel()
    times = []
    kernel.schedule(2.5, lambda: times.append(kernel.now))
    kernel.run()
    assert times == [2.5]
    assert kernel.now == 2.5


def test_nested_scheduling():
    kernel = EventKernel()
    seen = []

    def outer():
        seen.append(("outer", kernel.now))
        kernel.schedule(1.0, inner)

    def inner():
        seen.append(("inner", kernel.now))

    kernel.schedule(1.0, outer)
    kernel.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_cancelled_event_does_not_fire():
    kernel = EventKernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "x")
    event.cancel()
    kernel.run()
    assert seen == []
    assert kernel.events_executed == 0


def test_cancel_is_idempotent():
    kernel = EventKernel()
    event = kernel.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    kernel.run()


def test_run_until_stops_before_later_events():
    kernel = EventKernel()
    seen = []
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(5.0, seen.append, "b")
    kernel.run(until=2.0)
    assert seen == ["a"]
    assert kernel.now == 2.0
    kernel.run()
    assert seen == ["a", "b"]


def test_run_until_advances_time_when_heap_empty():
    kernel = EventKernel()
    kernel.run(until=10.0)
    assert kernel.now == 10.0


def test_negative_delay_rejected():
    kernel = EventKernel()
    with pytest.raises(ValueError):
        kernel.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    kernel = EventKernel()
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    with pytest.raises(ValueError):
        kernel.schedule_at(1.0, lambda: None)


def test_schedule_at_absolute_time():
    kernel = EventKernel()
    times = []
    kernel.schedule_at(4.0, lambda: times.append(kernel.now))
    kernel.run()
    assert times == [4.0]


def test_max_events_guard_raises():
    kernel = EventKernel()

    def loop():
        kernel.schedule(1.0, loop)

    kernel.schedule(1.0, loop)
    with pytest.raises(RuntimeError, match="max_events"):
        kernel.run(max_events=10)


def test_max_events_is_resumable():
    """The guard is checked before the pop, so the offending event stays
    queued and the kernel can be resumed with a larger budget."""
    kernel = EventKernel()
    order = []
    for i in range(5):
        kernel.schedule(float(i + 1), order.append, i)
    with pytest.raises(RuntimeError, match="max_events"):
        kernel.run(max_events=3)
    assert order == [0, 1, 2]
    assert kernel.pending == 2
    kernel.run()
    assert order == [0, 1, 2, 3, 4]
    assert kernel.now == 5.0


def test_step_executes_single_event():
    kernel = EventKernel()
    seen = []
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(2.0, seen.append, "b")
    assert kernel.step() is True
    assert seen == ["a"]
    assert kernel.step() is True
    assert kernel.step() is False
    assert seen == ["a", "b"]


def test_events_executed_counter():
    kernel = EventKernel()
    for _ in range(5):
        kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.events_executed == 5


def test_pending_counts_queued_events():
    kernel = EventKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    assert kernel.pending == 2
    kernel.run()
    assert kernel.pending == 0


# ----------------------------------------------------------------------
# cancellation safety for crashed nodes' timers
# ----------------------------------------------------------------------
def test_cancel_after_fire_is_noop():
    kernel = EventKernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "a")
    kernel.run()
    assert event.fired and seen == ["a"]
    event.cancel()  # blanket-cancel of a crashed node's timers hits these
    assert seen == ["a"]
    assert "fired" in repr(event)


def test_double_cancel_is_safe():
    kernel = EventKernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "a")
    event.cancel()
    event.cancel()
    kernel.run()
    assert seen == []
    assert not event.fired
    assert "cancelled" in repr(event)


def test_cancelled_event_skipped_by_step():
    kernel = EventKernel()
    seen = []
    kernel.schedule(1.0, seen.append, "a").cancel()
    kernel.schedule(2.0, seen.append, "b")
    assert kernel.step() is True
    assert seen == ["b"]


def test_kernel_resumes_across_fault_events():
    """run(until=...) then more scheduling then run() — the pattern a
    fault injector interleaves with a protocol."""
    kernel = EventKernel()
    seen = []
    kernel.schedule(1.0, seen.append, "protocol-1")
    kernel.schedule(5.0, seen.append, "protocol-2")
    kernel.run(until=2.0)
    assert seen == ["protocol-1"]
    assert kernel.now == 2.0
    kernel.schedule(1.0, seen.append, "fault")  # lands at t=3, before p-2
    kernel.run()
    assert seen == ["protocol-1", "fault", "protocol-2"]
    assert kernel.now == 5.0


# ----------------------------------------------------------------------
# TimerWheelKernel: identical observable semantics to the heap kernel
# ----------------------------------------------------------------------
@pytest.fixture(params=[EventKernel, TimerWheelKernel])
def any_kernel(request):
    return request.param()


def test_wheel_time_order_and_fifo(any_kernel):
    kernel = any_kernel
    seen = []
    kernel.schedule(3.0, seen.append, "c")
    kernel.schedule(1.0, seen.append, "a1")
    kernel.post(1.0, seen.append, "a2")
    kernel.schedule(2.0, seen.append, "b")
    kernel.post(1.0, seen.append, "a3")
    kernel.run()
    assert seen == ["a1", "a2", "a3", "b", "c"]
    assert kernel.events_executed == 5
    assert kernel.pending == 0


def test_wheel_interleaved_schedule_and_post_share_fifo(any_kernel):
    kernel = any_kernel
    seen = []

    def reschedule(label):
        seen.append(label)
        if label == "x":
            kernel.post(0.0, seen.append, "nested")

    kernel.post(1.0, reschedule, "x")
    kernel.schedule(1.0, seen.append, "y")
    kernel.run()
    # The nested 0-delay post lands at the same timestamp, after "y".
    assert seen == ["x", "y", "nested"]


def test_wheel_cancellation_and_pending(any_kernel):
    kernel = any_kernel
    seen = []
    event = kernel.schedule(1.0, seen.append, "dead")
    kernel.schedule(1.0, seen.append, "live")
    event.cancel()
    assert kernel.pending == 2  # cancelled entries stay queued until reaped
    kernel.run()
    assert seen == ["live"]
    assert kernel.events_executed == 1
    assert kernel.pending == 0


def test_wheel_until_stops_before_later_events(any_kernel):
    kernel = any_kernel
    seen = []
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(5.0, seen.append, "b")
    assert kernel.run(until=2.5) == 2.5
    assert seen == ["a"]
    assert kernel.pending == 1
    kernel.run()
    assert seen == ["a", "b"]


def test_wheel_max_events_resumable(any_kernel):
    """max_events is checked before the pop: the offending event stays
    queued and the kernel resumes cleanly with a larger budget."""
    kernel = any_kernel
    seen = []
    for label in "abcde":
        kernel.schedule(1.0, seen.append, label)
    with pytest.raises(RuntimeError, match="max_events"):
        kernel.run(max_events=2)
    assert seen == ["a", "b"]
    assert kernel.pending == 3
    kernel.run()
    assert seen == list("abcde")
    assert kernel.events_executed == 5


def test_wheel_step_semantics(any_kernel):
    kernel = any_kernel
    seen = []
    kernel.schedule(1.0, seen.append, "a").cancel()
    kernel.schedule(2.0, seen.append, "b")
    assert kernel.step() is True
    assert seen == ["b"]
    assert kernel.step() is False


def test_wheel_matches_heap_on_random_workload():
    """Same pseudo-random schedule/post/cancel workload, same execution
    order on both kernels — the (time, seq) contract end to end."""
    import random

    def drive(kernel):
        rng = random.Random(1234)
        seen = []
        handles = []

        def fire(tag):
            seen.append((round(kernel.now, 6), tag))
            if rng.random() < 0.3:
                kernel.post(rng.choice([0.0, 1.0, 1.0, 2.5]), fire, f"{tag}+")

        for k in range(60):
            delay = rng.choice([0.0, 1.0, 1.0, 1.0, 2.0, 7.25])
            if rng.random() < 0.5:
                handles.append(kernel.schedule(delay, fire, f"s{k}"))
            else:
                kernel.post(delay, fire, f"p{k}")
        for handle in handles[::3]:
            handle.cancel()
        kernel.run()
        return seen

    assert drive(EventKernel()) == drive(TimerWheelKernel())


def test_wheel_pushes_counter_monotone():
    kernel = TimerWheelKernel()
    assert kernel.pushes == 0
    kernel.post(1.0, lambda: None)
    kernel.schedule(1.0, lambda: None)
    assert kernel.pushes == 2
    kernel.run()
    assert kernel.pushes == 2  # firing does not push

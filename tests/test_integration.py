"""End-to-end integration: dataset -> clustering -> index -> queries ->
maintenance, with invariants checked at every stage."""

import numpy as np

from repro.core import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    run_elink,
    validate_clustering,
)
from repro.datasets import fit_features, generate_tao_dataset
from repro.index import build_backbone, build_mtree, verify_covering_invariant
from repro.queries import (
    PathQueryEngine,
    RangeQueryEngine,
    TagEngine,
    bfs_flood_path,
    brute_force_range,
)

DELTA = 0.15
SLACK = 0.02


def test_full_pipeline_on_tao():
    dataset = generate_tao_dataset(
        seed=13, samples_per_day=24, training_days=10, stream_days=2
    )
    models, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    # 1. Cluster (both modes) and validate.
    implicit = run_elink(
        topology, features, metric, ELinkConfig(delta=DELTA - 2 * SLACK)
    )
    explicit = run_elink(
        topology,
        features,
        metric,
        ELinkConfig(delta=DELTA - 2 * SLACK, signalling="explicit"),
    )
    for result in (implicit, explicit):
        assert validate_clustering(
            topology.graph, result.clustering, features, metric, DELTA - 2 * SLACK
        ) == []
    assert explicit.sync_messages > 0

    # 2. Index: M-tree covering invariant + backbone spanning the roots.
    clustering = implicit.clustering
    mtree = build_mtree(clustering, features, metric)
    assert verify_covering_invariant(mtree, clustering, features, metric) == []
    backbone = build_backbone(topology.graph, clustering)
    assert set(backbone.tree.nodes) == set(clustering.roots)

    # 3. Range queries agree with brute force and undercut TAG on average.
    engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
    tag = TagEngine(topology.graph, features, metric)
    rng = np.random.default_rng(0)
    nodes = list(topology.graph.nodes)
    clustered_costs = []
    for _ in range(20):
        q = features[nodes[int(rng.integers(len(nodes)))]]
        radius = 0.8 * DELTA
        out = engine.query(q, radius, nodes[int(rng.integers(len(nodes)))])
        assert out.matches == brute_force_range(features, metric, q, radius)
        clustered_costs.append(out.messages)
    assert np.mean(clustered_costs) < tag.per_query_cost()

    # 4. Path queries agree with the flood baseline on feasibility.
    path_engine = PathQueryEngine(topology.graph, clustering, features, metric, mtree)
    danger = features[nodes[0]]
    for destination in nodes[1::7]:
        ours = path_engine.query(nodes[-1], destination, danger, gamma=0.05)
        flood = bfs_flood_path(
            topology.graph, features, metric, nodes[-1], destination, danger, 0.05
        )
        assert (ours.path is None) == (flood.path is None)

    # 5. Maintenance: stream a day of measurements; ELink update messages
    #    stay far below the centralized baseline.
    session = MaintenanceSession(
        topology.graph, clustering, features, metric, DELTA, SLACK
    )
    centralized = CentralizedUpdateBaseline(topology.graph, features, 0, SLACK)
    for t in range(24):
        for node in nodes:
            value = float(dataset.stream[node][t])
            feature = models[node].observe(value)
            session.update_feature(node, feature)
            centralized.update_feature(node, feature)
    assert centralized.total_messages() >= session.total_messages()

    # 6. The maintained clustering still covers every node, connected.
    final = session.current_clustering()
    assert sorted(final.assignment) == sorted(topology.graph.nodes)
    import networkx as nx

    for root, members in final.clusters().items():
        assert nx.is_connected(topology.graph.subgraph(members))


def test_public_api_surface():
    """Everything advertised in repro.__all__ resolves."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None

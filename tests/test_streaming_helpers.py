"""Tests for the experiment streaming driver and misc experiment plumbing."""

import numpy as np
import pytest

from repro.core import CentralizedUpdateBaseline, ELinkConfig, MaintenanceSession, run_elink
from repro.datasets import generate_tao_dataset
from repro.experiments.streaming import features_of, reset_models, stream_tao


@pytest.fixture(scope="module")
def tiny_tao():
    return generate_tao_dataset(
        seed=5, samples_per_day=8, training_days=5, stream_days=3
    )


def test_reset_models_initializes_every_node(tiny_tao):
    models = reset_models(tiny_tao)
    assert set(models) == set(tiny_tao.topology.graph.nodes)
    features = features_of(models)
    for node, feature in features.items():
        assert feature.shape == (4,)
        assert np.all(np.isfinite(feature))


def test_stream_tao_returns_per_day_cumulative(tiny_tao):
    models = reset_models(tiny_tao)
    features = features_of(models)
    metric = tiny_tao.metric()
    clustering = run_elink(
        tiny_tao.topology, features, metric, ELinkConfig(delta=0.2)
    ).clustering
    session = MaintenanceSession(
        tiny_tao.topology.graph, clustering, features, metric, 0.3, 0.05
    )
    out = stream_tao(tiny_tao, models, {"elink": session})
    assert list(out) == ["elink"]
    series = out["elink"]
    assert len(series) == 3  # one entry per stream day
    assert all(b >= a for a, b in zip(series, series[1:]))  # cumulative
    assert series[-1] == session.total_messages()


def test_stream_tao_days_cap(tiny_tao):
    models = reset_models(tiny_tao)
    features = features_of(models)
    baseline = CentralizedUpdateBaseline(tiny_tao.topology.graph, features, 0, 0.05)
    out = stream_tao(tiny_tao, models, {"centralized": baseline}, days=2)
    assert len(out["centralized"]) == 2


def test_stream_tao_raw_observer_counts_all_measurements(tiny_tao):
    models = reset_models(tiny_tao)
    calls = []
    stream_tao(tiny_tao, models, {}, days=1, raw_observer=calls.append)
    # one call per (node, measurement) in one day
    assert len(calls) == tiny_tao.topology.num_nodes * tiny_tao.samples_per_day


def test_stream_tao_models_advance(tiny_tao):
    models = reset_models(tiny_tao)
    day_before = models[0].day
    stream_tao(tiny_tao, models, {}, days=2)
    assert models[0].day == day_before + 2

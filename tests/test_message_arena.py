"""Unit tests for the index-based message arena (DESIGN.md §8.2).

The arena stores fast-path broadcast traffic as int rows and must
materialize :class:`~repro.sim.messages.Message` objects field-identical
to eager construction — these tests pin that contract plus the interning
and lifecycle rules the array engine relies on.
"""

import pytest

from repro.sim.messages import (
    CATEGORY_CLUSTERING,
    CATEGORY_DATA,
    ArenaSpan,
    Message,
    MessageArena,
)


def test_kind_interning_is_stable_and_category_resolved_once():
    arena = MessageArena()
    kid = arena.kind_id("expand", CATEGORY_CLUSTERING)
    assert arena.kind_id("expand") == kid  # second call: cached id
    assert arena.kinds[kid] == "expand"
    assert arena.categories[kid] == CATEGORY_CLUSTERING
    other = arena.kind_id("custom-kind")
    assert other != kid
    assert arena.categories[other] == CATEGORY_DATA  # default category


def test_append_block_rows_and_span_length():
    arena = MessageArena()
    kid = arena.kind_id("feature")
    ref = arena.payload_ref({"temp": 21.5})
    start, stop = arena.append_block(kid, 0, [1, 2, 3], ref, 2)
    assert (start, stop) == (0, 3)
    assert len(arena) == 3
    span = ArenaSpan(arena, start, stop)
    assert len(span) == 3
    assert "0:3" in repr(span)


def test_materialize_matches_eager_construction():
    node_list = ["n0", "n1", "n2", "n3"]
    arena = MessageArena(node_list)
    kid = arena.kind_id("expand", CATEGORY_CLUSTERING)
    payload = ("root", 0.25)
    ref = arena.payload_ref(payload)
    start, stop = arena.append_block(kid, 0, [1, 3], ref, 1)
    eager = [
        Message("expand", "n0", dst, payload, 1, CATEGORY_CLUSTERING)
        for dst in ("n1", "n3")
    ]
    lazy = [arena.materialize(row) for row in range(start, stop)]
    for got, want in zip(lazy, eager):
        assert (got.kind, got.src, got.dst, got.values, got.category) == (
            want.kind,
            want.src,
            want.dst,
            want.values,
            want.category,
        )
        assert got.payload is payload  # shared by reference, never copied


def test_materialize_without_node_list_keeps_indices():
    arena = MessageArena()
    kid = arena.kind_id("feature")
    start, _stop = arena.append_block(kid, 7, [9], arena.payload_ref(None), 1)
    message = arena.materialize(start)
    assert (message.src, message.dst) == (7, 9)


def test_clear_drops_rows_but_keeps_interned_kinds():
    arena = MessageArena()
    kid = arena.kind_id("expand", CATEGORY_CLUSTERING)
    arena.append_block(kid, 0, [1, 2], arena.payload_ref("p"), 1)
    arena.clear()
    assert len(arena) == 0
    assert arena.payloads == []
    assert arena.kind_id("expand") == kid  # interning survives clear()
    # rows appended after a clear start from row 0 again
    start, stop = arena.append_block(kid, 1, [0], arena.payload_ref("q"), 1)
    assert (start, stop) == (0, 1)
    assert arena.materialize(0).payload == "q"


def test_blocks_share_one_payload_reference():
    arena = MessageArena()
    kid = arena.kind_id("feature")
    payload = [1, 2, 3]
    ref = arena.payload_ref(payload)
    arena.append_block(kid, 0, list(range(1, 6)), ref, 1)
    assert len(arena.payloads) == 1
    assert all(arena.materialize(row).payload is payload for row in range(5))

"""Tests for the centralized spectral baseline."""

import numpy as np
import pytest

from repro.baselines import centralized_collection_cost, spectral_clustering_search
from repro.core import validate_clustering
from repro.features import EuclideanMetric
from repro.geometry import grid_topology


def test_valid_clustering(random_topology, random_features):
    metric = EuclideanMetric()
    result = spectral_clustering_search(
        random_topology.graph, random_features, metric, 1.5
    )
    violations = validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )
    assert violations == []
    assert result.k_used >= 1


def test_uniform_features_single_cluster():
    topology = grid_topology(4, 4)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    result = spectral_clustering_search(topology.graph, features, EuclideanMetric(), 1.0)
    assert result.num_clusters == 1
    assert result.k_used == 1


def test_two_plateau_field_found_with_two_parts():
    topology = grid_topology(4, 4)
    features = {
        v: np.array([0.0 if topology.positions[v][0] < 2 else 10.0])
        for v in topology.graph.nodes
    }
    result = spectral_clustering_search(topology.graph, features, EuclideanMetric(), 1.0)
    assert result.num_clusters == 2


def test_doubling_search_matches_linear_feasibility(random_topology, random_features):
    metric = EuclideanMetric()
    linear = spectral_clustering_search(
        random_topology.graph, random_features, metric, 1.0, search="linear"
    )
    doubling = spectral_clustering_search(
        random_topology.graph, random_features, metric, 1.0, search="doubling"
    )
    # Both must return valid clusterings; doubling may use a slightly
    # different k (feasibility is not strictly monotone) but stays close.
    for result in (linear, doubling):
        assert validate_clustering(
            random_topology.graph, result.clustering, random_features, metric, 1.0
        ) == []


def test_distance_affinity_mode_runs(random_topology, random_features):
    metric = EuclideanMetric()
    result = spectral_clustering_search(
        random_topology.graph, random_features, metric, 1.5, affinity="distance"
    )
    assert validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    ) == []


def test_invalid_affinity_rejected(random_topology, random_features):
    with pytest.raises(ValueError):
        spectral_clustering_search(
            random_topology.graph, random_features, EuclideanMetric(), 1.0,
            affinity="cosine",
        )


def test_invalid_search_rejected(random_topology, random_features):
    with pytest.raises(ValueError):
        spectral_clustering_search(
            random_topology.graph, random_features, EuclideanMetric(), 1.0,
            search="random",
        )


def test_collection_cost_grid():
    topology = grid_topology(3, 3)
    # Manhattan hop distances from corner 0: sum over nodes of (row+col).
    expected = sum(
        (r + c) for r in range(3) for c in range(3) if (r, c) != (0, 0)
    )
    assert centralized_collection_cost(topology.graph, 0, 1) == expected
    assert centralized_collection_cost(topology.graph, 0, 4) == 4 * expected


def test_collection_cost_validation():
    topology = grid_topology(2, 2)
    with pytest.raises(ValueError):
        centralized_collection_cost(topology.graph, 0, 0)


def test_messages_reported(random_topology, random_features):
    result = spectral_clustering_search(
        random_topology.graph, random_features, EuclideanMetric(), 1.0
    )
    assert result.messages == centralized_collection_cost(
        random_topology.graph, list(random_topology.graph.nodes)[0], 2
    )


def test_singleton_fallback_when_nothing_feasible():
    """With max_k=1 and incompatible features, the search falls back to
    singletons (always a valid δ-clustering)."""
    topology = grid_topology(2, 2)
    features = {v: np.array([100.0 * v]) for v in topology.graph.nodes}
    result = spectral_clustering_search(
        topology.graph, features, EuclideanMetric(), 1.0, max_k=1
    )
    assert result.num_clusters == 4

"""Performance layer: trial decomposition parity and the artifact cache.

Two contracts from docs/ARCHITECTURE.md ("Performance layer"):

1. every experiment that declares the trial protocol produces the same
   table row-for-row whether run monolithically or as recombined trials
   (this is what makes ``--jobs N`` byte-identical to serial), and
2. the content-addressed cache is invisible — off unless ``REPRO_CACHE``
   is set, byte-identical outputs when it is, size-bounded on disk.
"""

from __future__ import annotations

import os
import pickle
import re

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import supports_trials
from repro.perf.cache import (
    CACHE_ENV,
    ArtifactCache,
    cache_key,
    cached_artifact,
    canonicalize,
    get_cache,
)

TRIAL_MODULES = sorted(
    name for name, module in ALL_EXPERIMENTS.items() if supports_trials(module)
)


# ----------------------------------------------------------------------
# trial decomposition
# ----------------------------------------------------------------------
def test_decomposed_experiment_roster():
    """The suite-wide decomposition covers at least the heavy experiments."""
    assert {
        "fig08",
        "fig09",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "complexity",
        "path_query",
        "ablation_failures",
    } <= set(TRIAL_MODULES)


@pytest.mark.parametrize("name", TRIAL_MODULES)
def test_trial_parity(name):
    """run() must equal combine_trials(map(run_trial, trial_specs())) exactly."""
    module = ALL_EXPERIMENTS[name]
    whole = module.run(profile="quick")
    specs = module.trial_specs("quick")
    assert len(specs) >= 2, "decomposition should yield multiple parallel units"
    results = [module.run_trial(spec, "quick") for spec in specs]
    combined = module.combine_trials(results, "quick")
    assert combined.to_json_dict() == whole.to_json_dict()


@pytest.mark.parametrize("name", TRIAL_MODULES)
def test_trial_specs_are_picklable(name):
    """Specs cross the process-pool boundary; they must pickle cheaply."""
    specs = ALL_EXPERIMENTS[name].trial_specs("quick")
    blob = pickle.dumps(specs)
    # Lightweight by construction: specs carry parameters, never datasets.
    assert len(blob) < 100_000


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def test_cache_key_sensitivity():
    base = cache_key("gen", {"n": 100, "seed": 7}, salt="1")
    assert cache_key("gen", {"n": 100, "seed": 7}, salt="1") == base
    assert cache_key("gen", {"n": 101, "seed": 7}, salt="1") != base
    assert cache_key("gen", {"n": 100, "seed": 8}, salt="1") != base
    assert cache_key("gen", {"n": 100, "seed": 7}, salt="2") != base
    assert cache_key("other", {"n": 100, "seed": 7}, salt="1") != base


def test_canonicalize_ndarray_is_content_addressed():
    a = np.arange(6, dtype=float).reshape(2, 3)
    assert canonicalize(a) == canonicalize(a.copy())
    assert canonicalize(a) != canonicalize(a + 1)
    assert canonicalize(a) != canonicalize(a.astype(np.float32))
    assert canonicalize(a) != canonicalize(a.reshape(3, 2))


def test_canonicalize_floats_and_maps():
    assert canonicalize(0.1) == ("f", "0.1")
    assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})
    with pytest.raises(TypeError):
        canonicalize(object())


# ----------------------------------------------------------------------
# cache store
# ----------------------------------------------------------------------
def test_cache_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    value = {"arr": np.arange(10.0), "n": 3}
    calls = []

    def compute():
        calls.append(1)
        return value

    cold = cache.get_or_compute("thing", {"n": 3}, compute)
    warm = cache.get_or_compute("thing", {"n": 3}, compute)
    assert len(calls) == 1
    assert np.array_equal(cold["arr"], warm["arr"]) and warm["n"] == 3
    assert cache.hits == 1 and cache.misses == 1


def test_cache_eviction_respects_bound(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=5_000)
    for i in range(10):
        cache.put(cache_key("blob", {"i": i}, "1"), np.zeros(128))  # ~1.2 KiB each
    stats = cache.stats()
    assert stats["bytes"] <= 5_000
    assert 0 < stats["entries"] < 10


def test_cache_corrupt_entry_is_quarantined_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key("thing", {"n": 1}, "1")
    cache.put(key, {"ok": True})
    path = tmp_path / f"{key}.pkl"
    path.write_bytes(b"\x80\x05not a pickle at all")
    hit, value = cache.get(key)
    assert not hit and value is None
    assert cache.quarantined == 1
    assert not path.exists()
    assert path.with_suffix(".corrupt").exists()
    # quarantined file is out of the key space: next lookup is a plain miss
    hit, _ = cache.get(key)
    assert not hit and cache.quarantined == 1


def test_cache_put_retries_transient_rename_failure(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    sleeps = []
    cache._retry_sleep = sleeps.append
    real_replace = os.replace
    failures = {"left": 2}

    def flaky_replace(src, dst):
        if str(dst).endswith(".pkl") and failures["left"] > 0:
            failures["left"] -= 1
            raise OSError("transient")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", flaky_replace)
    key = cache_key("thing", {"n": 2}, "1")
    cache.put(key, 42)
    assert sleeps == [0.02, 0.04]  # exponential backoff between attempts
    assert cache.write_failures == 0
    assert cache.get(key) == (True, 42)


def test_cache_put_swallows_persistent_failure(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    cache._retry_sleep = lambda _: None

    def always_fail(src, dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "replace", always_fail)
    cache.put(cache_key("thing", {"n": 3}, "1"), 42)  # must not raise
    assert cache.write_failures == 1
    assert cache.stats()["write_failures"] == 1


def test_cached_artifact_off_without_env(tmp_path, monkeypatch):
    """With REPRO_CACHE unset the decorator must be a transparent no-op."""
    monkeypatch.delenv(CACHE_ENV, raising=False)
    calls = []

    @cached_artifact("1", name="probe")
    def probe(n, *, seed=0):
        calls.append((n, seed))
        return n + seed

    assert probe(1) == 1 and probe(1) == 1
    assert len(calls) == 2  # no caching
    assert get_cache() is None
    assert not any(tmp_path.iterdir())


def test_cached_artifact_binds_arguments(tmp_path, monkeypatch):
    """f(100) and f(n=100) must share one entry (defaults applied)."""
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    calls = []

    @cached_artifact("1", name="probe2")
    def probe(n, *, seed=0):
        calls.append((n, seed))
        return np.full(4, n + seed)

    first = probe(100)
    second = probe(n=100, seed=0)
    assert np.array_equal(first, second)
    assert len(calls) == 1
    assert probe(100, seed=1)[0] == 101 and len(calls) == 2


def test_dataset_generation_warm_hit_is_equal(tmp_path, monkeypatch):
    """Cold compute, warm unpickle, and uncached runs all agree exactly."""
    from repro.datasets import generate_synthetic_dataset

    monkeypatch.delenv(CACHE_ENV, raising=False)
    plain = generate_synthetic_dataset(40, seed=5)
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    cold = generate_synthetic_dataset(40, seed=5)
    warm = generate_synthetic_dataset(40, seed=5)
    for node in plain.nodes:
        assert np.array_equal(plain.features[node], cold.features[node])
        assert np.array_equal(cold.features[node], warm.features[node])
    cache = get_cache()
    assert cache is not None and cache.hits >= 1


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
def _normalized(capsys):
    out = capsys.readouterr().out
    out = re.sub(r"finished in [0-9.]+s", "finished in Xs", out)
    return re.sub(r"\[suite: [^\]]*\]\n", "", out)


def test_runner_cache_byte_identical_and_inherited(tmp_path, capsys, monkeypatch):
    """Two cached quick runs print identical tables, and --jobs workers
    inherit REPRO_CACHE (the parent never generates datasets in pool mode,
    so on-disk entries prove the workers wrote them)."""
    from repro.experiments import runner

    cache_dir = tmp_path / "cache"
    monkeypatch.setenv(CACHE_ENV, str(cache_dir))  # restored at teardown
    argv = ["--quick", "--only", "fig13", "--jobs", "2", "--no-bench"]
    assert runner.main(argv) == 0
    first = _normalized(capsys)
    assert runner.main(argv) == 0
    second = _normalized(capsys)
    assert first == second
    assert any(cache_dir.glob("*.pkl"))

    # And cache-off output matches cache-on output (minus the banner).
    monkeypatch.delenv(CACHE_ENV)
    assert runner.main(argv) == 0
    uncached = _normalized(capsys)
    assert uncached == first.replace(f"[artifact cache: {cache_dir}]\n", "")


def test_cache_cli(tmp_path, capsys):
    from repro.perf.cli import main as cache_main

    cache = ArtifactCache(tmp_path)
    cache.put(cache_key("x", {"i": 1}, "1"), list(range(100)))
    assert cache_main(["stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert re.search(r"entries:\s+1\b", out)
    assert cache_main(["clear", "--dir", str(tmp_path)]) == 0
    assert not list(tmp_path.glob("*.pkl"))

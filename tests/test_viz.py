"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.viz import cluster_summary, render_clustering, render_field


@pytest.fixture
def clustered(small_grid, small_grid_features):
    clustering = run_elink(
        small_grid, small_grid_features, EuclideanMetric(), ELinkConfig(delta=0.6)
    ).clustering
    return small_grid, small_grid_features, clustering


def test_render_clustering_shape_and_glyphs(clustered):
    topology, features, clustering = clustered
    art = render_clustering(topology, clustering, width=20)
    lines = art.split("\n")
    assert all(len(line) == 20 for line in lines)
    glyphs = {ch for line in lines for ch in line if ch != " "}
    # The number of distinct glyphs drawn is bounded by the cluster count.
    assert 1 <= len(glyphs) <= clustering.num_clusters


def test_render_clustering_same_cluster_same_glyph(clustered):
    topology, features, clustering = clustered
    # With one character per grid node, each node maps to a unique cell.
    art = render_clustering(topology, clustering, width=5, height=5)
    rows = art.split("\n")
    glyph_at = {}
    for node, (x, y) in topology.positions.items():
        r = 4 - int(y)
        c = int(x)
        glyph_at[node] = rows[r][c]
    for a in topology.graph.nodes:
        for b in topology.graph.nodes:
            if clustering.root_of(a) == clustering.root_of(b):
                assert glyph_at[a] == glyph_at[b]


def test_render_field_uses_ramp(small_grid, small_grid_features):
    values = {v: small_grid_features[v][0] for v in small_grid.graph.nodes}
    art = render_field(small_grid, values, width=10)
    assert art.strip()  # non-empty
    # Low and high field values render as different glyphs.
    chars = {ch for line in art.split("\n") for ch in line}
    assert len(chars) > 1


def test_cluster_summary_lists_clusters(clustered):
    topology, features, clustering = clustered
    text = cluster_summary(clustering, features)
    assert f"{clustering.num_clusters} clusters" in text
    assert "size=" in text


def test_render_width_validation(clustered):
    topology, features, clustering = clustered
    with pytest.raises(ValueError):
        render_clustering(topology, clustering, width=1)


def test_single_node_render():
    from repro.geometry import grid_topology

    topology = grid_topology(1, 1)
    features = {0: np.zeros(1)}
    clustering = run_elink(
        topology, features, EuclideanMetric(), ELinkConfig(delta=1.0)
    ).clustering
    art = render_clustering(topology, clustering, width=4)
    assert "A" in art

"""Tests for the command-line interface (in-process, no subprocesses)."""

import io
import sys

import pytest

from repro.cli import main


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ELink" in out and "EDBT 2006" in out


def test_cluster_synthetic(capsys):
    code = main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "80",
            "--algorithm", "elink",
            "--delta", "0.05",
            "--seed", "3",
            "--validate",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "clusters over 80 nodes" in out
    assert "validation: OK" in out


def test_cluster_every_algorithm(capsys):
    for algorithm in (
        "elink",
        "elink-explicit",
        "elink-unordered",
        "spanning-forest",
        "hierarchical",
        "spectral",
    ):
        code = main(
            [
                "cluster",
                "--dataset", "synthetic",
                "--n", "40",
                "--algorithm", algorithm,
                "--delta", "0.08",
            ]
        )
        assert code == 0, algorithm
        assert "clusters over 40 nodes" in capsys.readouterr().out


def test_cluster_with_map(capsys):
    code = main(
        [
            "cluster",
            "--dataset", "death-valley",
            "--n", "60",
            "--algorithm", "elink",
            "--delta", "300",
            "--map",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "A" in out  # the map draws cluster glyphs


def test_save_and_query_round_trip(tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "60",
            "--algorithm", "elink",
            "--delta", "0.06",
            "--save", str(state),
        ]
    ) == 0
    capsys.readouterr()
    assert state.exists()
    assert main(["query", "--state", str(state), "--node", "5", "--radius", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "matches (" in out and "cost:" in out


def test_query_with_explicit_feature(tmp_path, capsys):
    state = tmp_path / "state.json"
    main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "50",
            "--algorithm", "elink",
            "--delta", "0.06",
            "--save", str(state),
        ]
    )
    capsys.readouterr()
    assert main(["query", "--state", str(state), "--feature", "0.6", "--radius", "0.05"]) == 0
    assert "matches (" in capsys.readouterr().out


def test_query_unknown_node(tmp_path, capsys):
    state = tmp_path / "state.json"
    main(
        [
            "cluster", "--dataset", "synthetic", "--n", "30",
            "--algorithm", "elink", "--delta", "0.06", "--save", str(state),
        ]
    )
    with pytest.raises(SystemExit):
        main(["query", "--state", str(state), "--node", "nope", "--radius", "0.1"])


def test_query_state_without_clustering(tmp_path, capsys):
    import numpy as np

    from repro.geometry import grid_topology
    from repro.io import save_state

    topology = grid_topology(2, 2)
    state = tmp_path / "bare.json"
    save_state(
        state,
        topology=topology,
        features={v: np.zeros(1) for v in topology.graph.nodes},
    )
    assert main(["query", "--state", str(state), "--node", "0", "--radius", "1"]) == 1


def test_experiment_quick(capsys):
    assert main(["experiment", "complexity", "--quick"]) == 0
    assert "Theorems 2-3" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# pipe safety: `repro <cmd> ... | head` must exit cleanly for EVERY
# subcommand when the pipe's reader goes away mid-output.
# ----------------------------------------------------------------------
class _ClosedPipe(io.TextIOBase):
    """A stdout whose consumer (e.g. ``head``) has already exited."""

    def writable(self):
        return True

    def write(self, _s):
        raise BrokenPipeError


@pytest.fixture(scope="module")
def pipe_artifacts(tmp_path_factory):
    """Saved state + recorded trace the piped subcommands read back."""
    root = tmp_path_factory.mktemp("pipe-cli")
    state = root / "state.json"
    trace = root / "trace.jsonl"
    assert main(
        [
            "cluster", "--dataset", "synthetic", "--n", "40",
            "--algorithm", "elink", "--delta", "0.06",
            "--save", str(state), "--trace", str(trace),
        ]
    ) == 0
    return {"state": str(state), "trace": str(trace), "cachedir": str(root / "cache")}


_PIPE_CASES = {
    "info": lambda art: ["info"],
    "cluster": lambda art: [
        "cluster", "--dataset", "synthetic", "--n", "24",
        "--algorithm", "spanning-forest", "--delta", "0.3",
    ],
    "query": lambda art: [
        "query", "--state", art["state"], "--node", "5", "--radius", "0.05",
    ],
    "query-explain": lambda art: [
        "query", "--state", art["state"], "--node", "5", "--radius", "0.05", "--explain",
    ],
    "query-bench": lambda art: [
        "query-bench", "--quick", "--n", "24", "--queries", "4", "--no-bench",
    ],
    "experiment": lambda art: ["experiment", "complexity", "--quick"],
    "trace": lambda art: ["trace", art["trace"]],
    "verify": lambda art: ["verify", "--n", "9", "--crash", "0.0"],
    "cache": lambda art: ["cache", "stats", "--dir", art["cachedir"]],
    "serve": lambda art: ["serve", "--n", "16", "--rounds", "2", "--bootstrap-rounds", "2"],
}


@pytest.mark.parametrize("subcommand", sorted(_PIPE_CASES))
def test_subcommand_survives_closed_stdout(subcommand, pipe_artifacts, monkeypatch):
    # The guards close stderr on their way out (the standard quiet-exit
    # idiom), so hand them a throwaway stream rather than pytest's.
    monkeypatch.setattr(sys, "stdout", _ClosedPipe())
    monkeypatch.setattr(sys, "stderr", io.StringIO())
    assert main(_PIPE_CASES[subcommand](pipe_artifacts)) == 0

"""Tests for the command-line interface (in-process, no subprocesses)."""

import pytest

from repro.cli import main


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ELink" in out and "EDBT 2006" in out


def test_cluster_synthetic(capsys):
    code = main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "80",
            "--algorithm", "elink",
            "--delta", "0.05",
            "--seed", "3",
            "--validate",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "clusters over 80 nodes" in out
    assert "validation: OK" in out


def test_cluster_every_algorithm(capsys):
    for algorithm in (
        "elink",
        "elink-explicit",
        "elink-unordered",
        "spanning-forest",
        "hierarchical",
        "spectral",
    ):
        code = main(
            [
                "cluster",
                "--dataset", "synthetic",
                "--n", "40",
                "--algorithm", algorithm,
                "--delta", "0.08",
            ]
        )
        assert code == 0, algorithm
        assert "clusters over 40 nodes" in capsys.readouterr().out


def test_cluster_with_map(capsys):
    code = main(
        [
            "cluster",
            "--dataset", "death-valley",
            "--n", "60",
            "--algorithm", "elink",
            "--delta", "300",
            "--map",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "A" in out  # the map draws cluster glyphs


def test_save_and_query_round_trip(tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "60",
            "--algorithm", "elink",
            "--delta", "0.06",
            "--save", str(state),
        ]
    ) == 0
    capsys.readouterr()
    assert state.exists()
    assert main(["query", "--state", str(state), "--node", "5", "--radius", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "matches (" in out and "cost:" in out


def test_query_with_explicit_feature(tmp_path, capsys):
    state = tmp_path / "state.json"
    main(
        [
            "cluster",
            "--dataset", "synthetic",
            "--n", "50",
            "--algorithm", "elink",
            "--delta", "0.06",
            "--save", str(state),
        ]
    )
    capsys.readouterr()
    assert main(["query", "--state", str(state), "--feature", "0.6", "--radius", "0.05"]) == 0
    assert "matches (" in capsys.readouterr().out


def test_query_unknown_node(tmp_path, capsys):
    state = tmp_path / "state.json"
    main(
        [
            "cluster", "--dataset", "synthetic", "--n", "30",
            "--algorithm", "elink", "--delta", "0.06", "--save", str(state),
        ]
    )
    with pytest.raises(SystemExit):
        main(["query", "--state", str(state), "--node", "nope", "--radius", "0.1"])


def test_query_state_without_clustering(tmp_path, capsys):
    import numpy as np

    from repro.geometry import grid_topology
    from repro.io import save_state

    topology = grid_topology(2, 2)
    state = tmp_path / "bare.json"
    save_state(
        state,
        topology=topology,
        features={v: np.zeros(1) for v in topology.graph.nodes},
    )
    assert main(["query", "--state", str(state), "--node", "0", "--radius", "1"]) == 1


def test_experiment_quick(capsys):
    assert main(["experiment", "complexity", "--quick"]) == 0
    assert "Theorems 2-3" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])

"""Tests for JSON serialization of topologies, features and clusterings."""

import json

import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import grid_topology
from repro.io import (
    clustering_from_dict,
    clustering_to_dict,
    load_state,
    save_state,
    topology_from_dict,
    topology_to_dict,
)


@pytest.fixture
def state(small_grid, small_grid_features):
    clustering = run_elink(
        small_grid, small_grid_features, EuclideanMetric(), ELinkConfig(delta=0.6)
    ).clustering
    return small_grid, small_grid_features, clustering


def test_round_trip_through_file(tmp_path, state):
    topology, features, clustering = state
    path = tmp_path / "state.json"
    save_state(
        path,
        topology=topology,
        features=features,
        clustering=clustering,
        metadata={"delta": 0.6},
    )
    loaded_topology, loaded_features, loaded_clustering, metadata = load_state(path)
    assert set(loaded_topology.graph.nodes) == set(topology.graph.nodes)
    assert _edge_set(loaded_topology.graph) == _edge_set(topology.graph)
    assert loaded_topology.positions == topology.positions
    for node in features:
        assert np.allclose(loaded_features[node], features[node])
    assert loaded_clustering.assignment == clustering.assignment
    assert loaded_clustering.parent == clustering.parent
    assert metadata == {"delta": 0.6}


def test_round_trip_without_clustering(tmp_path, state):
    topology, features, _ = state
    path = tmp_path / "bare.json"
    save_state(path, topology=topology, features=features)
    _, _, clustering, _ = load_state(path)
    assert clustering is None


def test_clustering_dict_round_trip(state):
    _, _, clustering = state
    rebuilt = clustering_from_dict(clustering_to_dict(clustering))
    assert rebuilt.assignment == clustering.assignment
    for root in clustering.root_features:
        assert np.allclose(rebuilt.root_features[root], clustering.root_features[root])


def _edge_set(graph):
    return {frozenset(edge) for edge in graph.edges}


def test_topology_dict_round_trip():
    topology = grid_topology(3, 4)
    rebuilt = topology_from_dict(topology_to_dict(topology))
    assert _edge_set(rebuilt.graph) == _edge_set(topology.graph)


def test_string_and_tuple_node_ids(tmp_path):
    import networkx as nx

    from repro.geometry.topology import Topology

    graph = nx.Graph([("a", ("b", 1))])
    topology = Topology(graph, {"a": (0.0, 0.0), ("b", 1): (1.0, 0.0)})
    features = {"a": np.zeros(1), ("b", 1): np.ones(1)}
    path = tmp_path / "ids.json"
    save_state(path, topology=topology, features=features)
    loaded_topology, loaded_features, _, _ = load_state(path)
    assert set(loaded_topology.graph.nodes) == {"a", ("b", 1)}
    assert loaded_features[("b", 1)].tolist() == [1.0]


def test_unsupported_node_id_rejected(tmp_path):
    import networkx as nx

    from repro.geometry.topology import Topology

    graph = nx.Graph()
    graph.add_node(frozenset({1}))
    topology = Topology(graph, {frozenset({1}): (0.0, 0.0)})
    with pytest.raises(TypeError, match="unsupported node id"):
        save_state(tmp_path / "bad.json", topology=topology, features={frozenset({1}): np.zeros(1)})


def test_bad_json_rejected(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_state(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"format_version": 999}))
    with pytest.raises(ValueError, match="unsupported format version"):
        load_state(path)


def test_malformed_clustering_payload_rejected():
    with pytest.raises(ValueError, match="malformed clustering"):
        clustering_from_dict({"assignment": "nope"})


def test_malformed_topology_payload_rejected():
    with pytest.raises(ValueError, match="malformed topology"):
        topology_from_dict({"nodes": [0], "edges": [[0]], "positions": []})

"""Tests for the distributed hierarchical clustering baseline."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import run_hierarchical
from repro.core import validate_clustering
from repro.features import EuclideanMetric
from repro.geometry import grid_topology


def test_valid_delta_clustering_exact_rule(random_topology, random_features):
    metric = EuclideanMetric()
    result = run_hierarchical(random_topology.graph, random_features, metric, 1.5)
    violations = validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )
    assert violations == []


def test_valid_delta_clustering_safe_rule(random_topology, random_features):
    metric = EuclideanMetric()
    result = run_hierarchical(
        random_topology.graph, random_features, metric, 1.5, diameter_rule="safe"
    )
    violations = validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )
    assert violations == []


def test_paper_rule_runs_and_may_overmerge(random_topology, random_features):
    """The literal diameter formula can understate, so we only require it
    to terminate and produce at most as many clusters as the safe rule."""
    metric = EuclideanMetric()
    paper = run_hierarchical(
        random_topology.graph, random_features, metric, 1.5, diameter_rule="paper"
    )
    safe = run_hierarchical(
        random_topology.graph, random_features, metric, 1.5, diameter_rule="safe"
    )
    assert paper.num_clusters <= safe.num_clusters


def test_exact_merges_at_least_as_much_as_safe(random_topology, random_features):
    metric = EuclideanMetric()
    exact = run_hierarchical(random_topology.graph, random_features, metric, 1.5)
    safe = run_hierarchical(
        random_topology.graph, random_features, metric, 1.5, diameter_rule="safe"
    )
    assert exact.num_clusters <= safe.num_clusters


def test_uniform_features_merge_to_one_cluster():
    topology = grid_topology(4, 4)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    result = run_hierarchical(topology.graph, features, EuclideanMetric(), 1.0)
    assert result.num_clusters == 1


def test_line_graph_merging_respects_delta():
    graph = nx.path_graph(6)
    features = {i: np.array([float(i)]) for i in range(6)}
    result = run_hierarchical(graph, features, EuclideanMetric(), 2.0)
    # Each cluster spans a feature range of at most 2.0.
    for members in result.clustering.clusters().values():
        values = [features[v][0] for v in members]
        assert max(values) - min(values) <= 2.0 + 1e-9


def test_far_features_stay_singletons():
    graph = nx.path_graph(4)
    features = {i: np.array([100.0 * i]) for i in range(4)}
    result = run_hierarchical(graph, features, EuclideanMetric(), 1.0)
    assert result.num_clusters == 4


def test_messages_grow_superlinearly_vs_forest():
    """Hierarchical negotiation costs dwarf the spanning forest's (§8.5)."""
    from repro.baselines import run_spanning_forest
    from repro.geometry import grid_topology as grid

    rng = np.random.default_rng(0)
    topology = grid(8, 8)
    features = {
        v: np.array([0.05 * topology.positions[v][0] + rng.normal(0, 0.01)])
        for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    hier = run_hierarchical(topology.graph, features, metric, 0.5)
    forest = run_spanning_forest(topology, features, metric, 0.5)
    assert hier.total_messages > 2 * forest.total_messages


def test_rounds_reported(random_topology, random_features):
    result = run_hierarchical(random_topology.graph, random_features, EuclideanMetric(), 1.0)
    assert result.rounds >= 1


def test_invalid_diameter_rule_rejected(random_topology, random_features):
    with pytest.raises(ValueError):
        run_hierarchical(
            random_topology.graph, random_features, EuclideanMetric(), 1.0,
            diameter_rule="optimistic",
        )


def test_delta_validation(random_topology, random_features):
    with pytest.raises(ValueError):
        run_hierarchical(random_topology.graph, random_features, EuclideanMetric(), -1.0)

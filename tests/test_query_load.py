"""Tests for the load-replay driver and the ``repro query-bench`` CLI."""

import json

import pytest

from repro.queries.load import (
    BENCH_SCHEMA,
    MIXES,
    Query,
    ScenarioSpec,
    WorkloadSpec,
    build_scenario,
    generate_workload,
    main,
    replay,
    validate_queries_block,
    warm_cache_pass,
)


@pytest.fixture(scope="module")
def ctx():
    return build_scenario(ScenarioSpec(n=40, seed=42, delta=0.4))


def _nodes(ctx):
    return sorted(ctx["graph"].nodes, key=repr)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------


def test_workload_is_seed_deterministic(ctx):
    spec = WorkloadSpec(mix="balanced", queries=30, seed=9)
    first = generate_workload(_nodes(ctx), ctx["features"], spec)
    second = generate_workload(_nodes(ctx), ctx["features"], spec)
    assert first == second


def test_workload_varies_with_seed(ctx):
    a = generate_workload(
        _nodes(ctx), ctx["features"], WorkloadSpec(mix="balanced", queries=30, seed=1)
    )
    b = generate_workload(
        _nodes(ctx), ctx["features"], WorkloadSpec(mix="balanced", queries=30, seed=2)
    )
    assert a != b


def test_workload_respects_mix_support(ctx):
    for mix, weights in MIXES.items():
        spec = WorkloadSpec(mix=mix, queries=60, seed=0)
        ops = {q.op for q in generate_workload(_nodes(ctx), ctx["features"], spec)}
        assert ops <= set(weights)
        # 60 draws from a >=10% weight essentially always hit every op.
        assert ops == set(weights)


def test_workload_rejects_unknown_mix(ctx):
    with pytest.raises(KeyError):
        generate_workload(_nodes(ctx), ctx["features"], WorkloadSpec(mix="nope"))


def test_query_kwargs_rehydrates_arrays(ctx):
    spec = WorkloadSpec(mix="balanced", queries=20, seed=4)
    for query in generate_workload(_nodes(ctx), ctx["features"], spec):
        kwargs = query.kwargs()
        if query.op in ("range", "knn"):
            assert kwargs["q"].dtype.kind == "f"
        else:
            assert kwargs["danger"].dtype.kind == "f"


def test_queries_are_hashable_for_caching(ctx):
    spec = WorkloadSpec(mix="balanced", queries=10, seed=4)
    workload = generate_workload(_nodes(ctx), ctx["features"], spec)
    assert len({hash(q) for q in workload}) >= 1
    assert all(isinstance(q, Query) for q in workload)


# ----------------------------------------------------------------------
# replay and the warm-cache pass
# ----------------------------------------------------------------------


def test_replay_report_shape(ctx):
    spec = WorkloadSpec(mix="balanced", queries=20, seed=6)
    workload = generate_workload(_nodes(ctx), ctx["features"], spec)
    report = replay(ctx["planner"], workload)
    assert report["count"] == 20
    for field in ("p50_ms", "p99_ms", "qps", "messages_per_query"):
        assert report[field] >= 0
    assert sum(report["plans"].values()) == 20
    assert report["p50_ms"] <= report["p99_ms"]


def test_warm_pass_hits_cache_and_serves_nothing_stale():
    ctx = build_scenario(ScenarioSpec(n=40, seed=42, delta=0.4))
    spec = WorkloadSpec(mix="range-heavy", queries=25, seed=6)
    workload = generate_workload(sorted(ctx["graph"].nodes, key=repr), ctx["features"], spec)
    replay(ctx["planner"], workload)  # cold pass populates the cache
    warm = warm_cache_pass(ctx, workload)
    assert warm["hits"] > 0
    assert warm["invalidations"] > 0
    assert warm["audited"] == 25
    assert warm["stale_answers"] == 0


# ----------------------------------------------------------------------
# the BENCH queries block
# ----------------------------------------------------------------------


def _valid_block():
    report = {"p50_ms": 0.1, "p99_ms": 0.2, "qps": 100.0, "messages_per_query": 5.0}
    return {
        "scenario": {"n": 40},
        "mixes": {name: {"serial": dict(report)} for name in MIXES},
        "warm": {"stale_answers": 0},
    }


def test_validate_queries_block_accepts_well_formed():
    validate_queries_block(_valid_block())


def test_validate_queries_block_rejects_missing_mixes():
    block = _valid_block()
    del block["mixes"]["balanced"]
    with pytest.raises(ValueError, match="3 mixes"):
        validate_queries_block(block)


def test_validate_queries_block_rejects_missing_percentiles():
    block = _valid_block()
    del block["mixes"]["balanced"]["serial"]["p99_ms"]
    with pytest.raises(ValueError, match="p99_ms"):
        validate_queries_block(block)


def test_validate_queries_block_rejects_stale_answers():
    block = _valid_block()
    block["warm"]["stale_answers"] = 2
    with pytest.raises(ValueError, match="stale"):
        validate_queries_block(block)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_query_bench_cli_writes_schema_5_block(tmp_path):
    out = tmp_path / "BENCH_results.json"
    rc = main(
        [
            "--quick",
            "--n",
            "30",
            "--queries",
            "15",
            "--bench-out",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == BENCH_SCHEMA == 5
    validate_queries_block(payload["queries"])
    assert len(payload["queries"]["mixes"]) >= 3
    assert payload["queries"]["warm"]["stale_answers"] == 0


def test_query_bench_cli_merges_existing_bench(tmp_path):
    out = tmp_path / "BENCH_results.json"
    out.write_text(json.dumps({"schema": 3, "suite": {"keep": True}}))
    rc = main(["--quick", "--n", "30", "--queries", "12", "--bench-out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == 5
    assert payload["suite"] == {"keep": True}  # pre-existing blocks survive
    validate_queries_block(payload["queries"])


def test_query_bench_cli_no_bench_writes_nothing(tmp_path, capsys):
    out = tmp_path / "BENCH_results.json"
    rc = main(
        ["--quick", "--n", "30", "--queries", "10", "--no-bench", "--bench-out", str(out)]
    )
    assert rc == 0
    assert not out.exists()
    assert "warm" in capsys.readouterr().out

"""Tests for the quadtree decomposition and sentinel sets (paper §3.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    QuadTreeDecomposition,
    grid_topology,
    random_geometric_topology,
)


def test_every_node_in_exactly_one_sentinel_set(small_grid):
    decomposition = QuadTreeDecomposition(small_grid)
    seen = [s for level in decomposition.sentinel_sets for s in level]
    assert sorted(seen) == sorted(small_grid.graph.nodes)
    assert len(seen) == len(set(seen))


def test_level_zero_has_single_sentinel(small_grid):
    decomposition = QuadTreeDecomposition(small_grid)
    assert len(decomposition.sentinel_sets[0]) == 1
    assert decomposition.root == decomposition.sentinel_sets[0][0]


def test_sentinel_set_growth_bounded_by_powers_of_four(small_grid):
    decomposition = QuadTreeDecomposition(small_grid)
    for level, sentinels in enumerate(decomposition.sentinel_sets):
        assert len(sentinels) <= 4**level


def test_root_sentinel_is_closest_to_center(small_grid):
    decomposition = QuadTreeDecomposition(small_grid)
    root = decomposition.root
    cx, cy = small_grid.bounds.center
    root_pos = small_grid.positions[root]
    best = min(
        (small_grid.positions[v][0] - cx) ** 2 + (small_grid.positions[v][1] - cy) ** 2
        for v in small_grid.graph.nodes
    )
    assert (root_pos[0] - cx) ** 2 + (root_pos[1] - cy) ** 2 == pytest.approx(best)


def test_quad_parent_is_exactly_one_level_up(random_topology):
    decomposition = QuadTreeDecomposition(random_topology)
    for level, sentinel in decomposition.iter_sentinels():
        parent = decomposition.quad_parent[sentinel]
        if level == 0:
            assert parent == sentinel
        else:
            assert decomposition.level_of[parent] == level - 1


def test_quad_children_consistent_with_parents(random_topology):
    decomposition = QuadTreeDecomposition(random_topology)
    for parent, children in decomposition.quad_children.items():
        for child in children:
            assert decomposition.quad_parent[child] == parent


def test_depth_close_to_grid_bound():
    topology = grid_topology(16, 16)  # 256 nodes, perfect power of 4
    decomposition = QuadTreeDecomposition(topology)
    bound = decomposition.expected_depth_bound()
    # Footnote 2: depth <= bound + small constant for non-ideal layouts.
    assert decomposition.depth <= math.ceil(bound) + 3


def test_level_of_matches_sentinel_sets(random_topology):
    decomposition = QuadTreeDecomposition(random_topology)
    for level, sentinels in enumerate(decomposition.sentinel_sets):
        for sentinel in sentinels:
            assert decomposition.level_of[sentinel] == level


def test_deterministic_construction(random_topology):
    a = QuadTreeDecomposition(random_topology)
    b = QuadTreeDecomposition(random_topology)
    assert a.sentinel_sets == b.sentinel_sets
    assert a.quad_parent == b.quad_parent


def test_single_node_topology():
    topology = grid_topology(1, 1)
    decomposition = QuadTreeDecomposition(topology)
    assert decomposition.depth == 0
    assert decomposition.sentinel_sets == [[0]]
    assert decomposition.quad_parent[0] == 0


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10))
@settings(max_examples=25, deadline=None)
def test_partition_property_random_topologies(n, seed):
    topology = random_geometric_topology(n, seed=seed)
    decomposition = QuadTreeDecomposition(topology)
    seen = [s for level in decomposition.sentinel_sets for s in level]
    assert sorted(seen) == sorted(topology.graph.nodes)
    for level, sentinel in decomposition.iter_sentinels():
        parent = decomposition.quad_parent[sentinel]
        if level > 0:
            assert decomposition.level_of[parent] == level - 1


def test_coincident_points_hit_depth_cap_gracefully():
    import networkx as nx

    from repro.geometry.topology import Topology

    graph = nx.complete_graph(5)
    positions = {i: (1.0, 1.0) for i in range(5)}  # all nodes co-located
    decomposition = QuadTreeDecomposition(Topology(graph, positions))
    seen = [s for level in decomposition.sentinel_sets for s in level]
    assert sorted(seen) == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# columnar fast build vs reference build (byte-identical outputs)
# ----------------------------------------------------------------------
def _fingerprint(decomposition):
    """Everything a consumer can observe, including dict insertion order."""
    cells = []
    for level, level_cells in enumerate(decomposition._cells_by_level):
        for cell in level_cells:
            bounds = cell.bounds
            cells.append(
                (
                    level,
                    (bounds.xmin, bounds.ymin, bounds.xmax, bounds.ymax),
                    tuple(cell.members),
                    cell.leader,
                    len(cell.children),
                )
            )
    return (
        decomposition.sentinel_sets,
        list(decomposition.level_of.items()),
        list(decomposition.quad_parent.items()),
        [(k, list(v)) for k, v in decomposition.quad_children.items()],
        decomposition.root,
        decomposition.depth,
        cells,
    )


@pytest.mark.parametrize(
    "topology",
    [
        grid_topology(6, 6),
        grid_topology(17, 9),
        random_geometric_topology(80, seed=11),
        random_geometric_topology(300, seed=4),
    ],
    ids=["grid6", "grid17x9", "geom80", "geom300"],
)
def test_fast_build_identical_to_reference(topology):
    reference = QuadTreeDecomposition(topology, fast=False)
    fast = QuadTreeDecomposition(topology, fast=True)
    assert _fingerprint(fast) == _fingerprint(reference)


def test_fast_build_identical_at_depth_cap():
    import networkx as nx

    from repro.geometry.topology import Topology

    # 40 co-located nodes drive subdivision to MAX_DEPTH and through the
    # scalar flush branch of the fast build.
    graph = nx.complete_graph(40)
    positions = {i: (1.0, 1.0) for i in range(40)}
    topology = Topology(graph, positions)
    reference = QuadTreeDecomposition(topology, fast=False)
    fast = QuadTreeDecomposition(topology, fast=True)
    assert fast.depth == QuadTreeDecomposition.MAX_DEPTH
    assert _fingerprint(fast) == _fingerprint(reference)


def test_fast_build_declines_non_contiguous_ids():
    import networkx as nx

    from repro.geometry.topology import Topology

    graph = nx.path_graph(4)
    graph = nx.relabel_nodes(graph, {0: "a", 1: "b", 2: "c", 3: "d"})
    positions = {v: (float(i), 0.0) for i, v in enumerate("abcd")}
    topology = Topology(graph, positions)
    decomposition = QuadTreeDecomposition(topology, fast=True)
    assert not decomposition._fast_eligible()
    assert decomposition._fast_levels == []  # reference build ran
    seen = [s for level in decomposition.sentinel_sets for s in level]
    assert sorted(seen) == ["a", "b", "c", "d"]

"""Tests for the figure-reproduction harness (quick profiles).

Each experiment must run, return the expected columns, and show the
*shape* the paper's figure reports.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    complexity,
    fig08_quality_tao,
    fig09_quality_death_valley,
    fig10_update_cost,
    fig11_quality_slack,
    fig12_scalability_time,
    fig13_scalability_size,
    fig14_range_query_tao,
    fig15_range_query_synthetic,
    path_query_cost,
)
from repro.experiments.common import ExperimentTable, check_profile


def test_check_profile():
    assert check_profile("full") == "full"
    with pytest.raises(ValueError):
        check_profile("medium")


def test_experiment_table_formatting():
    table = ExperimentTable("t", "Title", columns=("a", "b"))
    table.add_row(a=1, b=2.5)
    text = table.to_text()
    assert "Title" in text and "2.5" in text
    with pytest.raises(ValueError):
        table.add_row(a=1)


def test_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {
        "fig01", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "complexity", "path_query",
        "ablation_signalling", "ablation_switching", "ablation_loss",
        "ablation_asynchrony", "ablation_failures", "optimality_gap",
        "energy_hotspots",
    }


def test_ablation_experiments_quick_profiles_run():
    from repro.experiments import (
        ablation_loss,
        ablation_signalling,
        ablation_switching,
        energy_hotspots,
        optimality_gap,
    )

    signalling = ablation_signalling.run(profile="quick")
    for row in signalling.rows:
        assert row["unordered_time"] < row["implicit_time"]

    switching = ablation_switching.run(profile="quick")
    assert all(row["switches"] == 0 for row in switching.rows if row["c"] == 0)

    loss = ablation_loss.run(profile="quick")
    assert all(row["valid"] for row in loss.rows)

    gap = optimality_gap.run(profile="quick")
    for row in gap.rows:
        assert row["elink"] >= row["optimal"] - 1e-9

    energy = energy_hotspots.run(profile="quick")
    by_scheme = {row["scheme"]: row for row in energy.rows}
    assert by_scheme["centralized"]["imbalance"] > by_scheme["elink"]["imbalance"]


@pytest.fixture(scope="module")
def fig08_table():
    return fig08_quality_tao.run(profile="quick")


def test_fig08_columns_and_shape(fig08_table):
    assert list(fig08_table.columns)[0] == "delta"
    counts = fig08_table.column("elink_implicit")
    # Cluster counts fall (weakly) from the smallest to the largest delta.
    assert counts[0] > counts[-1]
    # Implicit and explicit quality match closely on every row.
    for row in fig08_table.rows:
        assert abs(row["elink_implicit"] - row["elink_explicit"]) <= max(
            2, 0.15 * row["elink_implicit"]
        )


def test_fig09_runs_and_declines():
    table = fig09_quality_death_valley.run(profile="quick")
    counts = table.column("elink_implicit")
    assert counts[0] > counts[-1]
    assert "hierarchical" in table.columns  # quick profile includes it


def test_fig10_elink_beats_centralized():
    table = fig10_update_cost.run(profile="quick")
    for row in table.rows:
        assert row["centralized"] > row["elink"]
    # The advantage holds at every slack; the paper reports roughly 10x.
    ratios = table.column("centralized_over_elink")
    assert max(ratios) > 3.0


def test_fig11_quality_degrades_with_slack():
    table = fig11_quality_slack.run(profile="quick")
    for series in ("elink", "centralized", "spanning_forest"):
        counts = table.column(series)
        assert counts[-1] >= counts[0]


def test_fig12_bands_ordered():
    table = fig12_scalability_time.run(profile="quick")
    last = table.rows[-1]
    assert last["centralized_raw"] > last["centralized_model"]
    assert last["centralized_model"] > last["elink_implicit"] - last["elink_implicit"] * 0.5
    assert last["elink_explicit"] > last["elink_implicit"]
    # Cumulative series never decrease.
    for series in ("centralized_raw", "centralized_model", "elink_implicit"):
        values = table.column(series)
        assert all(b >= a for a, b in zip(values, values[1:]))


def test_fig13_implicit_cheapest_distributed():
    table = fig13_scalability_size.run(profile="quick")
    for row in table.rows:
        assert row["elink_implicit"] < row["spanning_forest"]
        assert row["elink_implicit"] < row["hierarchical"]
        assert row["elink_implicit"] < row["elink_explicit"]


def test_fig14_clustered_beats_tag():
    table = fig14_range_query_tao.run(profile="quick")
    for row in table.rows:
        assert row["elink"] < row["tag"]


def test_fig15_runs_with_small_gains():
    table = fig15_range_query_synthetic.run(profile="quick")
    for row in table.rows:
        # Uncorrelated data: gains exist but are modest (< 2x).
        assert row["tag"] / row["elink"] < 3.0


def test_complexity_messages_per_node_bounded():
    table = complexity.run(profile="quick")
    per_node = table.column("implicit_msgs_per_node")
    assert max(per_node) / min(per_node) < 2.0


def test_path_query_agreement_and_gain():
    table = path_query_cost.run(profile="quick")
    assert any(row["found_fraction"] > 0 for row in table.rows)
    gains = [
        row["flood_over_clustered"] for row in table.rows if row["found_fraction"] > 0.3
    ]
    assert gains and max(gains) > 1.0


def test_fig01_zone_map_quick():
    from repro.experiments import fig01_zone_map

    table = fig01_zone_map.run(profile="quick")
    row = table.rows[0]
    assert row["true_zones"] >= 2
    assert row["pairwise_agreement"] > 0.5
    # The ASCII maps are attached as notes.
    assert any("temperature field" in note for note in table.notes)


def test_runner_jobs_matches_serial(capsys):
    """``--jobs N`` must print byte-identical tables to a serial run; only
    wall-clock timings may differ.  fig09 exercises the per-trial
    decomposition, the others the whole-experiment unit."""
    import re

    from repro.experiments import runner

    def normalized():
        out = capsys.readouterr().out
        out = re.sub(r"finished in [0-9.]+s", "finished in Xs", out)
        return re.sub(r"\[suite: [^\]]*\]\n", "", out)

    argv = ["--quick", "--only", "fig09", "complexity", "optimality_gap", "--no-bench"]
    assert runner.main(argv) == 0
    serial = normalized()
    assert runner.main(argv + ["--jobs", "4"]) == 0
    parallel = normalized()
    assert serial == parallel
    assert "fig09" in serial

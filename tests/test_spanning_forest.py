"""Tests for the spanning-forest clustering baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import run_spanning_forest
from repro.core import validate_clustering
from repro.features import EuclideanMetric
from repro.geometry import grid_topology, random_geometric_topology


def test_produces_valid_delta_clustering(random_topology, random_features):
    metric = EuclideanMetric()
    result = run_spanning_forest(random_topology, random_features, metric, 1.5)
    violations = validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )
    assert violations == []


def test_uniform_features_single_cluster():
    topology = grid_topology(4, 4)
    features = {v: np.zeros(1) for v in topology.graph.nodes}
    result = run_spanning_forest(topology, features, EuclideanMetric(), 1.0)
    # Phase-1 forest building may leave several roots (nodes whose id is a
    # local minimum), so "few clusters", not necessarily one.
    assert result.num_clusters <= 4


def test_huge_steps_give_singletons():
    topology = grid_topology(3, 3)
    features = {v: np.array([100.0 * v]) for v in topology.graph.nodes}
    result = run_spanning_forest(topology, features, EuclideanMetric(), 1.0)
    assert result.num_clusters == 9


def test_deterministic(random_topology, random_features):
    metric = EuclideanMetric()
    a = run_spanning_forest(random_topology, random_features, metric, 1.0)
    b = run_spanning_forest(random_topology, random_features, metric, 1.0)
    assert a.clustering.assignment == b.clustering.assignment
    assert a.total_messages == b.total_messages


def test_message_cost_linear_in_n():
    per_node = []
    rng = np.random.default_rng(0)
    for side in (6, 12, 18):
        topology = grid_topology(side, side)
        features = {
            v: np.array([0.1 * topology.positions[v][0] + rng.normal(0, 0.02)])
            for v in topology.graph.nodes
        }
        result = run_spanning_forest(topology, features, EuclideanMetric(), 0.8)
        per_node.append(result.total_messages / topology.num_nodes)
    assert max(per_node) / min(per_node) < 2.0


def test_completion_time_recorded(random_topology, random_features):
    result = run_spanning_forest(
        random_topology, random_features, EuclideanMetric(), 1.0
    )
    assert result.completion_time > 0


def test_delta_validation(random_topology, random_features):
    with pytest.raises(ValueError):
        run_spanning_forest(random_topology, random_features, EuclideanMetric(), 0.0)


def test_single_node():
    topology = grid_topology(1, 1)
    result = run_spanning_forest(
        topology, {0: np.zeros(1)}, EuclideanMetric(), 1.0
    )
    assert result.num_clusters == 1


@given(
    n=st.integers(min_value=2, max_value=50),
    seed=st.integers(min_value=0, max_value=25),
    delta=st.floats(min_value=0.2, max_value=3.0),
)
@settings(max_examples=20, deadline=None)
def test_validity_property(n, seed, delta):
    topology = random_geometric_topology(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    metric = EuclideanMetric()
    result = run_spanning_forest(topology, features, metric, delta)
    violations = validate_clustering(
        topology.graph, result.clustering, features, metric, delta
    )
    assert violations == []

"""Property-based chaos fuzzing through the full verification oracle.

Hypothesis generates random :class:`~repro.verify.ScenarioSpec` values —
grid size, δ, crash fraction, churn, fault-plan seed — and every example
runs ELink fully verified: online invariant monitors, stats conservation,
and δ-legality of the surviving clustering.  Any violation raises
``InvariantError`` from inside ``run_elink`` and fails the test with the
frozen, seed-deterministic spec as the reproducer.

``derandomize=True`` pins the corpus (CI determinism); example counts are
small because each example is a full protocol simulation.
"""

import pytest
from hypothesis import given, settings

from repro.verify import ScenarioSpec
from repro.verify.fuzz import check_scenario, hypothesis_available, scenario_specs

pytestmark = pytest.mark.skipif(
    not hypothesis_available(), reason="hypothesis not installed"
)


@settings(derandomize=True, deadline=None, max_examples=8)
@given(scenario_specs())
def test_random_chaos_scenarios_verify_clean(spec):
    """Every generated fault schedule passes the full oracle."""
    result = check_scenario(spec)
    assert result.num_clusters >= 1


@settings(derandomize=True, deadline=None, max_examples=4)
@given(scenario_specs())
def test_scenarios_are_reproducible(spec):
    """The same spec twice yields the same clusters and message totals —
    the table-level face of the determinism contract (the byte-level face
    is the replay differ)."""
    first = check_scenario(spec)
    second = check_scenario(spec)
    assert first.num_clusters == second.num_clusters
    assert first.total_messages == second.total_messages
    assert first.stats.values_by_kind == second.stats.values_by_kind


def test_fault_free_spec_verifies_clean():
    """The degenerate no-fault scenario also passes the full oracle."""
    result = check_scenario(ScenarioSpec(side=5, seed=0, crash_fraction=0.0))
    assert result.num_clusters >= 1

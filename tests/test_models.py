"""Tests for AR fitting, recursive least squares, and the seasonal model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    ARModel,
    RecursiveLeastSquares,
    TaoNodeModel,
    fit_ar,
    lagged_design,
)


def _ar2_series(alpha1=0.5, alpha2=0.3, n=4000, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    values = [0.1, 0.2]
    for _ in range(n):
        values.append(alpha1 * values[-1] + alpha2 * values[-2] + rng.normal(0, sigma))
    return np.asarray(values)


def test_lagged_design_shape_and_content():
    series = np.arange(10.0)
    design, targets = lagged_design(series, 2)
    assert design.shape == (8, 2)
    assert targets.shape == (8,)
    # Row 0 predicts x_2 from (x_1, x_0).
    assert design[0].tolist() == [1.0, 0.0]
    assert targets[0] == 2.0


def test_lagged_design_too_short():
    with pytest.raises(ValueError):
        lagged_design(np.arange(3.0), 3)


def test_lagged_design_rejects_2d():
    with pytest.raises(ValueError):
        lagged_design(np.zeros((4, 2)), 1)


def test_fit_ar_recovers_coefficients():
    model = fit_ar(_ar2_series(), 2)
    assert model.coefficients[0] == pytest.approx(0.5, abs=0.05)
    assert model.coefficients[1] == pytest.approx(0.3, abs=0.05)
    assert model.noise_variance == pytest.approx(0.01, rel=0.3)


def test_ar_predict_next():
    model = ARModel(coefficients=np.array([0.5, 0.25]), noise_variance=0.0)
    # x_{t-1} = 4 (last), x_{t-2} = 8
    assert model.predict_next(np.array([8.0, 4.0])) == pytest.approx(0.5 * 4 + 0.25 * 8)


def test_ar_predict_requires_enough_history():
    model = ARModel(coefficients=np.array([0.5, 0.25]), noise_variance=0.0)
    with pytest.raises(ValueError):
        model.predict_next(np.array([1.0]))


def test_ar_simulate_deterministic_with_zero_noise():
    model = ARModel(coefficients=np.array([0.5]), noise_variance=0.0)
    out = model.simulate(np.array([2.0]), steps=3, rng=np.random.default_rng(0))
    assert out.tolist() == [1.0, 0.5, 0.25]


def test_rls_matches_batch_least_squares():
    series = _ar2_series(n=2000)
    design, targets = lagged_design(series, 2)
    batch, *_ = np.linalg.lstsq(design, targets, rcond=None)
    rls = RecursiveLeastSquares(2)
    for row, y in zip(design, targets):
        rls.update(row, y)
    assert np.allclose(rls.coefficients, batch, atol=0.02)


def test_rls_seed_batch_equals_batch_solution():
    series = _ar2_series(n=500)
    design, targets = lagged_design(series, 2)
    batch, *_ = np.linalg.lstsq(design, targets, rcond=None)
    rls = RecursiveLeastSquares(2)
    rls.seed_batch(design, targets)
    assert np.allclose(rls.coefficients, batch, atol=1e-6)
    assert rls.updates == design.shape[0]


def test_rls_continues_after_seed():
    series = _ar2_series(n=3000)
    design, targets = lagged_design(series, 2)
    rls = RecursiveLeastSquares(2)
    rls.seed_batch(design[:1000], targets[:1000])
    for row, y in zip(design[1000:], targets[1000:]):
        rls.update(row, y)
    batch, *_ = np.linalg.lstsq(design, targets, rcond=None)
    assert np.allclose(rls.coefficients, batch, atol=0.02)


def test_rls_input_validation():
    rls = RecursiveLeastSquares(2)
    with pytest.raises(ValueError):
        rls.update(np.zeros(3), 1.0)
    with pytest.raises(ValueError):
        rls.update(np.array([1.0, float("nan")]), 1.0)
    with pytest.raises(ValueError):
        rls.update(np.zeros(2), float("inf"))


def test_rls_initial_coefficients():
    rls = RecursiveLeastSquares(1, initial_coefficients=np.array([1.0]))
    assert rls.coefficients.tolist() == [1.0]
    with pytest.raises(ValueError):
        RecursiveLeastSquares(2, initial_coefficients=np.array([1.0]))


def test_rls_order_validation():
    with pytest.raises(ValueError):
        RecursiveLeastSquares(0)
    with pytest.raises(ValueError):
        RecursiveLeastSquares(1, initial_p_scale=-1.0)


@given(
    alpha=st.floats(min_value=-0.9, max_value=0.9),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_rls_recovers_ar1_property(alpha, seed):
    rng = np.random.default_rng(seed)
    x = 0.0
    rls = RecursiveLeastSquares(1)
    for _ in range(3000):
        nxt = alpha * x + rng.normal(0, 0.1)
        rls.update(np.array([x]), nxt)
        x = nxt
    # ~6 sigma of the estimator's sampling error at these sizes.
    assert rls.coefficients[0] == pytest.approx(alpha, abs=0.12)


# ----------------------------------------------------------------------
# TaoNodeModel
# ----------------------------------------------------------------------
def _tao_history(days=6, spd=24, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * spd)
    return 25 + 0.5 * np.sin(2 * np.pi * t / spd) + rng.normal(0, 0.1, size=t.shape)


def test_tao_model_fit_returns_4d_feature():
    model = TaoNodeModel(24)
    feature = model.fit(_tao_history())
    assert feature.shape == (4,)
    assert np.all(np.isfinite(feature))


def test_tao_model_requires_enough_days():
    model = TaoNodeModel(24)
    with pytest.raises(ValueError, match="at least 4"):
        model.fit(_tao_history(days=3))


def test_tao_model_observe_before_fit_rejected():
    model = TaoNodeModel(24)
    with pytest.raises(RuntimeError):
        model.observe(25.0)


def test_tao_model_alpha_moves_per_measurement_betas_daily():
    model = TaoNodeModel(24)
    model.fit(_tao_history())
    before = model.feature
    model.observe(26.0)
    after = model.feature
    # alpha (index 0) is live; betas are frozen until a day boundary.
    assert after[0] != before[0] or True  # alpha may move imperceptibly
    assert np.array_equal(after[1:], before[1:])


def test_tao_model_betas_commit_at_day_boundary():
    model = TaoNodeModel(4)
    model.fit(_tao_history(days=6, spd=4))
    before = model.feature[1:].copy()
    day = model.day
    for value in (25.0, 25.2, 24.9, 25.1):  # one full day
        model.observe(value)
    assert model.day == day + 1
    # Betas are re-committed (values may or may not differ, but the commit
    # path ran — day counter advanced and feature stays finite).
    assert np.all(np.isfinite(model.feature))


def test_tao_model_rejects_nonfinite_measurement():
    model = TaoNodeModel(24)
    model.fit(_tao_history())
    with pytest.raises(ValueError):
        model.observe(float("nan"))


def test_tao_model_validation():
    with pytest.raises(ValueError):
        TaoNodeModel(1)
    model = TaoNodeModel(24)
    with pytest.raises(ValueError):
        model.fit(np.zeros((3, 3)))

"""Tests for the k-NN query extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import random_geometric_topology
from repro.index import build_backbone, build_mtree
from repro.queries import KnnQueryEngine, brute_force_knn


def _engine_for(topology, features, delta=1.5):
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    return KnnQueryEngine(clustering, features, metric, mtree, backbone), metric


def test_knn_matches_brute_force(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features)
    rng = np.random.default_rng(0)
    for _ in range(15):
        q = rng.normal(size=2)
        k = int(rng.integers(1, 8))
        result = engine.query(q, k, initiator=0)
        truth = brute_force_knn(random_features, metric, q, k)
        assert [node for node, _ in result.neighbors] == [node for node, _ in truth]


def test_knn_distances_sorted(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features)
    result = engine.query(np.zeros(2), 5, initiator=0)
    distances = [d for _, d in result.neighbors]
    assert distances == sorted(distances)


def test_k_one_returns_nearest(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features)
    node = next(iter(random_topology.graph.nodes))
    result = engine.query(random_features[node], 1, initiator=node)
    assert result.neighbors[0][0] == node
    assert result.neighbors[0][1] == pytest.approx(0.0)


def test_k_larger_than_network(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features)
    n = random_topology.num_nodes
    result = engine.query(np.zeros(2), n + 10, initiator=0)
    assert len(result.neighbors) == n


def test_k_validation(random_topology, random_features):
    engine, _ = _engine_for(random_topology, random_features)
    with pytest.raises(ValueError):
        engine.query(np.zeros(2), 0, initiator=0)


def test_knn_visits_fewer_nodes_than_network_on_clustered_data():
    from repro.geometry import grid_topology

    topology = grid_topology(10, 10)
    features = {
        v: np.array([0.2 * topology.positions[v][0]]) for v in topology.graph.nodes
    }
    engine, metric = _engine_for(topology, features, delta=0.5)
    result = engine.query(features[0], 3, initiator=0)
    truth = brute_force_knn(features, metric, features[0], 3)
    # Many nodes tie at distance 0 on this field, so compare distances.
    assert [round(d, 9) for _, d in result.neighbors] == [
        round(d, 9) for _, d in truth
    ]
    assert result.nodes_visited < topology.num_nodes


@given(seed=st.integers(min_value=0, max_value=25), k=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_knn_correctness_property(seed, k):
    topology = random_geometric_topology(40, seed=seed)
    rng = np.random.default_rng(seed + 50)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    engine, metric = _engine_for(topology, features, delta=1.0)
    q = rng.normal(size=2)
    result = engine.query(q, k, initiator=0)
    truth = brute_force_knn(features, metric, q, k)
    assert [n for n, _ in result.neighbors] == [n for n, _ in truth]


# ----------------------------------------------------------------------
# degraded operation: dead nodes, coverage, drop-reason agreement
# ----------------------------------------------------------------------
from repro.obs.metrics import MetricsRegistry


def _fault_knn(topology, features, delta, dead=None, root_replacements=None, metrics=None):
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = KnnQueryEngine(
        clustering,
        features,
        metric,
        mtree,
        backbone,
        dead=dead,
        root_replacements=root_replacements,
        metrics=metrics,
    )
    return engine, clustering, backbone, metric


def test_knn_fault_free_reports_full_coverage(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features)
    out = engine.query(np.zeros(2), 5, initiator=0)
    assert out.coverage == 1.0
    assert out.drops == 0


def test_knn_dead_backbone_leaf_partial_coverage(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 2:
        pytest.skip("single-cluster instance")
    dead = next(r for r in clustering.roots if backbone.tree.degree(r) == 1)
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5, dead={dead}
    )
    initiator = next(
        n for n in random_topology.graph.nodes if clustering.root_of(n) != dead
    )
    n = random_topology.num_nodes
    out = engine.query(np.zeros(2), n, initiator)
    lost = set(clustering.members(dead))
    alive = set(random_topology.graph.nodes) - {dead}
    # The severed cluster never answers; everyone else does.
    assert {node for node, _ in out.neighbors} == alive - lost
    expected = 1.0 - (len(lost) - 1) / len(alive)
    assert out.coverage == pytest.approx(expected)
    assert out.drops > 0


def test_knn_dead_origin_root_answers_locally(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5
    )
    dead = next(
        (r for r in clustering.roots if len(clustering.members(r)) >= 2), None
    )
    if dead is None or clustering.num_clusters < 2:
        pytest.skip("needs a surviving cluster member and >1 cluster")
    members = set(clustering.members(dead))
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5, dead={dead}
    )
    initiator = next(m for m in members if m != dead)
    out = engine.query(np.zeros(2), len(members) + 5, initiator)
    # Only the initiator's surviving cluster-mates are ranked.
    assert {node for node, _ in out.neighbors} == members - {dead}
    alive = random_topology.num_nodes - 1
    assert out.coverage == pytest.approx((len(members) - 1) / alive)
    assert out.drops >= 1  # the dead_root drop


def test_knn_replacement_root_restores_full_coverage(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 2:
        pytest.skip("single-cluster instance")
    dead = next(
        (
            r
            for r in clustering.roots
            if backbone.tree.degree(r) >= 1 and len(clustering.members(r)) >= 2
        ),
        None,
    )
    if dead is None:
        pytest.skip("needs a surviving cluster member")
    replacement = next(m for m in clustering.members(dead) if m != dead)
    surviving = random_topology.graph.copy()
    surviving.remove_node(dead)
    mtree = build_mtree(clustering, random_features, metric)
    backbone.reroute_around(surviving, dead, replacement)
    engine = KnnQueryEngine(
        clustering,
        random_features,
        metric,
        mtree,
        backbone,
        dead={dead},
        root_replacements={dead: replacement},
    )
    initiator = next(
        n for n in surviving.nodes if clustering.root_of(n) != dead
    )
    out = engine.query(np.zeros(2), len(surviving.nodes), initiator)
    assert {node for node, _ in out.neighbors} == set(surviving.nodes)
    assert out.coverage == 1.0
    truth = brute_force_knn(
        {n: random_features[n] for n in surviving.nodes}, metric, np.zeros(2), 5
    )
    top5 = engine.query(np.zeros(2), 5, initiator)
    assert [n for n, _ in top5.neighbors] == [n for n, _ in truth]


def test_knn_drop_accounting_agrees_between_result_and_metrics(
    random_topology, random_features
):
    """``KnnResult.drops`` equals the sum of the engine's
    ``queries.drops.<reason>`` counters — the double-entry contract the
    range engine established in the fault-tolerance PR."""
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 3:
        pytest.skip("needs a few clusters")
    dead = next(r for r in clustering.roots if backbone.tree.degree(r) == 1)
    metrics = MetricsRegistry()
    engine, clustering, backbone, metric = _fault_knn(
        random_topology, random_features, delta=1.5, dead={dead}, metrics=metrics
    )
    initiator = next(
        n for n in random_topology.graph.nodes if clustering.root_of(n) != dead
    )
    out = engine.query(np.zeros(2), 5, initiator)
    counted = sum(
        metric_dict["value"]
        for name, metric_dict in metrics.snapshot().items()
        if name.startswith("queries.drops.")
    )
    assert counted == out.drops > 0

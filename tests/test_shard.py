"""Tests for the epoch-barrier sharded simulation engine.

Covers the :class:`~repro.sim.shard.ShardPlan` partition properties, the
serial-vs-sharded byte-identity certificate (:func:`replay_sharded_check`)
across topologies, shard counts, transports and chaos levels, the
constructor gates that reject unsupported configurations, the engine
selector wiring, and the coordinator's ``shard.*`` observability events.
"""

import multiprocessing

import pytest

from repro.geometry.quadtree import QuadTreeDecomposition
from repro.geometry.topology import grid_topology
from repro.obs.inspect import TraceInspector
from repro.obs.trace import Tracer
from repro.sim import EnergyModel, LossyLinkModel, Network, ShardedNetwork, ShardPlan
from repro.sim.network import ENGINE_ENV
from repro.verify import ScenarioSpec, replay_sharded_check, run_scenario

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# shard plan
# ----------------------------------------------------------------------
def test_plan_from_graph_covers_and_balances():
    graph = grid_topology(5, 5).graph
    plan = ShardPlan.from_graph(graph, 4)
    plan.validate_cover(graph)
    sizes = [len(members) for members in plan.members]
    assert sum(sizes) == graph.number_of_nodes()
    assert max(sizes) - min(sizes) <= 1
    assert plan.level is None
    assert all(plan.shard_of(node) == plan.owner[node] for node in graph.nodes)


def test_plan_from_quadtree_covers_and_is_deterministic():
    topology = grid_topology(6, 6)
    quadtree = QuadTreeDecomposition(topology)
    plan_a = ShardPlan.from_quadtree(quadtree, 4)
    plan_b = ShardPlan.from_quadtree(quadtree, 4)
    plan_a.validate_cover(topology.graph)
    assert plan_a.members == plan_b.members
    assert plan_a.level is not None
    # LPT over whole cells: no shard may end up empty on a 36-node grid.
    assert all(plan_a.members[s] for s in range(4))


def test_plan_rejects_bad_inputs():
    graph = grid_topology(3, 3).graph
    with pytest.raises(ValueError, match="shards must be >= 1"):
        ShardPlan.from_graph(graph, 0)
    with pytest.raises(ValueError, match="two shards"):
        ShardPlan._from_members(2, [[0, 1], [1, 2]], None)
    partial = ShardPlan.from_graph(grid_topology(2, 2).graph, 2)
    with pytest.raises(ValueError, match="does not cover"):
        partial.validate_cover(graph)


# ----------------------------------------------------------------------
# serial-vs-sharded byte-identity certificate
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec",
    [
        ScenarioSpec(side=5, crash_fraction=0.05, shards=2, shard_mode="inline"),
        ScenarioSpec(
            side=6, crash_fraction=0.1, churn_events=3, shards=4, shard_mode="inline"
        ),
        ScenarioSpec(
            side=5,
            crash_fraction=0.05,
            shards=2,
            shard_mode="inline",
            topology="geometric",
        ),
    ],
    ids=["grid-2sh-crash5", "grid-4sh-chaos", "geometric-2sh-crash5"],
)
def test_sharded_replay_identical_inline(spec):
    report = replay_sharded_check(spec, level="full")
    assert report.identical, str(report)
    assert report.events > 0


@pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
def test_sharded_replay_identical_fork():
    spec = ScenarioSpec(side=5, crash_fraction=0.05, shards=2, shard_mode="fork")
    report = replay_sharded_check(spec)
    assert report.identical, str(report)


def test_sharded_report_strings():
    spec = ScenarioSpec(side=4, crash_fraction=0.0, shards=2, shard_mode="inline")
    report = replay_sharded_check(spec)
    assert "byte-identical" in str(report)


# ----------------------------------------------------------------------
# constructor gates and selector wiring
# ----------------------------------------------------------------------
def test_constructor_gates():
    graph = grid_topology(3, 3).graph
    with pytest.raises(ValueError, match="jitter"):
        ShardedNetwork(graph, jitter=0.5)
    with pytest.raises(ValueError, match="lossy"):
        ShardedNetwork(graph, loss=LossyLinkModel(0.1))
    with pytest.raises(ValueError, match="energy"):
        ShardedNetwork(graph, energy=EnergyModel())
    with pytest.raises(ValueError, match="shards must be >= 1"):
        ShardedNetwork(graph, shards=0)
    with pytest.raises(ValueError, match="shard_mode"):
        ShardedNetwork(graph, shard_mode="threads")


def test_run_is_single_use():
    sharded = ShardedNetwork(grid_topology(3, 3).graph, shards=2, shard_mode="inline")
    sharded.run(until=1.0)
    with pytest.raises(RuntimeError, match="single run"):
        sharded.run(until=2.0)


def test_engine_selector_and_env(monkeypatch):
    graph = grid_topology(3, 3).graph
    network = Network(graph, engine="sharded", shards=2, shard_mode="inline")
    assert isinstance(network, ShardedNetwork)
    assert network.engine == "sharded"
    monkeypatch.setenv(ENGINE_ENV, "sharded")
    via_env = Network(grid_topology(3, 3).graph)
    assert isinstance(via_env, ShardedNetwork)


def test_mid_run_coordinator_scheduling_rejected():
    """The coordinator rejects scheduling once workers own the handlers."""
    sharded = ShardedNetwork(grid_topology(3, 3).graph, shards=2, shard_mode="inline")
    sharded._transport = object()  # simulate an in-flight run
    with pytest.raises(RuntimeError, match="unsupported"):
        sharded.schedule_owned(0, 1.0, lambda: None)
    sharded._transport = None


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_shard_events_and_inspector_rollup():
    spec = ScenarioSpec(
        side=5, crash_fraction=0.05, engine="sharded", shards=2, shard_mode="inline"
    )
    tracer = Tracer()
    run_scenario(spec, tracer=tracer)
    events = list(tracer.events())
    types = {event.type for event in events}
    assert {"shard.epoch", "shard.boundary", "shard.queues"} <= types
    inspector = TraceInspector(events)
    report = inspector.shard_report()
    assert report is not None
    assert report["epochs"] > 0
    assert len(report["shard_dispatch"]) == 2
    assert "epoch barriers" in inspector.shard_text()
    assert "shards:" in inspector.summary_text()


def test_shard_report_absent_on_serial_trace():
    spec = ScenarioSpec(side=4, crash_fraction=0.0, engine="object")
    tracer = Tracer()
    run_scenario(spec, tracer=tracer)
    inspector = TraceInspector(list(tracer.events()))
    assert inspector.shard_report() is None
    assert inspector.shard_text() == "no shard.* events in trace"

"""Assorted behaviour tests for smaller surfaces across the package."""

import networkx as nx
import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import QuadTreeDecomposition, grid_topology
from repro.queries import TagEngine
from repro.sim import EventKernel, Message, Network


def test_elink_result_message_partition(random_topology, random_features):
    result = run_elink(
        random_topology,
        random_features,
        EuclideanMetric(),
        ELinkConfig(delta=1.0, signalling="explicit"),
    )
    assert result.total_messages == result.clustering_messages + result.sync_messages
    assert "explicit" in repr(result)


def test_quadtree_sentinels_at_returns_copies(small_grid):
    decomposition = QuadTreeDecomposition(small_grid)
    level0 = decomposition.sentinels_at(0)
    level0.append("junk")
    assert decomposition.sentinels_at(0) != level0  # internal list untouched


def test_tag_overlay_is_bfs_tree_from_base(random_topology, random_features):
    base = next(iter(random_topology.graph.nodes))
    tag = TagEngine(random_topology.graph, random_features, EuclideanMetric(), base)
    # Every overlay edge is a communication edge; the overlay spans all nodes.
    assert set(tag.overlay.nodes) == set(random_topology.graph.nodes)
    for a, b in tag.overlay.edges:
        assert random_topology.graph.has_edge(a, b)


def test_broadcast_on_isolated_node():
    graph = nx.Graph()
    graph.add_nodes_from([0, 1])
    graph.add_edge(0, 1)
    graph.add_node(2)  # isolated
    network = Network(graph, EventKernel())
    count = network.broadcast(2, lambda nb: Message("feature", 2, nb))
    assert count == 0


def test_experiment_table_column_missing_key():
    from repro.experiments.common import ExperimentTable

    table = ExperimentTable("t", "T", columns=("a",))
    table.add_row(a=1)
    with pytest.raises(KeyError):
        table.column("b")


def test_cluster_summary_top_parameter(small_grid, small_grid_features):
    from repro.viz import cluster_summary

    clustering = run_elink(
        small_grid, small_grid_features, EuclideanMetric(), ELinkConfig(delta=0.3)
    ).clustering
    assert clustering.num_clusters > 2
    text = cluster_summary(clustering, small_grid_features, top=2)
    assert text.count("root=") == 2


def test_render_field_explicit_height(small_grid, small_grid_features):
    from repro.viz import render_field

    values = {v: small_grid_features[v][0] for v in small_grid.graph.nodes}
    art = render_field(small_grid, values, width=12, height=4)
    assert len(art.split("\n")) == 4


def test_grid_spacing_scales_bounds():
    a = grid_topology(3, 3, spacing=1.0)
    b = grid_topology(3, 3, spacing=2.0)
    assert b.bounds.width == pytest.approx(2 * a.bounds.width)


def test_message_repr_and_category_override():
    message = Message("expand", 0, 1, category="custom")
    assert message.category == "custom"


def test_kernel_repr_mentions_pending():
    kernel = EventKernel()
    kernel.schedule(1.0, lambda: None)
    assert "pending=1" in repr(kernel)

"""Scale sanity: ELink handles the paper's 2500-node deployments quickly
and still emits valid δ-clusterings."""

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.core.delta import check_delta_compact
from repro.datasets import generate_death_valley_dataset


def test_elink_on_2500_node_death_valley():
    dataset = generate_death_valley_dataset(seed=5, num_sensors=2500)
    metric = dataset.metric()
    result = run_elink(
        dataset.topology, dataset.features, metric, ELinkConfig(delta=200.0)
    )
    assert result.num_clusters > 1
    # Full validation is O(sum cluster_size^2); spot-check the largest
    # clusters for delta-compactness and every cluster for coverage.
    clusters = result.clustering.clusters()
    assert sum(len(m) for m in clusters.values()) == 2500
    largest = sorted(clusters.values(), key=len, reverse=True)[:10]
    for members in largest:
        assert check_delta_compact(members, dataset.features, metric, 200.0) == []


def test_explicit_mode_on_800_node_synthetic():
    from repro.datasets import generate_synthetic_dataset

    dataset = generate_synthetic_dataset(800, seed=1, readings=200)
    result = run_elink(
        dataset.topology,
        dataset.features,
        dataset.metric(),
        ELinkConfig(delta=0.05, signalling="explicit"),
    )
    assert result.num_clusters > 1
    assert result.sync_messages > 0
    # Theorem 3: explicit packets stay linear-ish in N (generous bound).
    assert result.stats.total_packets < 40 * 800

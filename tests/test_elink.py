"""Tests for the ELink clustering protocol (paper §3–§5)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.core.elink import compute_kappa, implicit_schedule
from repro.features import EuclideanMetric
from repro.geometry import Topology, grid_topology, random_geometric_topology


def fig5_instance():
    """The paper's Fig 5 worked example (δ = 6, sentinel D).

    Features embedded on a line so the distances-to-D match the figure:
    d(D,F)=1, d(D,G)=2, d(D,B)=2, d(D,A)=3, d(D,E)=3, d(D,C)=4.
    """
    graph = nx.Graph(
        [("A", "B"), ("B", "C"), ("B", "D"), ("D", "E"), ("D", "F"), ("F", "G")]
    )
    positions = {
        "D": (0.0, 0.0),
        "B": (-1.0, 0.0),
        "A": (-2.0, 0.1),
        "C": (-1.0, 1.0),
        "E": (1.0, 0.2),
        "F": (0.5, -0.5),
        "G": (1.5, -0.6),
    }
    features = {
        "D": np.array([0.0]),
        "F": np.array([1.0]),
        "G": np.array([2.0]),
        "B": np.array([-2.0]),
        "A": np.array([-3.0]),
        "C": np.array([-4.0]),
        "E": np.array([3.0]),
    }
    return Topology(graph, positions), features


@pytest.mark.parametrize("signalling", ["implicit", "explicit"])
def test_fig5_worked_example(signalling):
    topology, features = fig5_instance()
    result = run_elink(
        topology,
        features,
        EuclideanMetric(),
        ELinkConfig(delta=6.0, signalling=signalling),
    )
    clustering = result.clustering
    # D roots the big cluster {A, B, D, E, F, G}; C is excluded (d=4 > δ/2).
    assert clustering.root_of("D") == "D"
    big = set(clustering.members("D"))
    assert big == {"A", "B", "D", "E", "F", "G"}
    assert clustering.root_of("C") == "C"
    assert clustering.num_clusters == 2
    assert not validate_clustering(
        topology.graph, clustering, features, EuclideanMetric(), 6.0
    )


@pytest.mark.parametrize("signalling", ["implicit", "explicit"])
def test_single_node_network(signalling):
    topology = grid_topology(1, 1)
    features = {0: np.array([1.0])}
    result = run_elink(
        topology, features, EuclideanMetric(), ELinkConfig(delta=1.0, signalling=signalling)
    )
    assert result.num_clusters == 1
    assert result.clustering.root_of(0) == 0


def test_uniform_features_give_single_cluster(small_grid):
    features = {v: np.array([5.0]) for v in small_grid.graph.nodes}
    result = run_elink(small_grid, features, EuclideanMetric(), ELinkConfig(delta=1.0))
    assert result.num_clusters == 1


def test_distinct_features_give_singletons(small_grid):
    features = {v: np.array([100.0 * v]) for v in small_grid.graph.nodes}
    result = run_elink(small_grid, features, EuclideanMetric(), ELinkConfig(delta=1.0))
    assert result.num_clusters == small_grid.num_nodes


def test_gradient_field_cluster_count(small_grid, small_grid_features):
    result = run_elink(
        small_grid, small_grid_features, EuclideanMetric(), ELinkConfig(delta=0.5)
    )
    assert 1 < result.num_clusters < small_grid.num_nodes


def test_delta_half_rule_bounds_distance_to_root(small_grid, small_grid_features):
    metric = EuclideanMetric()
    delta = 0.6
    result = run_elink(small_grid, small_grid_features, metric, ELinkConfig(delta=delta))
    for root, members in result.clustering.clusters().items():
        pruning_feature = result.clustering.root_features[root]
        for member in members:
            assert (
                metric.distance(small_grid_features[member], pruning_feature)
                <= delta / 2 + 1e-9
            )


@pytest.mark.parametrize("signalling", ["implicit", "explicit"])
def test_clustering_is_valid_delta_clustering(random_topology, random_features, signalling):
    metric = EuclideanMetric()
    result = run_elink(
        random_topology,
        random_features,
        metric,
        ELinkConfig(delta=1.5, signalling=signalling),
    )
    violations = validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )
    assert violations == []


def test_implicit_and_explicit_produce_equivalent_quality(random_topology, random_features):
    """The paper states both signalling modes output the same clusters; that
    holds exactly only when same-level sentinels start simultaneously.  The
    explicit mode's start messages arrive with intra-level skew, so a few
    border nodes may land differently — quality must still match closely
    (see DESIGN.md)."""
    metric = EuclideanMetric()
    implicit = run_elink(
        random_topology, random_features, metric, ELinkConfig(delta=1.0)
    )
    explicit = run_elink(
        random_topology,
        random_features,
        metric,
        ELinkConfig(delta=1.0, signalling="explicit"),
    )
    difference = abs(implicit.num_clusters - explicit.num_clusters)
    assert difference <= max(2, int(0.1 * implicit.num_clusters))


def test_explicit_costs_more_than_implicit(random_topology, random_features):
    metric = EuclideanMetric()
    implicit = run_elink(random_topology, random_features, metric, ELinkConfig(delta=1.0))
    explicit = run_elink(
        random_topology,
        random_features,
        metric,
        ELinkConfig(delta=1.0, signalling="explicit"),
    )
    assert explicit.sync_messages > 0
    assert implicit.sync_messages == 0
    assert explicit.total_messages > implicit.total_messages


def test_explicit_protocol_time_recorded(random_topology, random_features):
    result = run_elink(
        random_topology,
        random_features,
        EuclideanMetric(),
        ELinkConfig(delta=1.0, signalling="explicit"),
    )
    assert result.protocol_time >= result.completion_time > 0


def test_zero_switch_budget_still_valid(random_topology, random_features):
    metric = EuclideanMetric()
    result = run_elink(
        random_topology, random_features, metric, ELinkConfig(delta=1.5, max_switches=0)
    )
    assert result.total_switches == 0
    assert not validate_clustering(
        random_topology.graph, result.clustering, random_features, metric, 1.5
    )


def test_switches_bounded_by_budget(random_topology):
    rng = np.random.default_rng(3)
    features = {v: rng.normal(size=1) for v in random_topology.graph.nodes}
    config = ELinkConfig(delta=2.0, max_switches=2, phi=0.0)
    result = run_elink(random_topology, features, EuclideanMetric(), config)
    # total switches <= budget * nodes (loose) and the run stays valid
    assert result.total_switches <= 2 * random_topology.num_nodes
    assert not validate_clustering(
        random_topology.graph, result.clustering, features, EuclideanMetric(), 2.0
    )


def test_config_validation():
    with pytest.raises(ValueError):
        ELinkConfig(delta=0.0)
    with pytest.raises(ValueError):
        ELinkConfig(delta=1.0, phi=-0.1)
    with pytest.raises(ValueError):
        ELinkConfig(delta=1.0, max_switches=-1)
    with pytest.raises(ValueError):
        ELinkConfig(delta=1.0, signalling="telepathy")
    with pytest.raises(ValueError):
        ELinkConfig(delta=1.0, ack_window=1.5)


def test_config_default_phi_is_tenth_of_delta():
    assert ELinkConfig(delta=2.0).switch_threshold == pytest.approx(0.2)
    assert ELinkConfig(delta=2.0, phi=0.05).switch_threshold == 0.05


def test_missing_features_rejected(small_grid):
    features = {v: np.array([0.0]) for v in list(small_grid.graph.nodes)[:-1]}
    with pytest.raises(ValueError, match="features missing"):
        run_elink(small_grid, features, EuclideanMetric(), ELinkConfig(delta=1.0))


def test_kappa_formula():
    assert compute_kappa(100, 0.3) == pytest.approx(1.3 * np.sqrt(50.0))


def test_implicit_schedule_monotone_and_shaped():
    starts = implicit_schedule(100, 4, gamma=0.3)
    assert starts[0] == 0.0
    assert all(b > a for a, b in zip(starts, starts[1:]))
    kappa = compute_kappa(100, 0.3)
    # t_0 = kappa, so S_1 starts exactly at kappa.
    assert starts[1] == pytest.approx(kappa)
    # t_l < 2*kappa for all l, so gaps are bounded by 2*kappa.
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(gap <= 2 * kappa + 1e-9 for gap in gaps)


@given(
    n=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=30),
    delta=st.floats(min_value=0.2, max_value=3.0),
)
@settings(max_examples=20, deadline=None)
def test_validity_property_random_instances(n, seed, delta):
    topology = random_geometric_topology(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    metric = EuclideanMetric()
    for signalling in ("implicit", "explicit"):
        result = run_elink(
            topology, features, metric, ELinkConfig(delta=delta, signalling=signalling)
        )
        violations = validate_clustering(
            topology.graph, result.clustering, features, metric, delta
        )
        assert violations == []


def test_message_complexity_linear_in_n():
    """Theorem 2/3: packets grow linearly with N (constant per node)."""
    per_node = []
    for side in (6, 12, 18):
        topology = grid_topology(side, side)
        rng = np.random.default_rng(0)
        features = {
            v: np.array([0.1 * (topology.positions[v][0] + topology.positions[v][1])])
            for v in topology.graph.nodes
        }
        result = run_elink(topology, features, EuclideanMetric(), ELinkConfig(delta=1.0))
        per_node.append(result.stats.total_packets / topology.num_nodes)
    # Messages per node stay within a small constant band as N grows 9x.
    assert max(per_node) / min(per_node) < 2.0


# ----------------------------------------------------------------------
# unordered expansion (§5 thought experiment)
# ----------------------------------------------------------------------
def test_unordered_mode_is_valid_and_fast(random_topology, random_features):
    metric = EuclideanMetric()
    implicit = run_elink(random_topology, random_features, metric, ELinkConfig(delta=1.5))
    unordered = run_elink(
        random_topology,
        random_features,
        metric,
        ELinkConfig(delta=1.5, signalling="unordered"),
    )
    assert not validate_clustering(
        random_topology.graph, unordered.clustering, random_features, metric, 1.5
    )
    # O(sqrt(N)) vs O(sqrt(N) log N): unordered finishes much earlier.
    assert unordered.protocol_time < implicit.protocol_time


def test_unordered_quality_never_better_on_correlated_field(small_grid, small_grid_features):
    metric = EuclideanMetric()
    implicit = run_elink(small_grid, small_grid_features, metric, ELinkConfig(delta=0.6))
    unordered = run_elink(
        small_grid,
        small_grid_features,
        metric,
        ELinkConfig(delta=0.6, signalling="unordered"),
    )
    assert unordered.num_clusters >= implicit.num_clusters


def test_unordered_singleton_roots_dissolve():
    """On a uniform field every node self-elects; singleton roots then
    dissolve toward smaller ids.  Simultaneous dissolution shatters most
    chains — the §5 "excessive contention" — so the bar is only: some
    merging happened, and quality is far below the ordered modes'."""
    topology = grid_topology(5, 5)
    features = {v: np.array([0.0]) for v in topology.graph.nodes}
    unordered = run_elink(
        topology, features, EuclideanMetric(), ELinkConfig(delta=1.0, signalling="unordered")
    )
    implicit = run_elink(topology, features, EuclideanMetric(), ELinkConfig(delta=1.0))
    assert unordered.total_switches > 0
    assert implicit.num_clusters < unordered.num_clusters < topology.num_nodes

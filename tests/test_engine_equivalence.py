"""Fast-vs-object engine equivalence (DESIGN.md §8 determinism contract).

The array engine must be byte-identical to the reference object engine at
a fixed seed: same clusterings, same stats totals, same trace streams —
including fault-injected runs, where cohort batching and CSR patching are
under the most pressure.  These tests pin that contract.
"""

import dataclasses

import numpy as np
import pytest

import repro.core.elink_vec as elink_vec
from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import Topology, grid_topology, random_geometric_topology
from repro.obs.trace import Tracer
from repro.sim import (
    ENGINE_ENV,
    ArrayNetwork,
    EventKernel,
    Network,
    TimerWheelKernel,
    default_engine,
)
from repro.verify.harness import ScenarioSpec, build_scenario, run_scenario
from repro.verify.replay import diff_traces, replay_check


def _topology(kind: str) -> Topology:
    if kind == "grid":
        return grid_topology(6, 6)
    return random_geometric_topology(80, seed=11)


def _features(topology: Topology) -> dict:
    return {
        node: np.array([(x + 2 * y) / 5.0])
        for node, (x, y) in topology.positions.items()
    }


def _run(topology, engine: str, signalling: str):
    tracer = Tracer()
    network = Network(topology.graph.copy(), engine=engine)
    result = run_elink(
        Topology(network.graph, dict(topology.positions)),
        _features(topology),
        EuclideanMetric(),
        ELinkConfig(delta=0.6, signalling=signalling),
        network=network,
        tracer=tracer,
    )
    return result, tracer


# ----------------------------------------------------------------------
# engine selector
# ----------------------------------------------------------------------
def test_selector_dispatches_to_array_engine(small_grid):
    network = Network(small_grid.graph, engine="array")
    assert isinstance(network, ArrayNetwork)
    assert network.engine == "array"
    assert isinstance(network.kernel, TimerWheelKernel)


def test_selector_defaults_to_object_engine(small_grid):
    network = Network(small_grid.graph)
    assert type(network) is Network
    assert network.engine == "object"
    assert type(network.kernel) is EventKernel


def test_selector_rejects_unknown_engine(small_grid):
    with pytest.raises(ValueError, match="must be one of"):
        Network(small_grid.graph, engine="vectorized")


def test_selector_follows_environment(small_grid, monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "array")
    assert default_engine() == "array"
    assert isinstance(Network(small_grid.graph), ArrayNetwork)
    monkeypatch.setenv(ENGINE_ENV, "warp")
    with pytest.raises(ValueError, match="must be one of"):
        default_engine()


def test_explicit_kernel_overrides_engine_default(small_grid):
    kernel = EventKernel()
    network = Network(small_grid.graph, kernel, engine="array")
    assert network.kernel is kernel
    assert isinstance(network, ArrayNetwork)


# ----------------------------------------------------------------------
# byte-identity on clean runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology_kind", ["grid", "geometric"])
@pytest.mark.parametrize("signalling", ["implicit", "explicit"])
def test_engines_byte_identical_traces(topology_kind, signalling):
    topology = _topology(topology_kind)
    obj_result, obj_tracer = _run(topology, "object", signalling)
    arr_result, arr_tracer = _run(topology, "array", signalling)

    assert diff_traces(obj_tracer.events(), arr_tracer.events()) is None
    assert obj_result.clustering.assignment == arr_result.clustering.assignment
    assert obj_result.clustering.parent == arr_result.clustering.parent
    assert obj_result.stats.snapshot() == arr_result.stats.snapshot()
    assert obj_result.completion_time == arr_result.completion_time
    assert obj_result.protocol_time == arr_result.protocol_time
    assert obj_result.total_messages == arr_result.total_messages


# ----------------------------------------------------------------------
# byte-identity under faults (chaos scenario through the replay differ)
# ----------------------------------------------------------------------
def _chaos_trace(spec: ScenarioSpec) -> tuple:
    tracer = Tracer()
    result = run_scenario(spec, tracer=tracer)
    return result, tracer


@pytest.mark.parametrize(
    "spec_kwargs",
    [
        {"crash_fraction": 0.05, "churn_events": 2, "signalling": "explicit"},
        {"crash_fraction": 0.1, "churn_events": 0, "signalling": "implicit"},
    ],
)
def test_engines_byte_identical_under_faults(spec_kwargs):
    obj_result, obj_tracer = _chaos_trace(ScenarioSpec(engine="object", **spec_kwargs))
    arr_result, arr_tracer = _chaos_trace(ScenarioSpec(engine="array", **spec_kwargs))
    divergence = diff_traces(obj_tracer.events(), arr_tracer.events())
    assert divergence is None, str(divergence)
    assert obj_result.clustering.assignment == arr_result.clustering.assignment
    assert obj_result.clustering.parent == arr_result.clustering.parent
    assert obj_result.stats.snapshot() == arr_result.stats.snapshot()


def test_array_engine_replay_deterministic():
    report = replay_check(
        ScenarioSpec(engine="array", crash_fraction=0.05, churn_events=2)
    )
    assert report.identical, str(report)
    assert report.events > 0


# ----------------------------------------------------------------------
# cohort batching must not change stats or delivery to crashed nodes
# ----------------------------------------------------------------------
def test_batched_broadcast_matches_reference_stats(small_grid):
    class Recorder:
        def __init__(self):
            self.seen = []

        def handle_message(self, message):
            self.seen.append((message.kind, message.src, message.dst, message.values))

    nets = {}
    for engine in ("object", "array"):
        network = Network(small_grid.graph.copy(), engine=engine)
        recorder = Recorder()
        for node in network.graph.nodes:
            network.register(node, recorder)
        for node in sorted(network.graph.nodes):
            network.broadcast_values(node, "feature", payload=None, values=3)
        network.run()
        nets[engine] = (network, recorder)

    obj_net, obj_rec = nets["object"]
    arr_net, arr_rec = nets["array"]
    assert obj_rec.seen == arr_rec.seen
    assert obj_net.stats.snapshot() == arr_net.stats.snapshot()


# ----------------------------------------------------------------------
# vectorised round processor vs per-message handlers (DESIGN.md §8.2)
# ----------------------------------------------------------------------
def _vec_summary(result):
    return (
        result.clustering.assignment,
        result.clustering.parent,
        result.stats.snapshot(),
        result.completion_time,
        result.protocol_time,
        result.total_switches,
        result.repaired_components,
    )


def _vec_run(topology, engine, signalling, vectorized):
    network = Network(topology.graph.copy(), engine=engine)
    return run_elink(
        Topology(network.graph, dict(topology.positions)),
        _features(topology),
        EuclideanMetric(),
        ELinkConfig(delta=0.6, signalling=signalling, vectorized=vectorized),
        network=network,
    )


def _spy_vectorizer(monkeypatch):
    """Wrap try_run_vectorized to record whether it engaged."""
    engaged = []
    real = elink_vec.try_run_vectorized

    def spy(*args, **kwargs):
        out = real(*args, **kwargs)
        engaged.append(out is not None)
        return out

    monkeypatch.setattr(elink_vec, "try_run_vectorized", spy)
    return engaged


@pytest.mark.parametrize("topology_kind", ["grid", "geometric"])
@pytest.mark.parametrize("signalling", ["implicit", "explicit"])
@pytest.mark.parametrize("engine", ["object", "array"])
def test_vectorized_rounds_identical_to_handlers(
    topology_kind, signalling, engine, monkeypatch
):
    engaged = _spy_vectorizer(monkeypatch)
    topology = _topology(topology_kind)
    handler = _vec_run(topology, engine, signalling, vectorized=False)
    batched = _vec_run(topology, engine, signalling, vectorized=True)
    assert engaged == [True]  # the batch path really ran, not a fallback
    assert _vec_summary(handler) == _vec_summary(batched)


def test_chaos_falls_back_to_handler_path_identically(monkeypatch):
    """With a fault injector armed, ``vectorized=True`` must decline —
    without ever reaching the batch path — and match the handler run."""
    engaged = _spy_vectorizer(monkeypatch)
    summaries = []
    for vectorized in (False, True):
        spec = ScenarioSpec(crash_fraction=0.05, engine="array")
        topology, features, metric, config, quadtree, network, injector = (
            build_scenario(spec)
        )
        config = dataclasses.replace(config, vectorized=vectorized)
        result = run_elink(
            topology, features, metric, config,
            quadtree=quadtree, network=network, injector=injector,
        )
        summaries.append(_vec_summary(result))
    assert summaries[0] == summaries[1]
    assert engaged == []  # injector-armed runs never call the vectorizer


def test_traced_runs_stay_on_handler_path(monkeypatch):
    """A tracer forces the per-message handlers (so traced streams stay
    byte-identical across engines); the batch path must decline."""
    engaged = _spy_vectorizer(monkeypatch)
    topology = _topology("grid")
    tracer = Tracer()
    network = Network(topology.graph.copy(), engine="array")
    run_elink(
        Topology(network.graph, dict(topology.positions)),
        _features(topology),
        EuclideanMetric(),
        ELinkConfig(delta=0.6, vectorized=True),
        network=network,
        tracer=tracer,
    )
    assert engaged == [False]
    assert sum(1 for _ in tracer.events()) > 0


def test_cohort_recheck_of_crashed_recipients(small_grid):
    """A handler crashing a later cohort member must suppress its delivery."""

    class Crasher:
        def __init__(self, network, victim):
            self.network = network
            self.victim = victim
            self.delivered = []

        def handle_message(self, message):
            self.delivered.append(message.dst)
            if message.dst != self.victim and self.network.is_alive(self.victim):
                self.network.remove_node(self.victim)

    results = {}
    for engine in ("object", "array"):
        network = Network(small_grid.graph.copy(), engine=engine)
        neighbours = list(network.neighbors(0))
        victim = neighbours[-1]
        handler = Crasher(network, victim)
        for node in network.graph.nodes:
            network.register(node, handler)
        network.broadcast_values(0, "feature")
        network.run()
        results[engine] = (tuple(handler.delivered), network.stats.snapshot())
    assert results["object"] == results["array"]
    assert results["object"][0]  # someone was delivered before the crash

"""Tests for path queries: clustered safe-tree search vs BFS flooding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import grid_topology, random_geometric_topology
from repro.index import build_mtree
from repro.queries import PathQueryEngine, bfs_flood_path


def _terrain_instance(side=8, seed=0):
    """A grid with a smooth 1-d 'exposure' field rising left to right."""
    topology = grid_topology(side, side)
    rng = np.random.default_rng(seed)
    features = {
        v: np.array([topology.positions[v][0] + rng.normal(0, 0.1)])
        for v in topology.graph.nodes
    }
    return topology, features


def _engine(topology, features, delta=2.0):
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    mtree = build_mtree(clustering, features, metric)
    return PathQueryEngine(topology.graph, clustering, features, metric, mtree), metric


def test_path_found_when_safe_corridor_exists():
    topology, features = _terrain_instance()
    engine, metric = _engine(topology, features)
    danger = np.array([10.0])  # danger at the right edge
    # Source and destination on the safe (left) side.
    source, destination = 0, 56  # both column 0
    result = engine.query(source, destination, danger, gamma=5.0)
    assert result.path is not None
    assert result.path[0] == source and result.path[-1] == destination
    for node in result.path:
        assert metric.distance(features[node], danger) >= 5.0


def test_path_edges_are_graph_edges():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    result = engine.query(0, 56, np.array([10.0]), gamma=4.0)
    assert result.path is not None
    for a, b in zip(result.path, result.path[1:]):
        assert topology.graph.has_edge(a, b)


def test_no_path_when_destination_unsafe():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    # Destination at the right edge is within gamma of the danger.
    result = engine.query(0, 7, np.array([10.0]), gamma=5.0)
    assert result.path is None


def test_no_path_when_source_unsafe():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    result = engine.query(7, 0, np.array([10.0]), gamma=5.0)
    assert result.path is None


def test_gamma_zero_everything_safe():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    result = engine.query(0, 63, np.array([100.0]), gamma=0.0)
    assert result.path is not None
    assert result.safe_nodes == topology.num_nodes


def test_negative_gamma_rejected():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    with pytest.raises(ValueError):
        engine.query(0, 1, np.array([10.0]), gamma=-1.0)


def test_flood_baseline_agrees_and_finds_safe_paths():
    topology, features = _terrain_instance()
    metric = EuclideanMetric()
    danger = np.array([10.0])
    result = bfs_flood_path(topology.graph, features, metric, 0, 56, danger, 5.0)
    assert result.path is not None
    for node in result.path:
        assert metric.distance(features[node], danger) >= 5.0


def test_flood_unsafe_source_returns_none_free():
    topology, features = _terrain_instance()
    result = bfs_flood_path(
        topology.graph, features, EuclideanMetric(), 7, 0, np.array([10.0]), 5.0
    )
    assert result.path is None
    assert result.messages == 0


@given(
    seed=st.integers(min_value=0, max_value=25),
    gamma=st.floats(min_value=0.0, max_value=8.0),
)
@settings(max_examples=20, deadline=None)
def test_feasibility_agreement_property(seed, gamma):
    topology = random_geometric_topology(40, seed=seed)
    rng = np.random.default_rng(seed + 5)
    features = {v: np.array([rng.uniform(0, 10)]) for v in topology.graph.nodes}
    engine, metric = _engine(topology, features, delta=3.0)
    danger = np.array([10.0])
    nodes = list(topology.graph.nodes)
    source = nodes[int(rng.integers(len(nodes)))]
    destination = nodes[int(rng.integers(len(nodes)))]
    ours = engine.query(source, destination, danger, gamma)
    flood = bfs_flood_path(topology.graph, features, metric, source, destination, danger, gamma)
    assert (ours.path is None) == (flood.path is None)
    if ours.path is not None:
        for node in ours.path:
            assert metric.distance(features[node], danger) >= gamma - 1e-9


def test_same_source_destination():
    topology, features = _terrain_instance()
    engine, _ = _engine(topology, features)
    result = engine.query(0, 0, np.array([10.0]), gamma=3.0)
    assert result.path == [0]


# ----------------------------------------------------------------------
# maximin (safest) path extension
# ----------------------------------------------------------------------
def test_maximin_path_maximizes_bottleneck():
    from repro.queries import maximin_safe_path

    topology, features = _terrain_instance()
    metric = EuclideanMetric()
    danger = np.array([10.0])
    result = maximin_safe_path(
        topology.graph, features, metric, 0, 56, danger
    )
    assert result.path is not None
    bottleneck = min(metric.distance(features[v], danger) for v in result.path)
    # The optimum: binary-search over thresholds with plain reachability.
    import networkx as nx

    safeties = sorted({metric.distance(features[v], danger) for v in topology.graph.nodes})
    best = None
    for threshold in safeties:
        safe_nodes = [
            v for v in topology.graph.nodes
            if metric.distance(features[v], danger) >= threshold
        ]
        sub = topology.graph.subgraph(safe_nodes)
        if 0 in sub and 56 in sub and nx.has_path(sub, 0, 56):
            best = threshold
    assert bottleneck == pytest.approx(best)


def test_maximin_path_endpoints_and_edges():
    from repro.queries import maximin_safe_path

    topology, features = _terrain_instance()
    result = maximin_safe_path(
        topology.graph, features, EuclideanMetric(), 3, 60, np.array([10.0])
    )
    assert result.path is not None
    assert result.path[0] == 3 and result.path[-1] == 60
    for a, b in zip(result.path, result.path[1:]):
        assert topology.graph.has_edge(a, b)


def test_maximin_path_same_node():
    from repro.queries import maximin_safe_path

    topology, features = _terrain_instance()
    result = maximin_safe_path(
        topology.graph, features, EuclideanMetric(), 5, 5, np.array([10.0])
    )
    assert result.path == [5]


def test_maximin_unreachable_destination():
    from repro.queries import maximin_safe_path
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from([0, 1])
    features = {0: np.array([0.0]), 1: np.array([1.0])}
    result = maximin_safe_path(graph, features, EuclideanMetric(), 0, 1, np.array([9.0]))
    assert result.path is None


# ----------------------------------------------------------------------
# degraded operation: dead representatives, partial coverage
# ----------------------------------------------------------------------
def test_fault_free_path_query_full_coverage():
    topology, features = _terrain_instance()
    engine, metric = _engine(topology, features)
    result = engine.query(0, 56, np.array([10.0]), gamma=5.0)
    assert result.coverage == 1.0


def test_dead_representative_partial_coverage():
    topology, features = _terrain_instance()
    metric = EuclideanMetric()
    clustering = run_elink(
        topology, features, metric, ELinkConfig(delta=2.0)
    ).clustering
    mtree = build_mtree(clustering, features, metric)
    dead = next(r for r in clustering.roots if len(clustering.members(r)) >= 2)
    engine = PathQueryEngine(
        topology.graph, clustering, features, metric, mtree, dead={dead}
    )
    # gamma=0: every classified node is safe; the dead root's cluster is
    # unclassifiable and counted uncovered.
    result = engine.query(0, 56, np.array([10.0]), gamma=0.0)
    lost = len(clustering.members(dead)) - 1  # the dead node itself aside
    alive = len(topology.graph.nodes) - 1
    assert result.coverage == pytest.approx(1.0 - lost / alive)
    if result.path is not None:
        assert dead not in result.path
        assert not set(result.path) & set(clustering.members(dead))


def test_path_drop_accounting_agrees_between_stats_and_metrics():
    """Dead-root classification drops are mirrored into the registry and
    totalled in ``PathQueryResult.drops`` (see the range-query twin)."""
    from repro.geometry.topology import grid_topology
    from repro.obs import MetricsRegistry

    topology = grid_topology(4, 4)
    # identical features: one cluster per component, so dead roots still
    # leave live endpoints for the query to classify around
    features = {n: np.zeros(1) for n in topology.graph.nodes}
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=1.5)).clustering
    mtree = build_mtree(clustering, features, metric)
    metrics = MetricsRegistry()
    dead = set(clustering.roots)
    alive = [n for n in topology.graph.nodes if n not in dead]
    engine = PathQueryEngine(
        topology.graph, clustering, features, metric, mtree, dead=dead, metrics=metrics
    )
    out = engine.query(alive[0], alive[-1], np.zeros(1), 1e6)
    assert out.drops > 0
    assert out.coverage == 0.0  # every root dead: nothing classifiable
    mirrored = sum(
        metrics.counter(name).value
        for name in metrics.names()
        if name.startswith("queries.drops.")
    )
    assert mirrored == out.drops

"""Tests for fault injection, structured delivery failures, and the
self-healing ELink repair layer."""

import networkx as nx
import numpy as np
import pytest

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.core.elink import ELinkNode, compute_kappa
from repro.features.metrics import EuclideanMetric
from repro.geometry import grid_topology
from repro.sim import (
    EventKernel,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    Message,
    Network,
    ProtocolNode,
)


class Recorder(ProtocolNode):
    """Collects every delivered message with its arrival time."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network, np.zeros(1))
        self.received = []

    def handle_message(self, message):
        self.received.append((message, self.now))


def _line_network(n=4):
    graph = nx.path_graph(n)
    network = Network(graph, EventKernel())
    nodes = {i: Recorder(i, network) for i in range(n)}
    return network, nodes


# ----------------------------------------------------------------------
# FaultPlan: declarative schedules
# ----------------------------------------------------------------------
def test_plan_builders_chain_and_sort():
    plan = FaultPlan().crash(5.0, 1).link_down(2.0, 0, 1).crash(2.0, 3)
    assert not plan.empty
    times = [event.time for event in plan.sorted_events()]
    assert times == [2.0, 2.0, 5.0]
    # Ties keep insertion order.
    assert plan.sorted_events()[0].action == "link_down"


def test_fault_event_validation():
    with pytest.raises(ValueError, match="action"):
        FaultEvent(1.0, "meteor", 3)
    with pytest.raises(ValueError, match="time"):
        FaultEvent(-1.0, "crash", 3)


def test_random_plan_is_deterministic():
    nodes = list(range(50))
    edges = [(i, i + 1) for i in range(49)]
    kwargs = dict(
        seed=11,
        crash_fraction=0.2,
        crash_window=(1.0, 9.0),
        churn_edges=edges,
        churn_events=5,
    )
    a = FaultPlan.random(nodes, **kwargs)
    b = FaultPlan.random(nodes, **kwargs)
    assert a.events == b.events
    c = FaultPlan.random(nodes, **dict(kwargs, seed=12))
    assert a.events != c.events


def test_random_plan_respects_protected_and_bounds():
    nodes = list(range(20))
    plan = FaultPlan.random(
        nodes, seed=0, crash_fraction=0.5, crash_window=(2.0, 3.0), protected=(0, 1)
    )
    crashed = [event.target for event in plan.events]
    assert 0 not in crashed and 1 not in crashed
    assert len(crashed) == 9  # 50% of the 18 eligible
    assert all(2.0 <= event.time <= 3.0 for event in plan.events)
    with pytest.raises(ValueError, match="crash_fraction"):
        FaultPlan.random(nodes, seed=0, crash_fraction=1.5)


# ----------------------------------------------------------------------
# FaultInjector: executing plans on the kernel
# ----------------------------------------------------------------------
def test_empty_plan_arms_nothing():
    network, _ = _line_network()
    injector = FaultInjector(network, FaultPlan())
    assert injector.arm() == 0
    assert network.run() == 0.0
    assert not network.dead_nodes


def test_arming_twice_raises():
    network, _ = _line_network()
    injector = FaultInjector(network, FaultPlan())
    injector.arm()
    with pytest.raises(RuntimeError, match="twice"):
        injector.arm()


def test_crash_drops_inflight_and_later_sends():
    network, nodes = _line_network()
    injector = FaultInjector(network, FaultPlan().crash(0.5, 1))
    injector.arm()
    network.send(Message("feature", 0, 1))  # in flight when 1 dies at 0.5
    network.run()
    assert nodes[1].received == []
    assert network.stats.drops_by_reason["dead_destination"] == 1
    assert not network.is_alive(1)
    assert 1 not in network.graph
    # Subsequent traffic to/from the dead node fails structurally.
    assert network.send(Message("feature", 0, 1)) is False
    assert network.route(Message("feature", 2, 0)) == -1  # line is severed
    assert network.stats.drops_by_reason["no_route"] == 1


def test_crash_cancels_owned_timers():
    network, _ = _line_network()
    fired = []
    network.schedule_owned(1, 2.0, fired.append, "victim")
    network.schedule_owned(0, 2.0, fired.append, "survivor")
    FaultInjector(network, FaultPlan().crash(1.0, 1)).arm()
    network.run()
    assert fired == ["survivor"]


def test_recovery_restores_links_to_live_neighbours():
    network, nodes = _line_network(4)
    plan = FaultPlan().crash(1.0, 1).crash(1.0, 2).recover(5.0, 1)
    FaultInjector(network, plan).arm()
    network.run()
    assert network.is_alive(1)
    # 1's link to live 0 is back; the link to still-dead 2 is not.
    assert network.graph.has_edge(0, 1)
    assert not network.graph.has_edge(1, 2)
    assert network.send(Message("feature", 0, 1)) is True
    network.run()
    assert len(nodes[1].received) == 1


def test_link_churn_down_then_up():
    network, nodes = _line_network(3)
    plan = FaultPlan().link_down(1.0, 0, 1).link_up(3.0, 0, 1)
    FaultInjector(network, plan).arm()
    network.run(until=2.0)
    assert network.send(Message("feature", 0, 1)) is False
    assert network.stats.drops_by_reason["link_down"] == 1
    network.run()
    assert network.graph.has_edge(0, 1)
    assert network.send(Message("feature", 0, 1)) is True


def test_partition_cuts_boundary_edges():
    topology = grid_topology(3, 3)
    network = Network(topology.graph.copy(), EventKernel())
    region = {0, 1, 2}  # top row of the 3x3 grid
    FaultInjector(network, FaultPlan().partition(1.0, region)).arm()
    network.run()
    for u, v in topology.graph.edges:
        crosses = (u in region) != (v in region)
        assert network.graph.has_edge(u, v) == (not crosses)


def test_repair_latency_keeps_first_note_per_node():
    network, _ = _line_network()
    injector = FaultInjector(network, FaultPlan().crash(1.0, 1))
    injector.arm()
    network.run()
    network.kernel.schedule(2.0, lambda: injector.note_repair("orphan_root", 1, 0))
    network.kernel.schedule(4.0, lambda: injector.note_repair("prune_child", 1, 2))
    network.run()
    assert injector.repair_latencies() == [pytest.approx(2.0)]
    assert len(injector.repairs) == 2


# ----------------------------------------------------------------------
# Network mutators and the path cache (satellite: invalidate_paths footgun)
# ----------------------------------------------------------------------
def test_remove_edge_invalidates_path_cache():
    graph = nx.Graph([(0, 1), (1, 2), (0, 2)])
    network = Network(graph, EventKernel())
    nodes = {i: Recorder(i, network) for i in range(3)}
    assert network.route(Message("feature", 0, 2)) == 1  # warms the cache
    assert network.remove_edge(0, 2)
    assert network.route(Message("feature", 0, 2)) == 2  # rerouted, not cached
    network.run()


def test_restore_edge_semantics():
    graph = nx.Graph([(0, 1), (1, 2)])
    network = Network(graph, EventKernel())
    assert network.restore_edge(0, 1) is False  # never severed
    assert network.remove_edge(0, 1) is True
    assert network.remove_edge(0, 1) is False  # already gone
    assert network.restore_edge(0, 1) is True
    assert network.graph.has_edge(0, 1)
    network.remove_edge(0, 1)
    network.remove_node(0)
    assert network.restore_edge(0, 1) is False  # dead endpoint


def test_remove_node_is_idempotent_and_reports_neighbours():
    network, _ = _line_network(3)
    assert set(network.remove_node(1)) == {0, 2}
    assert network.remove_node(1) == ()
    assert network.dead_nodes == {1}


def test_unmutated_network_still_raises_on_programming_errors():
    network, _ = _line_network(4)
    with pytest.raises(ValueError, match="adjacency"):
        network.send(Message("feature", 0, 3))


# ----------------------------------------------------------------------
# Self-healing ELink
# ----------------------------------------------------------------------
def _grid_setup(side):
    topology = grid_topology(side, side)
    features = {
        v: np.array([(topology.positions[v][0] + topology.positions[v][1]) / 10.0])
        for v in topology.graph.nodes
    }
    return topology, features, EuclideanMetric()


def _chaos_run(side, mode, crash_fraction, seed):
    from repro.geometry import Topology

    topology, features, metric = _grid_setup(side)
    config = ELinkConfig(delta=1.0, signalling=mode, failure_detection=True)
    kappa = compute_kappa(topology.num_nodes, config.gamma)
    graph = topology.graph.copy()
    trial = Topology(graph, dict(topology.positions))
    network = Network(graph, EventKernel())
    plan = FaultPlan.random(
        sorted(graph.nodes),
        seed=seed,
        crash_fraction=crash_fraction,
        crash_window=(0.05 * kappa, 0.75 * kappa),
    )
    injector = FaultInjector(network, plan)
    result = run_elink(
        trial, features, metric, config, network=network, injector=injector
    )
    return network, result, features, metric, injector


def test_chaos_explicit_5pct_crash_20x20():
    """Acceptance: 5% crashes on a 20x20 grid — the protocol terminates,
    every survivor sits in exactly one valid δ-cluster, and the repair
    overhead is reported separately."""
    network, result, features, metric, injector = _chaos_run(20, "explicit", 0.05, 3)
    assert len(injector.crashed) == 20
    survivors = set(network.graph.nodes)
    assigned = set(result.clustering.assignment)
    assert assigned == survivors  # everyone surviving, exactly once, no dead
    violations = validate_clustering(
        network.graph, result.clustering, features, metric, 1.0
    )
    assert violations == []
    assert result.repair_messages > 0
    assert result.total_messages >= result.repair_messages
    assert result.stats.total_drops > 0


def test_chaos_implicit_mode_self_heals():
    network, result, features, metric, _ = _chaos_run(10, "implicit", 0.05, 3)
    assert set(result.clustering.assignment) == set(network.graph.nodes)
    assert not validate_clustering(
        network.graph, result.clustering, features, metric, 1.0
    )


def test_zero_fault_run_identical_with_and_without_injector():
    """Empty plan + detection off must be byte-identical to no injector."""
    topology, features, metric = _grid_setup(6)
    results = []
    for use_injector in (False, True):
        network = Network(topology.graph.copy(), EventKernel())
        injector = FaultInjector(network, FaultPlan()) if use_injector else None
        results.append(
            run_elink(
                topology,
                features,
                metric,
                ELinkConfig(delta=1.0, signalling="explicit"),
                network=network,
                injector=injector,
            )
        )
    base, with_injector = results
    assert base.clustering.assignment == with_injector.clustering.assignment
    assert base.stats.total_values == with_injector.stats.total_values
    assert base.completion_time == with_injector.completion_time
    assert with_injector.repair_messages == 0


def test_injector_network_mismatch_rejected():
    topology, features, metric = _grid_setup(3)
    network = Network(topology.graph.copy(), EventKernel())
    other = Network(topology.graph.copy(), EventKernel())
    injector = FaultInjector(other, FaultPlan())
    with pytest.raises(ValueError, match="bound to the network"):
        run_elink(
            topology,
            features,
            metric,
            ELinkConfig(delta=1.0),
            network=network,
            injector=injector,
        )


def test_explicit_stall_regression_silent_child(monkeypatch):
    """A live-but-silent child (joins, then never acks completion) must not
    stall the explicit protocol: bounded escalation force-completes."""
    topology, features, metric = _grid_setup(6)
    victim = 7  # interior node, guaranteed to join as somebody's child
    original = ELinkNode.send

    def lossy_send(self, dst, kind, payload=None, *, values=1):
        if self.node_id == victim and kind == "ack2":
            return True  # the ack vanishes; the parent waits forever
        return original(self, dst, kind, payload, values=values)

    monkeypatch.setattr(ELinkNode, "send", lossy_send)
    network = Network(topology.graph.copy(), EventKernel())
    result = run_elink(
        topology,
        features,
        metric,
        ELinkConfig(delta=1.0, signalling="explicit", failure_detection=True),
        network=network,
    )
    assert set(result.clustering.assignment) == set(topology.graph.nodes)
    assert not validate_clustering(
        topology.graph, result.clustering, features, metric, 1.0
    )

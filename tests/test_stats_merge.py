"""Property-based tests: MessageStats exact-merge semantics.

The sharded engine accounts message costs in per-shard ``MessageStats``
partials and folds them into the coordinator's accumulator with
:meth:`~repro.sim.stats.MessageStats.merge`.  These tests prove the
contract that makes that exact: for ANY interleaving of charge /
charge_batch / drop operations, partitioning the ops across K shards
(in any way), replaying each shard's slice locally and merging the
partials (in any order) reproduces the serial totals bit-for-bit.
``derandomize=True`` keeps the corpus fixed so CI runs are reproducible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import MessageStats
from repro.verify import check_stats_conservation

KINDS = ("join", "newcluster", "ack1", "ack2", "probe", "update", "query")
CATEGORIES = ("clustering", "repair", "query", "maintenance")
REASONS = ("dead_destination", "dead_relay", "link_down", "no_route")

#: One accounting operation, as the network layers issue them.  reset()
#: is deliberately excluded: a shard never resets mid-run, and a reset
#: in one shard could not be linearized against the others' history.
_operations = st.one_of(
    st.tuples(
        st.just("charge"),
        st.sampled_from(KINDS),
        st.sampled_from(CATEGORIES),
        st.integers(min_value=1, max_value=8),   # values
        st.integers(min_value=1, max_value=12),  # hops
    ),
    st.tuples(
        st.just("charge_batch"),
        st.sampled_from(KINDS),
        st.sampled_from(CATEGORIES),
        st.integers(min_value=1, max_value=8),   # values
        st.integers(min_value=1, max_value=12),  # count
    ),
    st.tuples(st.just("drop"), st.sampled_from(KINDS), st.sampled_from(REASONS)),
)


def _apply(stats: MessageStats, operation) -> None:
    if operation[0] == "charge":
        _, kind, category, values, hops = operation
        stats.charge(kind, category, values, hops=hops)
    elif operation[0] == "charge_batch":
        _, kind, category, values, count = operation
        stats.charge_batch(kind, category, values, count)
    else:
        _, kind, reason = operation
        stats.drop(kind, reason)


def _equal(a: MessageStats, b: MessageStats) -> None:
    assert a.snapshot() == b.snapshot()
    assert a.total_packets == b.total_packets
    assert a.total_values == b.total_values
    assert a.total_drops == b.total_drops


@settings(derandomize=True, deadline=None, max_examples=80)
@given(
    st.lists(_operations, max_size=50),
    st.integers(min_value=1, max_value=5),       # shard count K
    st.randoms(use_true_random=False),
)
def test_sharded_partials_merge_to_serial_totals(operations, shards, rng):
    """Any shard assignment of any op sequence merges back exactly."""
    serial = MessageStats()
    partials = [MessageStats() for _ in range(shards)]
    assignment = [rng.randrange(shards) for _ in operations]
    for operation, shard in zip(operations, assignment):
        _apply(serial, operation)
        _apply(partials[shard], operation)
    merged = MessageStats()
    rng.shuffle(partials)  # merge order must not matter
    for partial in partials:
        merged.merge(partial)
    _equal(merged, serial)
    assert check_stats_conservation(merged) == []


@settings(derandomize=True, deadline=None, max_examples=60)
@given(st.lists(_operations, max_size=40), st.lists(_operations, max_size=40))
def test_merge_equals_replaying_both_histories(ops_a, ops_b):
    """merge(b) on a is exactly a ⊕ b — same counters as one accumulator
    that saw both histories, regardless of interleaving (Counter addition
    is commutative integer arithmetic)."""
    a = MessageStats()
    b = MessageStats()
    both = MessageStats()
    for operation in ops_a:
        _apply(a, operation)
        _apply(both, operation)
    for operation in ops_b:
        _apply(b, operation)
        _apply(both, operation)
    b_before = b.snapshot()
    a.merge(b)
    _equal(a, both)
    # merging must not disturb the source partial
    _equal(b, b_before)
    assert check_stats_conservation(a) == []


@settings(derandomize=True, deadline=None, max_examples=40)
@given(st.lists(_operations, max_size=30))
def test_merge_of_empty_is_identity(operations):
    stats = MessageStats()
    for operation in operations:
        _apply(stats, operation)
    before = stats.snapshot()
    stats.merge(MessageStats())
    _equal(stats, before)
    empty = MessageStats()
    empty.merge(stats)
    _equal(empty, stats)


def test_merge_preserves_o1_totals_against_rederived_sums():
    stats = MessageStats()
    stats.charge("join", "clustering", 4, hops=3)
    other = MessageStats()
    other.charge_batch("probe", "repair", 2, 5)
    other.drop("query", "dead_relay")
    stats.merge(other)
    assert stats.total_packets == sum(stats.packets_by_kind.values()) == 8
    assert stats.total_values == sum(stats.values_by_kind.values()) == 22
    assert stats.total_drops == 1
    assert check_stats_conservation(stats) == []

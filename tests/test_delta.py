"""Tests for δ-cluster definitions, validation and clustering assembly."""

import networkx as nx
import numpy as np
import pytest

from repro.core import Clustering, clustering_from_assignment, validate_clustering
from repro.core.delta import check_delta_compact
from repro.features import EuclideanMetric


def _line_features(n, step=1.0):
    return {i: np.array([i * step]) for i in range(n)}


def _valid_line_clustering():
    """Path 0-1-2-3-4-5 split into {0,1,2} and {3,4,5}."""
    graph = nx.path_graph(6)
    features = _line_features(6)
    assignment = {0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 5: 3}
    return graph, features, clustering_from_assignment(graph, assignment, features)


def test_clustering_accessors():
    graph, features, clustering = _valid_line_clustering()
    assert clustering.num_clusters == 2
    assert set(clustering.roots) == {0, 3}
    assert sorted(clustering.members(0)) == [0, 1, 2]
    assert clustering.root_of(4) == 3
    assert clustering.cluster_sizes() == [3, 3]


def test_path_to_root_follows_tree():
    graph, features, clustering = _valid_line_clustering()
    assert clustering.path_to_root(2) == [2, 1, 0]
    assert clustering.path_to_root(0) == [0]


def test_path_to_root_detects_cycle():
    clustering = Clustering(
        assignment={0: 0, 1: 0},
        parent={0: 1, 1: 0},
        root_features={0: np.zeros(1)},
    )
    with pytest.raises(ValueError, match="cycle"):
        clustering.path_to_root(1)


def test_tree_children():
    graph, features, clustering = _valid_line_clustering()
    children = clustering.tree_children()
    assert children[0] == [1]
    assert children[1] == [2]
    assert children[2] == []


def test_check_delta_compact_finds_violating_pair():
    features = _line_features(4)
    metric = EuclideanMetric()
    assert check_delta_compact([0, 1], features, metric, 1.5) == []
    violations = check_delta_compact([0, 3], features, metric, 1.5)
    assert violations == [(0, 3, 3.0)]


def test_check_delta_compact_reports_all_pairs_capped():
    # 0..3 on a line, delta=0.5: every pair further than 0.5 apart violates.
    features = _line_features(4)
    metric = EuclideanMetric()
    violations = check_delta_compact([0, 1, 2, 3], features, metric, 0.5)
    pairs = {(a, b) for a, b, _ in violations}
    assert pairs == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}
    for a, b, distance in violations:
        assert distance == pytest.approx(abs(a - b))
    # The cap bounds the report; limit=1 is the early-exit predicate form.
    assert len(check_delta_compact([0, 1, 2, 3], features, metric, 0.5, limit=2)) == 2
    assert len(check_delta_compact([0, 1, 2, 3], features, metric, 0.5, limit=1)) == 1


def test_validate_clustering_passes_on_valid():
    graph, features, clustering = _valid_line_clustering()
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 2.0)
    assert violations == []


def test_validate_detects_compactness_violation():
    graph, features, clustering = _valid_line_clustering()
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 1.0)
    kinds = {v.kind for v in violations}
    assert "compactness" in kinds


def test_validate_detects_missing_assignment():
    graph = nx.path_graph(3)
    features = _line_features(3)
    clustering = Clustering(
        assignment={0: 0, 1: 0},  # node 2 missing
        parent={0: 0, 1: 0},
        root_features={0: features[0]},
    )
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 10.0)
    assert any(v.kind == "coverage" for v in violations)


def test_validate_detects_disconnected_cluster():
    graph = nx.path_graph(5)
    features = _line_features(5, step=0.1)
    clustering = Clustering(
        assignment={0: 0, 1: 0, 2: 2, 3: 0, 4: 0},  # {0,1,3,4} disconnected
        parent={0: 0, 1: 0, 2: 2, 3: 4, 4: 3},
        root_features={0: features[0], 2: features[2]},
    )
    violations = validate_clustering(
        graph, clustering, features, EuclideanMetric(), 10.0, check_trees=False
    )
    assert any(v.kind == "connectivity" for v in violations)


def test_validate_detects_bad_tree_edge():
    graph = nx.path_graph(4)
    features = _line_features(4, step=0.1)
    clustering = Clustering(
        assignment={0: 0, 1: 0, 2: 0, 3: 0},
        parent={0: 0, 1: 0, 2: 0, 3: 0},  # 2->0 and 3->0 are not graph edges
        root_features={0: features[0]},
    )
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 10.0)
    assert any(v.kind == "tree" for v in violations)


def test_clustering_from_assignment_builds_bfs_trees():
    graph = nx.cycle_graph(6)
    features = _line_features(6, step=0.1)
    assignment = {v: 0 for v in graph.nodes}
    clustering = clustering_from_assignment(graph, assignment, features)
    assert clustering.num_clusters == 1
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 10.0)
    assert violations == []


def test_clustering_from_assignment_splits_disconnected_members():
    graph = nx.path_graph(5)
    features = _line_features(5, step=0.1)
    # Node 2 belongs elsewhere, so cluster 0's members {0,1,3,4} split.
    assignment = {0: 0, 1: 0, 2: 2, 3: 0, 4: 0}
    clustering = clustering_from_assignment(graph, assignment, features)
    assert clustering.num_clusters == 3
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 10.0)
    assert violations == []


def test_split_component_keeps_original_pruning_feature():
    graph = nx.path_graph(5)
    features = _line_features(5, step=0.1)
    assignment = {0: 0, 1: 0, 2: 2, 3: 0, 4: 0}
    root_features = {0: np.array([42.0]), 2: features[2]}
    clustering = clustering_from_assignment(
        graph, assignment, features, root_features=root_features
    )
    # The stray {3,4} component keeps cluster 0's pruning feature.
    stray_roots = [r for r in clustering.roots if r in (3, 4)]
    assert len(stray_roots) == 1
    assert clustering.root_features[stray_roots[0]].tolist() == [42.0]


def test_clustering_from_assignment_honors_valid_parents():
    graph = nx.cycle_graph(4)
    features = _line_features(4, step=0.1)
    assignment = {v: 0 for v in graph.nodes}
    parents = {0: 0, 1: 0, 2: 1, 3: 2}  # a path tree around the cycle
    clustering = clustering_from_assignment(
        graph, assignment, features, parents=parents
    )
    assert clustering.parent == parents


def test_clustering_from_assignment_falls_back_on_broken_parents():
    graph = nx.cycle_graph(4)
    features = _line_features(4, step=0.1)
    assignment = {v: 0 for v in graph.nodes}
    parents = {0: 0, 1: 0, 2: 0, 3: 1}  # 2->0 is not an edge in the cycle
    clustering = clustering_from_assignment(
        graph, assignment, features, parents=parents
    )
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 10.0)
    assert violations == []


def test_validate_reports_multiple_compactness_pairs():
    """A badly broken cluster reports every violating pair, not just one."""
    graph = nx.path_graph(4)
    features = _line_features(4)  # distances 1..3 on a line
    clustering = clustering_from_assignment(graph, {v: 0 for v in graph.nodes}, features)
    violations = validate_clustering(graph, clustering, features, EuclideanMetric(), 0.5)
    compact = [v for v in violations if v.kind == "compactness"]
    # delta=0.5 makes all 6 pairs violate; each is its own violation record.
    assert len(compact) == 6


def test_validate_flags_members_missing_from_graph():
    """Cluster members absent from the graph are an explicit violation.

    Regression test: ``graph.subgraph(nodes)`` silently drops unknown
    nodes, so a clustering mentioning ghosts used to validate as
    connected; connectivity is now checked on the intersection and the
    dropped members are reported.
    """
    graph = nx.path_graph(3)
    features = _line_features(3, step=0.1)
    features[99] = np.array([0.15])
    clustering = Clustering(
        assignment={0: 0, 1: 0, 2: 0, 99: 0},  # node 99 is not in the graph
        parent={0: 0, 1: 0, 2: 1, 99: 0},
        root_features={0: features[0]},
    )
    violations = validate_clustering(
        graph, clustering, features, EuclideanMetric(), 10.0, check_trees=False
    )
    ghost = [v for v in violations if v.kind == "connectivity" and "99" in v.detail]
    assert ghost, f"expected a ghost-member violation, got {violations}"


def test_validate_all_members_missing_does_not_crash():
    """A cluster made only of ghosts is a violation, not an exception."""
    graph = nx.path_graph(3)
    features = _line_features(3, step=0.1)
    features[7] = np.array([0.0])
    features[8] = np.array([0.05])
    clustering = Clustering(
        assignment={0: 0, 1: 0, 2: 0, 7: 7, 8: 7},
        parent={0: 0, 1: 0, 2: 1, 7: 7, 8: 7},
        root_features={0: features[0], 7: features[7]},
    )
    violations = validate_clustering(
        graph, clustering, features, EuclideanMetric(), 10.0, check_trees=False
    )
    assert any(v.kind == "connectivity" for v in violations)

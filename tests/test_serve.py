"""Unit tests for the serve layer: sources, broker backpressure policies,
atomic checkpoints, the supervisor's restart/budget envelope, the chaos
driver, the clustering pipeline's checkpoint round-trip, the query
service, and the snapshot equivalence differ."""

import asyncio
import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.serve import (
    Broker,
    ChaosDriver,
    CheckpointManager,
    ClusteringPipeline,
    NotReadyError,
    POLICY_BLOCK,
    POLICY_SHED_OLDEST,
    QueryService,
    Reading,
    ReplaySource,
    ReplaySpec,
    ReplayStream,
    ServeContext,
    StageCrash,
    Supervisor,
)
from repro.serve.readings import FileSource
from repro.sim.faults import FaultPlan
from repro.verify.serve_check import diff_snapshots


def _ctx():
    return ServeContext(tracer=Tracer(), metrics=MetricsRegistry())


def _stream(n=8, rounds=20, seed=3):
    return ReplayStream(ReplaySpec(n=n, rounds=rounds, seed=seed))


# ----------------------------------------------------------------------
# reading sources
# ----------------------------------------------------------------------
def test_replay_stream_is_deterministic():
    a, b = _stream(), _stream()
    assert (a.values == b.values).all()
    assert a.nodes == b.nodes
    assert a.reading(17) == b.reading(17)


def test_replay_shards_partition_the_stream():
    stream = _stream(n=8, rounds=3)
    sources = [ReplaySource(stream, shard=(i, 3)) for i in range(3)]

    async def drain(source):
        out = []
        while (r := await source.next_reading()) is not None:
            out.append(r.seq)
        return out

    seqs = sorted(sum((asyncio.run(drain(s)) for s in sources), []))
    assert seqs == list(range(stream.total_readings))
    assert all(s.exhausted and s.remaining == 0 for s in sources)


def test_replay_resume_after_skips_applied_prefix():
    stream = _stream(n=4, rounds=5)
    source = ReplaySource(stream)
    # pretend the first two full rounds were applied
    last_seq = {node: 4 + k for k, node in enumerate(stream.nodes)}
    source.resume_after(last_seq)

    async def first():
        return await source.next_reading()

    reading = asyncio.run(first())
    # floor is min(last_seq) = 4, so the resumed stream starts at seq 5;
    # residual overlap (seqs 5..7 already applied) is the pipeline's job.
    assert reading.seq == 5


def test_file_source_emits_malformed_lines_as_nan(tmp_path):
    path = tmp_path / "readings.jsonl"
    path.write_text(
        '{"node": 0, "value": 1.5}\nthis is not json\n{"node": 1, "value": 2.5}\n'
    )
    source = FileSource(str(path))

    async def drain():
        out = []
        while (r := await source.next_reading()) is not None:
            out.append(r)
        return out

    readings = asyncio.run(drain())
    assert [r.seq for r in readings] == [0, 1, 2]
    assert readings[1].node is None and readings[1].value != readings[1].value  # NaN
    source.resume_after({0: 0, 1: 2})
    assert source._cursor == 1  # past the smallest applied position


# ----------------------------------------------------------------------
# broker backpressure policies
# ----------------------------------------------------------------------
def test_shed_oldest_drops_head_and_coalesces_episode():
    ctx = _ctx()
    broker = Broker(ctx)
    sub = broker.subscribe("t", name="q", maxsize=2, policy=POLICY_SHED_OLDEST)

    async def scenario():
        for i in range(5):
            await broker.publish("t", i)
        survivors = [await sub.get(), await sub.get()]
        # waiting on the now-empty queue ends the shed episode
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(sub.get(), timeout=0.01)
        return survivors

    survivors = asyncio.run(scenario())
    assert survivors == [3, 4]  # oldest shed, newest kept
    assert sub.shed_total == 3
    events = [e for e in ctx.tracer.events() if e.type == "serve.shed_episode"]
    assert len(events) == 1 and events[0].data["count"] == 3


def test_block_policy_backpressures_publisher():
    ctx = _ctx()
    broker = Broker(ctx)
    sub = broker.subscribe("t", name="q", maxsize=2, policy=POLICY_BLOCK)

    async def scenario():
        published = []

        async def producer():
            for i in range(4):
                await broker.publish("t", i)
                published.append(i)

        task = asyncio.create_task(producer())
        await asyncio.sleep(0.02)
        stalled = list(published)  # producer must be parked at the bound
        got = [await sub.get() for _ in range(4)]
        await task
        return stalled, got

    stalled, got = asyncio.run(scenario())
    assert stalled == [0, 1]
    assert got == [0, 1, 2, 3]  # nothing lost under block policy
    assert sub.shed_total == 0
    assert any(e.type == "serve.backpressure" for e in ctx.tracer.events())


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_round_trip_and_pruning(tmp_path):
    manager = CheckpointManager(tmp_path, _ctx(), keep=2)
    for seq in (10, 20, 30):
        manager.write({"x": seq, "blob": list(range(seq))}, seq=seq)
    files = sorted(p.name for p in tmp_path.glob("ckpt-*.bin"))
    assert len(files) == 2  # pruned to keep
    header, state = manager.load_latest()
    assert header["seq"] == 30 and state == {"x": 30, "blob": list(range(30))}


def test_checkpoint_corruption_falls_back_to_older(tmp_path):
    ctx = _ctx()
    manager = CheckpointManager(tmp_path, ctx, keep=3)
    manager.write({"x": 1}, seq=1)
    manager.write({"x": 2}, seq=2)
    newest = sorted(tmp_path.glob("ckpt-*.bin"))[-1]
    payload = newest.read_bytes()
    newest.write_bytes(payload[: len(payload) - 10])  # truncate the pickle
    header, state = manager.load_latest()
    assert header["seq"] == 1 and state == {"x": 1}
    assert any(e.type == "serve.checkpoint_rejected" for e in ctx.tracer.events())


def test_checkpoint_load_none_when_empty(tmp_path):
    assert CheckpointManager(tmp_path / "missing", _ctx()).load_latest() is None


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------
def test_supervisor_restarts_until_stage_succeeds():
    ctx = _ctx()
    attempts = []

    async def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise StageCrash("transient")

    async def scenario():
        sup = Supervisor(ctx, crash_budget=5, backoff_base=0.001)
        sup.add("flaky", flaky)
        sup.start()
        for _ in range(200):
            if sup.all_done(["flaky"]):
                break
            await asyncio.sleep(0.01)
        await sup.cancel()
        return sup

    sup = asyncio.run(scenario())
    assert len(attempts) == 3
    assert sup.restart_counts()["flaky"] == 2
    assert not sup.failed.is_set()


def test_supervisor_crash_budget_fails_critical_stage():
    ctx = _ctx()

    async def doomed():
        raise StageCrash("always")

    async def scenario():
        sup = Supervisor(ctx, crash_budget=2, backoff_base=0.001)
        sup.add("doomed", doomed, critical=True)
        sup.start()
        await asyncio.wait_for(sup.failed.wait(), timeout=5.0)
        await sup.cancel()
        return sup

    sup = asyncio.run(scenario())
    assert sup.stages["doomed"].failed
    assert any(e.type == "serve.stage_giveup" for e in ctx.tracer.events())


def test_supervisor_noncritical_giveup_does_not_fail_service():
    ctx = _ctx()

    async def doomed():
        raise StageCrash("always")

    async def scenario():
        sup = Supervisor(ctx, crash_budget=1, backoff_base=0.001)
        sup.add("doomed", doomed, critical=False)
        sup.start()
        for _ in range(200):
            if sup.stages["doomed"].failed:
                break
            await asyncio.sleep(0.01)
        await sup.cancel()
        return sup

    sup = asyncio.run(scenario())
    assert sup.stages["doomed"].failed
    assert not sup.failed.is_set()


# ----------------------------------------------------------------------
# chaos driver
# ----------------------------------------------------------------------
def test_chaos_events_fire_exactly_once():
    plan = FaultPlan()
    plan.stage_crash(10, "pipeline").stage_crash(20, "pipeline")
    plan.source_stall(15, "src-0", 0.25)
    plan.malform(12, "src-1")
    driver = ChaosDriver(plan, _ctx())
    assert driver.stage_crashes("pipeline", 5) == []
    assert len(driver.stage_crashes("pipeline", 10)) == 1
    assert driver.stage_crashes("pipeline", 10) == []  # consumed
    assert len(driver.stage_crashes("pipeline", 99)) == 1  # catches up past 20
    assert driver.stalls("src-1", 99) == []  # wrong source
    [(_, duration)] = driver.stalls("src-0", 15)
    assert duration == 0.25
    assert driver.malformed("src-1", 12) is True
    assert driver.malformed("src-1", 12) is False
    assert driver.pending == 0


# ----------------------------------------------------------------------
# pipeline: idempotence and checkpoint round-trip
# ----------------------------------------------------------------------
def _feed(pipeline, stream, start, stop):
    for seq in range(start, stop):
        pipeline.apply(stream.reading(seq))


def test_pipeline_skips_replayed_readings():
    stream = _stream(n=4, rounds=6)
    pipeline = ClusteringPipeline(stream.topology, _ctx(), delta=0.35, slack=0.05, bootstrap_rounds=3)
    _feed(pipeline, stream, 0, 12)
    applied = pipeline.applied_total
    _feed(pipeline, stream, 0, 12)  # replay the whole prefix
    assert pipeline.applied_total == applied
    assert pipeline.apply(stream.reading(3)) == "skipped"


def test_pipeline_builds_clustering_after_bootstrap():
    stream = _stream(n=6, rounds=10)
    ctx = _ctx()
    pipeline = ClusteringPipeline(stream.topology, ctx, delta=0.35, slack=0.05, bootstrap_rounds=4)
    _feed(pipeline, stream, 0, stream.total_readings)
    assert pipeline.num_clusters > 0
    assert any(e.type == "serve.clustered" for e in ctx.tracer.events())
    assert ctx.metrics.counter("serve.maintenance_updates").value > 0


@pytest.mark.parametrize("cut_round", [5, 11, 16])
def test_pipeline_checkpoint_roundtrip_equivalence(cut_round):
    """Restore-at-any-point property: cutting the stream at an arbitrary
    reading, round-tripping the state dict, and replaying the rest (with
    overlap) must reproduce the uninterrupted run's snapshot digest."""
    stream = _stream(n=6, rounds=20)
    cut = cut_round * 6 + 3  # mid-round cuts too

    straight = ClusteringPipeline(stream.topology, _ctx(), delta=0.35, slack=0.05, bootstrap_rounds=6)
    _feed(straight, stream, 0, stream.total_readings)

    first = ClusteringPipeline(stream.topology, _ctx(), delta=0.35, slack=0.05, bootstrap_rounds=6)
    _feed(first, stream, 0, cut)
    state = first.state_dict()

    resumed = ClusteringPipeline(stream.topology, _ctx(), delta=0.35, slack=0.05, bootstrap_rounds=6)
    resumed.restore_state(state)
    overlap = max(0, cut - 7)  # resume WITH overlap: idempotence must absorb it
    _feed(resumed, stream, overlap, stream.total_readings)

    a, b = straight.snapshot(), resumed.snapshot()
    assert a["digest"] == b["digest"], diff_snapshots(a, b)
    assert resumed.applied_total == straight.applied_total


def test_pipeline_rejects_foreign_checkpoints():
    small, big = _stream(n=4, rounds=3), _stream(n=6, rounds=3)
    pipeline = ClusteringPipeline(big.topology, _ctx(), delta=0.35, slack=0.05)
    donor = ClusteringPipeline(small.topology, _ctx(), delta=0.35, slack=0.05)
    with pytest.raises(ValueError, match="n=4"):
        pipeline.restore_state(donor.state_dict())
    bad = donor.state_dict()
    bad["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        donor.restore_state(bad)


# ----------------------------------------------------------------------
# query service
# ----------------------------------------------------------------------
def test_query_service_not_ready_then_answers():
    stream = _stream(n=6, rounds=12)
    ctx = _ctx()
    pipeline = ClusteringPipeline(stream.topology, ctx, delta=0.35, slack=0.05, bootstrap_rounds=4)
    service = QueryService(pipeline, ctx)
    assert service.dispatch({"op": "range", "q": [0.5], "radius": 0.1})["error"] == "not_ready"
    with pytest.raises(NotReadyError):
        service.range_query([0.5], 0.1)
    _feed(pipeline, stream, 0, stream.total_readings)
    response = service.dispatch({"op": "range", "q": [0.5], "radius": 0.2})
    assert "matches" in response and response["staleness"]["updates_behind"] == 0
    health = service.dispatch({"op": "healthz"})
    assert health["ready"] and health["clusters"] > 0
    nodes = pipeline.nodes
    path = service.dispatch(
        {"op": "path", "source": str(nodes[0]), "destination": str(nodes[1]),
         "danger": [10.0], "gamma": 0.5}
    )
    assert "path" in path and "drops" in path
    assert service.dispatch({"op": "nope"})["error"].startswith("unknown op")
    assert service.dispatch({"op": "range", "q": [0.5]})["error"] == "bad_request"
    snapshot = service.dispatch({"op": "snapshot"})
    assert snapshot["digest"]


# ----------------------------------------------------------------------
# snapshot differ
# ----------------------------------------------------------------------
def test_diff_snapshots_reports_divergences():
    stream = _stream(n=4, rounds=8)
    pipeline = ClusteringPipeline(stream.topology, _ctx(), delta=0.35, slack=0.05, bootstrap_rounds=3)
    _feed(pipeline, stream, 0, stream.total_readings)
    a = pipeline.snapshot()
    assert diff_snapshots(a, json.loads(json.dumps(a))).equivalent

    b = json.loads(json.dumps(a))
    b["digest"] = "0" * 64
    b["state"]["applied_total"] += 1
    diff = diff_snapshots(a, b)
    assert not diff.equivalent
    assert any("applied_total" in d for d in diff.divergences)
    assert "NOT equivalent" in str(diff)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import EuclideanMetric
from repro.geometry import grid_topology, random_geometric_topology


@pytest.fixture
def metric():
    return EuclideanMetric()


@pytest.fixture
def small_grid():
    """A 5x5 grid topology."""
    return grid_topology(5, 5)


@pytest.fixture
def small_grid_features(small_grid):
    """A smooth gradient field over the 5x5 grid (1-d features)."""
    return {
        v: np.array([0.3 * small_grid.positions[v][0] + 0.1 * small_grid.positions[v][1]])
        for v in small_grid.graph.nodes
    }


@pytest.fixture
def random_topology():
    """A ~80-node connected random geometric topology."""
    return random_geometric_topology(80, seed=42)


@pytest.fixture
def random_features(random_topology):
    rng = np.random.default_rng(7)
    return {v: rng.normal(size=2) for v in random_topology.graph.nodes}

"""Tests for the dataset generators (paper §8.1 stand-ins)."""

import itertools

import numpy as np
import pytest

from repro.datasets import (
    ALPHA_RANGE,
    ELEVATION_RANGE,
    diamond_square,
    fit_features,
    generate_death_valley_dataset,
    generate_synthetic_dataset,
    generate_tao_dataset,
    stream_measurements,
)
from repro.datasets.synthetic import OnlineAR1Ensemble


# ----------------------------------------------------------------------
# Tao
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tao():
    return generate_tao_dataset(
        seed=7, samples_per_day=48, training_days=12, stream_days=3
    )


def test_tao_topology_is_6x9_grid(tao):
    assert tao.topology.num_nodes == 54
    assert tao.topology.is_connected()


def test_tao_series_lengths(tao):
    for node in tao.topology.graph.nodes:
        assert tao.training[node].shape == (12 * 48,)
        assert tao.stream[node].shape == (3 * 48,)


def test_tao_temperatures_plausible(tao):
    values = np.concatenate([tao.stream[n] for n in tao.topology.graph.nodes])
    assert 20.0 < values.mean() < 30.0
    assert values.std() < 3.0
    assert values.min() > ELEVATION_RANGE[0] / 100  # sanity: not wild


def test_tao_zones_are_contiguous_columns(tao):
    for node in tao.topology.graph.nodes:
        east_neighbor = node + 1 if (node % 9) < 8 else None
        if east_neighbor is not None:
            assert tao.zone_of[east_neighbor] >= tao.zone_of[node]


def test_tao_fitted_features_separate_zones(tao):
    _, features = fit_features(tao)
    metric = tao.metric()
    within, cross = [], []
    for a, b in itertools.combinations(list(tao.topology.graph.nodes), 2):
        d = metric.distance(features[a], features[b])
        (within if tao.zone_of[a] == tao.zone_of[b] else cross).append(d)
    assert np.median(cross) > 2.0 * np.median(within)


def test_tao_deterministic_per_seed():
    a = generate_tao_dataset(seed=3, samples_per_day=12, training_days=4, stream_days=1)
    b = generate_tao_dataset(seed=3, samples_per_day=12, training_days=4, stream_days=1)
    node = 0
    assert np.array_equal(a.training[node], b.training[node])


def test_tao_validation():
    with pytest.raises(ValueError):
        generate_tao_dataset(training_days=2)
    with pytest.raises(ValueError):
        generate_tao_dataset(num_zones=0)
    with pytest.raises(ValueError):
        generate_tao_dataset(num_zones=99)


# ----------------------------------------------------------------------
# Death Valley
# ----------------------------------------------------------------------
def test_diamond_square_shape_and_determinism():
    a = diamond_square(5, seed=1)
    b = diamond_square(5, seed=1)
    assert a.shape == (33, 33)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, diamond_square(5, seed=2))


def test_diamond_square_validation():
    with pytest.raises(ValueError):
        diamond_square(0)
    with pytest.raises(ValueError):
        diamond_square(4, roughness=1.5)


def test_death_valley_elevation_range():
    dataset = generate_death_valley_dataset(seed=2, num_sensors=300)
    values = np.array([dataset.features[i][0] for i in range(300)])
    assert values.min() >= ELEVATION_RANGE[0] - 1e-6
    assert values.max() <= ELEVATION_RANGE[1] + 1e-6
    assert dataset.terrain.min() == pytest.approx(ELEVATION_RANGE[0])
    assert dataset.terrain.max() == pytest.approx(ELEVATION_RANGE[1])


def test_death_valley_connected_topology():
    dataset = generate_death_valley_dataset(seed=4, num_sensors=300)
    assert dataset.topology.is_connected()
    assert dataset.topology.num_nodes == 300


def test_death_valley_features_spatially_correlated():
    dataset = generate_death_valley_dataset(seed=6, num_sensors=400)
    neighbor_diffs, random_diffs = [], []
    rng = np.random.default_rng(0)
    nodes = list(dataset.topology.graph.nodes)
    for a, b in dataset.topology.graph.edges:
        neighbor_diffs.append(abs(dataset.features[a][0] - dataset.features[b][0]))
    for _ in range(len(neighbor_diffs)):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        random_diffs.append(abs(dataset.features[a][0] - dataset.features[b][0]))
    assert np.median(neighbor_diffs) < 0.5 * np.median(random_diffs)


def test_death_valley_seeds_vary_topology():
    a = generate_death_valley_dataset(seed=1, num_sensors=100)
    b = generate_death_valley_dataset(seed=2, num_sensors=100)
    assert a.topology.positions != b.topology.positions


# ----------------------------------------------------------------------
# Synthetic
# ----------------------------------------------------------------------
def test_synthetic_alpha_recovery():
    dataset = generate_synthetic_dataset(150, seed=5, readings=3000)
    errors = [
        abs(dataset.features[n][0] - dataset.true_alphas[n]) for n in dataset.nodes
    ]
    assert np.median(errors) < 0.05


def test_synthetic_alphas_in_paper_range():
    dataset = generate_synthetic_dataset(100, seed=1, readings=100)
    for alpha in dataset.true_alphas.values():
        assert ALPHA_RANGE[0] <= alpha <= ALPHA_RANGE[1]


def test_synthetic_topology_degree_near_four():
    dataset = generate_synthetic_dataset(300, seed=9, readings=50)
    assert 2.5 <= dataset.topology.average_degree() <= 6.5
    assert dataset.topology.is_connected()


def test_stream_measurements_updates_features():
    dataset = generate_synthetic_dataset(50, seed=2, readings=100)
    before = {n: dataset.features[n].copy() for n in dataset.nodes}
    trajectory = stream_measurements(dataset, 50, seed=3)
    assert trajectory.shape == (50, 50)
    changed = sum(
        1 for n in dataset.nodes if not np.array_equal(before[n], dataset.features[n])
    )
    assert changed > 40


def test_online_ar1_starts_at_one():
    ensemble = OnlineAR1Ensemble(3)
    assert ensemble.alphas().tolist() == [1.0, 1.0, 1.0]


def test_online_ar1_shape_validation():
    ensemble = OnlineAR1Ensemble(3)
    with pytest.raises(ValueError):
        ensemble.update(np.zeros(2), np.zeros(3))


def test_synthetic_validation():
    with pytest.raises(ValueError):
        generate_synthetic_dataset(0, seed=1)
    with pytest.raises(ValueError):
        generate_synthetic_dataset(10, seed=1, readings=5)

"""Tests for the clustered range-query engine and the TAG baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import run_spanning_forest
from repro.core import ELinkConfig, run_elink
from repro.features import EuclideanMetric
from repro.geometry import random_geometric_topology
from repro.index import build_backbone, build_mtree
from repro.queries import (
    RangeQueryEngine,
    TagEngine,
    brute_force_range,
)


def _engine_for(topology, features, delta):
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    return RangeQueryEngine(clustering, features, metric, mtree, backbone), metric


def test_range_query_matches_brute_force(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    rng = np.random.default_rng(0)
    nodes = list(random_topology.graph.nodes)
    for _ in range(25):
        q = random_features[nodes[int(rng.integers(len(nodes)))]] + rng.normal(0, 0.3, 2)
        radius = float(rng.uniform(0.1, 1.5))
        initiator = nodes[int(rng.integers(len(nodes)))]
        out = engine.query(q, radius, initiator)
        assert out.matches == brute_force_range(random_features, metric, q, radius)
        assert out.messages >= 0


def test_zero_radius_query(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    out = engine.query(random_features[node], 0.0, node)
    assert node in out.matches
    assert out.matches == brute_force_range(random_features, metric, random_features[node], 0.0)


def test_negative_radius_rejected(random_topology, random_features):
    engine, _ = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    with pytest.raises(ValueError):
        engine.query(random_features[node], -0.5, node)


def test_far_query_prunes_everything(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    out = engine.query(np.array([100.0, 100.0]), 0.5, node)
    assert out.matches == set()
    assert out.clusters_descended == 0


def test_huge_radius_includes_everything(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    out = engine.query(np.zeros(2), 1e6, node)
    assert out.matches == set(random_topology.graph.nodes)


def test_pruning_counters_partition_clusters(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    out = engine.query(random_features[node], 0.4, node)
    total_roots = engine.clustering.num_clusters
    # pruned + included + descended counts visited roots; backbone-subtree
    # pruning can skip some entirely.
    assert out.clusters_pruned + out.clusters_included + out.clusters_descended <= total_roots


def test_query_on_spanning_forest_clustering(random_topology, random_features):
    metric = EuclideanMetric()
    clustering = run_spanning_forest(
        random_topology, random_features, metric, 1.5
    ).clustering
    mtree = build_mtree(clustering, random_features, metric)
    backbone = build_backbone(random_topology.graph, clustering)
    engine = RangeQueryEngine(clustering, random_features, metric, mtree, backbone)
    rng = np.random.default_rng(1)
    nodes = list(random_topology.graph.nodes)
    for _ in range(10):
        q = random_features[nodes[int(rng.integers(len(nodes)))]]
        out = engine.query(q, 0.8, nodes[0])
        assert out.matches == brute_force_range(random_features, metric, q, 0.8)


@given(
    seed=st.integers(min_value=0, max_value=30),
    radius=st.floats(min_value=0.05, max_value=2.0),
)
@settings(max_examples=20, deadline=None)
def test_correctness_property(seed, radius):
    topology = random_geometric_topology(50, seed=seed)
    rng = np.random.default_rng(seed + 100)
    features = {v: rng.normal(size=2) for v in topology.graph.nodes}
    engine, metric = _engine_for(topology, features, delta=1.0)
    q = rng.normal(size=2)
    out = engine.query(q, radius, 0)
    assert out.matches == brute_force_range(features, metric, q, radius)


# ----------------------------------------------------------------------
# TAG
# ----------------------------------------------------------------------
def test_tag_fixed_cost_and_correctness(random_topology, random_features):
    metric = EuclideanMetric()
    tag = TagEngine(random_topology.graph, random_features, metric)
    assert tag.tree_edges == random_topology.num_nodes - 1
    cost = tag.per_query_cost()
    rng = np.random.default_rng(2)
    for _ in range(5):
        q = rng.normal(size=2)
        out = tag.query(q, 0.7)
        assert out.messages == cost  # fixed regardless of selectivity
        assert out.matches == brute_force_range(random_features, metric, q, 0.7)


def test_tag_base_station_validation(random_topology, random_features):
    with pytest.raises(KeyError):
        TagEngine(random_topology.graph, random_features, EuclideanMetric(), base_station="nope")


def test_clustered_query_beats_tag_on_correlated_data():
    """On a smooth field most clusters prune, so the clustered engine must
    undercut TAG's fixed cost (the Fig 14 effect)."""
    from repro.geometry import grid_topology

    topology = grid_topology(10, 10)
    features = {
        v: np.array([0.15 * topology.positions[v][0]]) for v in topology.graph.nodes
    }
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=0.3)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
    tag = TagEngine(topology.graph, features, metric)
    rng = np.random.default_rng(3)
    nodes = list(topology.graph.nodes)
    clustered_costs = []
    for _ in range(30):
        q = features[nodes[int(rng.integers(len(nodes)))]]
        out = engine.query(q, 0.1, nodes[int(rng.integers(len(nodes)))])
        assert out.matches == brute_force_range(features, metric, q, 0.1)
        clustered_costs.append(out.messages)
    assert np.mean(clustered_costs) < tag.per_query_cost()


# ----------------------------------------------------------------------
# degraded operation: dead nodes, partial coverage, backbone repair
# ----------------------------------------------------------------------
from repro.features import EuclideanMetric as _Metric
from repro.index import build_backbone as _build_backbone
from repro.index import build_mtree as _build_mtree


def _fault_engine(topology, features, delta, dead=None, root_replacements=None):
    metric = _Metric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=delta)).clustering
    mtree = _build_mtree(clustering, features, metric)
    backbone = _build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(
        clustering,
        features,
        metric,
        mtree,
        backbone,
        dead=dead,
        root_replacements=root_replacements,
    )
    return engine, clustering, backbone, metric


def test_fault_free_query_reports_full_coverage(random_topology, random_features):
    engine, metric = _engine_for(random_topology, random_features, delta=1.5)
    node = next(iter(random_topology.graph.nodes))
    assert engine.query(np.zeros(2), 1e6, node).coverage == 1.0


def test_dead_backbone_leaf_yields_partial_coverage(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_engine(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 2:
        pytest.skip("single-cluster instance")
    # A backbone leaf: killing it loses exactly its own cluster.
    dead = next(r for r in clustering.roots if backbone.tree.degree(r) == 1)
    engine, clustering, backbone, metric = _fault_engine(
        random_topology, random_features, delta=1.5, dead={dead}
    )
    initiator = next(
        n for n in random_topology.graph.nodes if clustering.root_of(n) != dead
    )
    out = engine.query(np.zeros(2), 1e6, initiator)
    lost = set(clustering.members(dead))
    alive = set(random_topology.graph.nodes) - {dead}
    assert out.matches == alive - lost
    expected = 1.0 - (len(lost) - 1) / len(alive)
    assert out.coverage == pytest.approx(expected)


def test_dead_origin_root_answers_locally(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_engine(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 2:
        pytest.skip("single-cluster instance")
    dead = next(
        (r for r in clustering.roots if len(clustering.members(r)) >= 2), None
    )
    if dead is None:
        pytest.skip("needs a surviving cluster member")
    members = set(clustering.members(dead))
    engine, clustering, backbone, metric = _fault_engine(
        random_topology, random_features, delta=1.5, dead={dead}
    )
    initiator = next(m for m in members if m != dead)
    out = engine.query(np.zeros(2), 1e6, initiator)
    assert out.matches == members - {dead}
    alive = len(random_topology.graph.nodes) - 1
    assert out.coverage == pytest.approx((len(members) - 1) / alive)


def test_replacement_root_restores_coverage(random_topology, random_features):
    engine, clustering, backbone, metric = _fault_engine(
        random_topology, random_features, delta=1.5
    )
    if clustering.num_clusters < 2:
        pytest.skip("single-cluster instance")
    dead = next(
        (
            r
            for r in clustering.roots
            if backbone.tree.degree(r) >= 1 and len(clustering.members(r)) >= 2
        ),
        None,
    )
    if dead is None:
        pytest.skip("needs a surviving cluster member")
    replacement = next(m for m in clustering.members(dead) if m != dead)
    surviving = random_topology.graph.copy()
    surviving.remove_node(dead)
    mtree = _build_mtree(clustering, random_features, metric)
    rerouted = backbone.reroute_around(surviving, dead, replacement)
    engine = RangeQueryEngine(
        clustering,
        random_features,
        metric,
        mtree,
        backbone,
        dead={dead},
        root_replacements={dead: replacement},
    )
    initiator = next(
        n for n in surviving.nodes if clustering.root_of(n) != dead
    )
    out = engine.query(np.zeros(2), 1e6, initiator)
    assert out.matches == set(surviving.nodes)
    assert out.coverage == 1.0


def test_zero_survivors_reports_zero_coverage():
    """With every node dead, coverage is 0.0 — nothing was coverable.

    Regression test: the all-dead edge case used to report coverage 1.0
    because the "fraction of survivors covered" ratio degenerated to a
    vacuous truth over an empty survivor set.
    """
    from repro.geometry.topology import grid_topology

    topology = grid_topology(4, 4)
    features = {n: np.array([float(x + y)]) for n, (x, y) in topology.positions.items()}
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=1.5)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    engine = RangeQueryEngine(
        clustering, features, metric, mtree, backbone, dead=set(topology.graph.nodes)
    )
    out = engine.query(np.zeros(1), 1e6, next(iter(topology.graph.nodes)))
    assert out.coverage == 0.0
    assert out.matches == set()


def test_drop_accounting_agrees_between_stats_and_metrics():
    """Degraded queries account drops identically in ``stats.drops_by_reason``
    and the (optional) ``MetricsRegistry`` counters, and report the total
    through ``RangeQueryResult.drops``."""
    from repro.geometry.topology import grid_topology
    from repro.obs import MetricsRegistry

    topology = grid_topology(4, 4)
    # identical features: one cluster per component, so killing the roots
    # leaves survivors to run the local-only degraded path
    features = {n: np.zeros(1) for n in topology.graph.nodes}
    metric = EuclideanMetric()
    clustering = run_elink(topology, features, metric, ELinkConfig(delta=1.5)).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    metrics = MetricsRegistry()
    dead = set(clustering.roots)  # every root dead: local-only degraded path
    engine = RangeQueryEngine(
        clustering, features, metric, mtree, backbone, dead=dead, metrics=metrics
    )
    initiator = next(n for n in topology.graph.nodes if n not in dead)
    out = engine.query(np.zeros(1), 1e6, initiator)
    assert out.drops > 0
    reasons = {
        name.rsplit(".", 1)[1]: metrics.counter(name).value
        for name in metrics.names()
        if name.startswith("queries.drops.")
    }
    assert reasons  # the registry saw every structured drop reason
    assert sum(reasons.values()) == out.drops

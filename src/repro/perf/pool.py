"""Persistent warm worker pool for the experiment runner.

``runner --jobs N`` submits *work-unit specs* (experiment name + a small
picklable trial spec) — never datasets — to one long-lived
:class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker runs
:func:`warm_worker` once at startup: it pre-imports the experiment
registry (pulling in numpy/networkx and every experiment module, the
multi-hundred-millisecond part of a cold task) and opens the artifact
cache handle so the first real task pays neither cost.  Per-process memo
(:mod:`repro.perf.memo`) then keeps each worker's heavy per-experiment
context warm across the trials it executes.

``REPRO_CACHE`` and ``REPRO_VERIFY`` reach workers through the inherited
environment, so caching and verification levels are uniform across the
pool without any per-task plumbing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor


def warm_worker() -> None:
    """Pool initializer: pre-import the experiment suite, open the cache.

    Runs once per worker process.  Import errors propagate and kill the
    worker loudly — a pool that cannot import the experiments must not
    sit silently idle.
    """
    import repro.experiments  # noqa: F401  (imports every experiment module)

    from repro.perf.cache import get_cache

    get_cache()  # instantiate the REPRO_CACHE handle once, if enabled


def create_pool(jobs: int) -> ProcessPoolExecutor:
    """A warm process pool of *jobs* workers (see module doc)."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return ProcessPoolExecutor(max_workers=jobs, initializer=warm_worker)

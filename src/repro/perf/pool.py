"""Persistent warm worker pool for the experiment runner.

``runner --jobs N`` submits *work-unit specs* (experiment name + a small
picklable trial spec) — never datasets — to one long-lived
:class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker runs
:func:`warm_worker` once at startup: it pre-imports the experiment
registry (pulling in numpy/networkx and every experiment module, the
multi-hundred-millisecond part of a cold task) and opens the artifact
cache handle so the first real task pays neither cost.  Per-process memo
(:mod:`repro.perf.memo`) then keeps each worker's heavy per-experiment
context warm across the trials it executes.

``REPRO_CACHE`` and ``REPRO_VERIFY`` reach workers through the inherited
environment, so caching and verification levels are uniform across the
pool without any per-task plumbing.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable


def warm_worker() -> None:
    """Pool initializer: pre-import the experiment suite, open the cache.

    Runs once per worker process.  Import errors propagate and kill the
    worker loudly — a pool that cannot import the experiments must not
    sit silently idle.
    """
    import repro.experiments  # noqa: F401  (imports every experiment module)

    from repro.perf.cache import get_cache

    get_cache()  # instantiate the REPRO_CACHE handle once, if enabled


def create_pool(jobs: int) -> ProcessPoolExecutor:
    """A warm process pool of *jobs* workers (see module doc)."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return ProcessPoolExecutor(max_workers=jobs, initializer=warm_worker)


def create_shard_executors(
    count: int, *, initializer: Callable[[int], None]
) -> list[ProcessPoolExecutor]:
    """One single-worker **fork**-context executor per simulation shard.

    The sharded engine (:mod:`repro.sim.shard`) needs two properties a
    shared pool cannot give it: strict FIFO execution *per shard* (each
    worker owns mutable shard state, so shard *i*'s batches must all run
    in the same process, in order) and fork-style state inheritance (the
    coordinator's pre-run handler graph is handed to children through
    copy-on-write memory rather than pickling).  Hence K executors of one
    worker each, fork context, with *initializer(shard_id)* run once in
    each child.

    Raises :class:`ValueError` where the platform lacks the fork start
    method — callers fall back to the inline transport.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ValueError("fork start method unavailable on this platform")
    context = multiprocessing.get_context("fork")
    return [
        ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=initializer,
            initargs=(shard_id,),
        )
        for shard_id in range(count)
    ]

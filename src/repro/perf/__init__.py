"""Performance layer: artifact cache, per-process memo, warm worker pool.

Three cooperating pieces make the experiment suite behave like a
production sweep service instead of a script (docs/ARCHITECTURE.md,
"Performance layer"):

- :mod:`repro.perf.cache` — a content-addressed on-disk
  :class:`ArtifactCache` for expensive derived artifacts (fractal
  terrains, rejection-free geometric topologies, AR/seasonal feature
  fits, spectral eigendecompositions).  Opt-in via the ``REPRO_CACHE``
  environment variable or the runner's ``--cache`` flag; off by default,
  never enabled implicitly in tests.
- :mod:`repro.perf.memo` — a tiny bounded per-process memo that lets
  trial-decomposed experiments share δ-independent context (datasets,
  solvers, query engines) across the trials one process executes,
  exactly as the monolithic loops shared it before decomposition.
- :mod:`repro.perf.pool` — the persistent warm worker pool used by
  ``runner --jobs N``: one :class:`~concurrent.futures.ProcessPoolExecutor`
  whose initializer pre-imports the experiment modules and opens the
  artifact cache once per worker, so every submitted task is a
  lightweight spec, never a pickled dataset.
"""

from repro.perf.cache import (
    ArtifactCache,
    cache_key,
    cached_artifact,
    canonicalize,
    get_cache,
)
from repro.perf.memo import process_memo
from repro.perf.meta import environment_metadata

__all__ = [
    "ArtifactCache",
    "cache_key",
    "cached_artifact",
    "canonicalize",
    "environment_metadata",
    "get_cache",
    "process_memo",
]

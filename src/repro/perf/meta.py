"""Environment metadata for the benchmark artifact.

``BENCH_results.json`` files are compared run-over-run and
machine-over-machine; a timing delta is meaningless without knowing what
produced it.  :func:`environment_metadata` captures the comparable facts:
interpreter, platform, core count, the git revision when available, and
an ISO timestamp.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any


def git_revision(cwd: str | None = None) -> str | None:
    """The current git SHA, or None outside a repository / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def environment_metadata() -> dict[str, Any]:
    """Facts that make BENCH trajectories comparable across machines."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_revision(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

"""``repro cache`` — inspect or clear the artifact cache.

Usage::

    repro cache                      # stats for $REPRO_CACHE
    repro cache stats --dir PATH     # stats for an explicit directory
    repro cache clear --dir PATH     # delete every entry

Dispatched from :mod:`repro.cli` the same way ``trace`` and ``verify``
are (the subcommand owns its own argument set).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.perf.cache import CACHE_ENV, ArtifactCache


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point for ``repro cache``."""
    parser = argparse.ArgumentParser(
        prog="repro cache", description="inspect or clear the artifact cache"
    )
    parser.add_argument(
        "action",
        nargs="?",
        default="stats",
        choices=("stats", "clear"),
        help="what to do (default: stats)",
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help=f"cache directory (default: ${CACHE_ENV})",
    )
    args = parser.parse_args(argv)

    directory = args.dir or os.environ.get(CACHE_ENV)
    if not directory:
        print(
            f"no cache directory: pass --dir or set {CACHE_ENV} "
            "(the runner's --cache flag sets it)",
            file=sys.stderr,
        )
        return 2
    cache = ArtifactCache(directory)

    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {directory}")
        return 0

    stats = cache.stats()
    print(f"cache {stats['directory']}")
    print(f"  entries:   {stats['entries']}")
    print(f"  size:      {_format_bytes(stats['bytes'])} (bound {_format_bytes(stats['max_bytes'])})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

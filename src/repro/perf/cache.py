"""Content-addressed on-disk artifact cache (opt-in, off by default).

Expensive *derived* artifacts — diamond–square terrains, random geometric
topologies, AR/seasonal feature fits, spectral eigendecompositions — are
pure functions of their parameters and a seed.  :class:`ArtifactCache`
stores their pickled outputs under a key derived from

    function name + canonicalized parameters + code-version salt

so a warm hit returns a byte-identical object without recomputation.  The
salt is a per-function version string: bump it whenever the wrapped
implementation changes meaningfully, and every stale entry silently
becomes a miss.

Activation is explicit: the cache is live only when the ``REPRO_CACHE``
environment variable names a directory (the runner's ``--cache`` flag
sets it, and ``--jobs`` worker processes inherit it through the
environment).  With the variable unset every wrapped function runs
exactly as before — tests never see a cache unless they opt in.

Storage is one file per entry with atomic (write-temp + rename) creation,
safe under concurrent pool workers.  Total size is bounded
(``REPRO_CACHE_MAX_BYTES``, default 1 GiB): inserts evict
least-recently-used entries first, where "used" is the file mtime
refreshed on every hit.

The cache is a **best-effort accelerator and must never take the caller
down**: transient ``OSError`` during the atomic publish is retried with
exponential backoff and then *swallowed* (counted in ``write_failures``
— the artifact is simply recomputed next time), and an entry that fails
to unpickle is quarantined (renamed to ``<key>.corrupt``) so one corrupt
file cannot crash — or repeatedly slow down — a long-running service.

``python -m repro cache`` (see :mod:`repro.perf.cli`) prints statistics
or clears the directory.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

#: Environment variable naming the cache directory; unset ⇒ cache off.
CACHE_ENV = "REPRO_CACHE"
#: Environment variable bounding the cache size in bytes.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
#: Default size bound: 1 GiB.
DEFAULT_MAX_BYTES = 1 << 30
#: Bump to invalidate every entry at once (key-schema version).
_KEY_SCHEMA = 1
#: Atomic-publish retry envelope for transient filesystem errors.
_WRITE_RETRIES = 3
_WRITE_RETRY_BASE = 0.02

_OPEN_CACHES: dict[tuple[str, int], "ArtifactCache"] = {}


def canonicalize(value: Any) -> Any:
    """Reduce *value* to a deterministic JSON-able structure for hashing.

    Scalars pass through (floats via ``repr`` so 0.1 and 0.1000...1
    differ), mappings are sorted by key, sequences keep order, and numpy
    arrays collapse to (dtype, shape, sha256 of their bytes) — content
    addressing without embedding megabytes into the key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ("f", repr(value))
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return (
            "ndarray",
            str(data.dtype),
            list(data.shape),
            hashlib.sha256(data.tobytes()).hexdigest(),
        )
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, Mapping):
        return ("map", sorted((repr(k), canonicalize(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return ("seq", [canonicalize(v) for v in value])
    raise TypeError(f"cannot canonicalize {type(value).__name__} for a cache key")


def cache_key(func_name: str, params: Mapping[str, Any], salt: str) -> str:
    """The content-addressed key: sha256 over name, salt and parameters."""
    payload = json.dumps(
        {
            "schema": _KEY_SCHEMA,
            "func": func_name,
            "salt": salt,
            "params": canonicalize(params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A size-bounded, content-addressed pickle store (see module doc).

    Parameters
    ----------
    directory:
        Where entries live (created on first write).
    max_bytes:
        Total size bound; inserts evict least-recently-used entries until
        the store fits.  ``None`` reads ``REPRO_CACHE_MAX_BYTES`` / the
        1 GiB default.
    """

    def __init__(self, directory: str | os.PathLike, max_bytes: int | None = None):
        self.directory = Path(directory)
        if max_bytes is None:
            max_bytes = int(os.environ.get(CACHE_MAX_BYTES_ENV, DEFAULT_MAX_BYTES))
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.write_failures = 0
        self.quarantined = 0
        # Injectable sleep so tests exercise the retry path instantly.
        self._retry_sleep: Callable[[float], None] = time.sleep

    # ------------------------------------------------------------------
    # core get/put
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """(hit, value); a hit refreshes the entry's LRU timestamp.

        An entry that fails to unpickle (truncated write, version skew,
        disk corruption) is a **miss, never a crash**: the file is
        quarantined — renamed to ``<key>.corrupt``, out of the key space
        — so the artifact is recomputed once instead of tripping every
        future lookup.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except OSError:
            self.misses += 1
            return False, None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, MemoryError):
            self.misses += 1
            self._quarantine(path)
            return False, None
        try:
            os.utime(path)
        except OSError:
            pass  # entry evicted between read and touch: still a valid hit
        self.hits += 1
        return True, value

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(".corrupt"))
            self.quarantined += 1
        except OSError:
            pass  # already removed by eviction or a concurrent worker

    def put(self, key: str, value: Any) -> None:
        """Store *value* atomically, then evict down to the size bound.

        Best-effort: a transient ``OSError`` during the atomic publish is
        retried with exponential backoff; a persistent one is swallowed
        (counted in ``write_failures``) — callers always keep their
        computed value, the entry just stays cold.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
        except OSError:
            self.write_failures += 1
            return
        try:
            for attempt in range(_WRITE_RETRIES + 1):
                try:
                    os.replace(tmp_name, self._path(key))
                    break
                except OSError:
                    if attempt == _WRITE_RETRIES:
                        self.write_failures += 1
                        return
                    self._retry_sleep(_WRITE_RETRY_BASE * 2**attempt)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # already renamed into place (the success path)
        self._evict()

    def get_or_compute(
        self, func_name: str, params: Mapping[str, Any], compute: Callable[[], Any], *, salt: str = "1"
    ) -> Any:
        """Return the cached artifact, computing and storing it on a miss."""
        key = cache_key(func_name, params, salt)
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> list[os.DirEntry]:
        try:
            return [e for e in os.scandir(self.directory) if e.name.endswith(".pkl")]
        except OSError:
            return []

    def _evict(self) -> None:
        entries = self._entries()
        sizes = {}
        for entry in entries:
            try:
                stat = entry.stat()
            except OSError:
                continue
            sizes[entry.path] = (stat.st_mtime, stat.st_size)
        total = sum(size for _, size in sizes.values())
        if total <= self.max_bytes:
            return
        for path in sorted(sizes, key=lambda p: sizes[p][0]):
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= sizes[path][1]
            if total <= self.max_bytes:
                return

    def stats(self) -> dict[str, Any]:
        """Disk-level stats plus this process's session hit/miss counters."""
        entries = self._entries()
        total = 0
        for entry in entries:
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "write_failures": self.write_failures,
            "quarantined": self.quarantined,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self._entries():
            try:
                os.unlink(entry.path)
                removed += 1
            except OSError:
                continue
        return removed


def get_cache() -> ArtifactCache | None:
    """The active cache per ``REPRO_CACHE``, or None when unset.

    The environment is re-read on every call (tests flip it; pool workers
    inherit it), but the :class:`ArtifactCache` instance per (directory,
    bound) is reused so session hit/miss counters accumulate.
    """
    directory = os.environ.get(CACHE_ENV)
    if not directory:
        return None
    max_bytes = int(os.environ.get(CACHE_MAX_BYTES_ENV, DEFAULT_MAX_BYTES))
    key = (directory, max_bytes)
    cache = _OPEN_CACHES.get(key)
    if cache is None:
        cache = _OPEN_CACHES[key] = ArtifactCache(directory, max_bytes)
    return cache


def cached_artifact(salt: str, name: str | None = None) -> Callable:
    """Decorator: route a pure generator function through the active cache.

    With ``REPRO_CACHE`` unset the wrapper is a single ``if``: the
    function runs untouched.  With it set, the function's *bound*
    arguments (defaults applied) become the cache key parameters, so
    ``f(100)`` and ``f(n=100)`` share an entry.  *salt* is the wrapped
    function's code-version string — bump it when the implementation
    changes output.
    """

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        func_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            cache = get_cache()
            if cache is None:
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            return cache.get_or_compute(
                func_name, dict(bound.arguments), lambda: func(*args, **kwargs), salt=salt
            )

        return wrapper

    return decorate

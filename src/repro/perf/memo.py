"""Bounded per-process memo for trial-shared experiment context.

Before trial decomposition, each experiment's monolithic loop built its
heavy δ-independent context (dataset, fitted features, spectral solver,
query engines) once and swept parameters over it.  Decomposed trials run
one parameter cell each — possibly in different processes — so that
sharing must become explicit: :func:`process_memo` gives every trial in
one process the *same* context object the monolithic loop would have
used, while trials landing in other pool workers rebuild it exactly once
per worker (the persistent pool keeps workers warm across an experiment,
so the rebuild amortizes the same way).

The contract is the one the monolithic loops already relied on: memoized
context is **shared, not copied** — trials must treat it as read-only.
Everything this repository memoizes already honours that (maintenance
sessions and query engines copy what they intend to mutate).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

#: Retain this many distinct contexts per process (an experiment needs
#: one; a runner process cycling through experiments needs a few).
_MAX_ENTRIES = 8

_MEMO: "OrderedDict[Hashable, Any]" = OrderedDict()


def process_memo(key: Hashable, factory: Callable[[], Any]) -> Any:
    """Return the per-process value for *key*, building it on first use.

    LRU-bounded at a handful of entries — enough for every experiment a
    worker touches, small enough that full-profile datasets don't pile up.
    """
    if key in _MEMO:
        _MEMO.move_to_end(key)
        return _MEMO[key]
    value = factory()
    _MEMO[key] = value
    while len(_MEMO) > _MAX_ENTRIES:
        _MEMO.popitem(last=False)
    return value


def clear_process_memo() -> None:
    """Drop every memoized context (test isolation hook)."""
    _MEMO.clear()

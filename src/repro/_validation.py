"""Shared argument-validation helpers.

Small, explicit checks used across the package so that user errors surface
as clear ``ValueError``/``TypeError`` messages at API boundaries instead of
obscure failures deep inside a protocol run.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def require_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number > 0, else raise ValueError."""
    require_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return *value* if it is a finite number >= 0, else raise ValueError."""
    require_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_finite(value: float, name: str) -> float:
    """Return *value* if it is a finite real number, else raise ValueError."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def require_int_at_least(value: int, minimum: int, name: str) -> int:
    """Return *value* if it is an int >= minimum, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def require_in_range(
    value: float, low: float, high: float, name: str, *, inclusive: bool = True
) -> float:
    """Return *value* if low <= value <= high (or strict), else raise."""
    require_finite(value, name)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def require_non_empty(items: Sequence | Iterable, name: str) -> Sequence:
    """Materialize *items* as a list and require it to be non-empty."""
    materialized = list(items)
    if not materialized:
        raise ValueError(f"{name} must be non-empty")
    return materialized

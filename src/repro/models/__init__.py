"""Data models fitted at each sensor node (paper §2.2, §8.1, Appendix A)."""

from repro.models.ar import ARModel, fit_ar, lagged_design
from repro.models.rls import RecursiveLeastSquares
from repro.models.seasonal import SEASONAL_LAGS, TAO_FEATURE_DIM, TaoNodeModel

__all__ = [
    "ARModel",
    "RecursiveLeastSquares",
    "SEASONAL_LAGS",
    "TAO_FEATURE_DIM",
    "TaoNodeModel",
    "fit_ar",
    "lagged_design",
]

"""Seasonal AR model for the Tao dataset (paper §8.1).

Sea-surface temperature follows regular within-day trends — AR(1) — while
the daily means drift as an AR(3).  The paper therefore models each node as

    x_t = alpha_1 x_{t-1} + beta_1 mu_{T-1} + beta_2 mu_{T-2} + beta_3 mu_{T-3} + e_t

where ``mu_{T-j}`` is the mean temperature of the j-th previous day.  The
node's feature is the 4-vector ``(alpha_1, beta_1, beta_2, beta_3)``,
compared under the weighted Euclidean metric with weights
``(0.5, 0.3, 0.2, 0.1)``.

Update cadence (paper): *alpha_1 is updated for every measurement whereas
the betas are updated every day*.  :class:`TaoNodeModel` keeps one RLS
estimator over the 4-dim regressor, feeds it every measurement, and commits
the beta part of the exposed feature only at day boundaries.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_int_at_least
from repro.models.rls import RecursiveLeastSquares

#: Number of daily-mean lags in the seasonal part of the model.
SEASONAL_LAGS = 3
#: Total feature dimension: alpha_1 plus the seasonal betas.
TAO_FEATURE_DIM = 1 + SEASONAL_LAGS


class TaoNodeModel:
    """Per-node seasonal AR model with the paper's update cadence.

    Parameters
    ----------
    samples_per_day:
        Stream resolution (the paper's Tao data is 10-minute, i.e. 144/day).
    """

    def __init__(self, samples_per_day: int):
        self.samples_per_day = require_int_at_least(samples_per_day, 2, "samples_per_day")
        self._rls = RecursiveLeastSquares(TAO_FEATURE_DIM)
        self._daily_means: list[float] = []
        self._day_buffer: list[float] = []
        self._last_value: float | None = None
        self._committed_betas = np.zeros(SEASONAL_LAGS, dtype=np.float64)
        self._fitted = False

    # ------------------------------------------------------------------
    # batch initialization ("trained on the previous month's data")
    # ------------------------------------------------------------------
    def fit(self, history: np.ndarray) -> np.ndarray:
        """Seed the model from *history* (>= 4 whole days); returns the feature."""
        series = np.asarray(history, dtype=np.float64)
        if series.ndim != 1:
            raise ValueError("history must be 1-d")
        spd = self.samples_per_day
        num_days = series.shape[0] // spd
        if num_days < SEASONAL_LAGS + 1:
            raise ValueError(
                f"history must cover at least {SEASONAL_LAGS + 1} whole days "
                f"({(SEASONAL_LAGS + 1) * spd} samples), got {series.shape[0]}"
            )
        series = series[: num_days * spd]
        day_means = series.reshape(num_days, spd).mean(axis=1)

        rows: list[np.ndarray] = []
        targets: list[float] = []
        for t in range(SEASONAL_LAGS * spd + 1, series.shape[0]):
            day = t // spd
            rows.append(
                np.array(
                    [
                        series[t - 1],
                        day_means[day - 1],
                        day_means[day - 2],
                        day_means[day - 3],
                    ]
                )
            )
            targets.append(series[t])
        self._rls.seed_batch(np.asarray(rows), np.asarray(targets))
        self._daily_means = day_means.tolist()
        self._last_value = float(series[-1])
        self._committed_betas = self._rls.coefficients[1:]
        self._fitted = True
        return self.feature

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def observe(self, value: float) -> np.ndarray:
        """Absorb one new measurement; returns the current exposed feature."""
        if not self._fitted:
            raise RuntimeError("call fit() with historical data before observe()")
        if not np.isfinite(value):
            raise ValueError(f"measurement must be finite, got {value!r}")
        regressors = np.array(
            [
                self._last_value,
                self._daily_means[-1],
                self._daily_means[-2],
                self._daily_means[-3],
            ]
        )
        self._rls.update(regressors, float(value))
        self._day_buffer.append(float(value))
        self._last_value = float(value)
        if len(self._day_buffer) == self.samples_per_day:
            self._daily_means.append(float(np.mean(self._day_buffer)))
            self._day_buffer.clear()
            self._committed_betas = self._rls.coefficients[1:]
        return self.feature

    @property
    def feature(self) -> np.ndarray:
        """Exposed feature: live alpha_1, day-committed betas."""
        coeffs = self._rls.coefficients
        return np.concatenate(([coeffs[0]], self._committed_betas))

    @property
    def day(self) -> int:
        """Number of complete days absorbed (fit history included)."""
        return len(self._daily_means)

    def __repr__(self) -> str:
        return (
            f"TaoNodeModel(samples_per_day={self.samples_per_day}, "
            f"feature={np.round(self.feature, 4).tolist()})"
        )

"""Auto-regressive model fitting (paper §2.2).

Each sensor node regresses its local time series to an AR(k) model

    x_t = a_1 x_{t-1} + ... + a_k x_{t-k} + e_t

whose coefficient vector is the node's *feature*.  Fitting is ordinary
least squares on the lagged design matrix: with ``Y`` the column of
observed values and ``X`` the k × m matrix of lagged explanatory
variables, ``a_hat = (X X^T)^{-1} X Y`` (the paper's normal-equation
form; we solve it with ``lstsq`` for numerical robustness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import require_int_at_least


@dataclass(frozen=True)
class ARModel:
    """A fitted AR(k) model."""

    coefficients: np.ndarray  # a_1 ... a_k
    noise_variance: float

    @property
    def order(self) -> int:
        """Model order k."""
        return int(self.coefficients.shape[0])

    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead prediction from the last *k* values of *history*."""
        history = np.asarray(history, dtype=np.float64)
        k = self.order
        if history.shape[0] < k:
            raise ValueError(f"need at least {k} history values, got {history.shape[0]}")
        lags = history[-1 : -k - 1 : -1]  # x_{t-1}, x_{t-2}, ..., x_{t-k}
        return float(np.dot(self.coefficients, lags))

    def simulate(self, initial: np.ndarray, steps: int, rng: np.random.Generator) -> np.ndarray:
        """Generate *steps* values continuing *initial* with Gaussian noise."""
        require_int_at_least(steps, 1, "steps")
        history = list(np.asarray(initial, dtype=np.float64))
        if len(history) < self.order:
            raise ValueError(f"initial history must have >= {self.order} values")
        sigma = np.sqrt(max(self.noise_variance, 0.0))
        out = np.empty(steps, dtype=np.float64)
        for t in range(steps):
            value = self.predict_next(np.asarray(history)) + rng.normal(0.0, sigma)
            out[t] = value
            history.append(value)
        return out


def lagged_design(series: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Build the regression pair (X, y) for an AR(*order*) fit.

    Row *t* of X holds ``(x_{t-1}, ..., x_{t-k})``; y holds ``x_t``.
    """
    series = np.asarray(series, dtype=np.float64)
    k = require_int_at_least(order, 1, "order")
    if series.ndim != 1:
        raise ValueError("series must be 1-d")
    m = series.shape[0] - k
    if m < 1:
        raise ValueError(f"series of length {series.shape[0]} too short for AR({k})")
    design = np.empty((m, k), dtype=np.float64)
    for lag in range(1, k + 1):
        design[:, lag - 1] = series[k - lag : k - lag + m]
    targets = series[k:]
    return design, targets


def fit_ar(series: np.ndarray, order: int) -> ARModel:
    """Fit an AR(*order*) model to *series* by least squares."""
    design, targets = lagged_design(series, order)
    coeffs, *_ = np.linalg.lstsq(design, targets, rcond=None)
    residuals = targets - design @ coeffs
    dof = max(targets.shape[0] - order, 1)
    return ARModel(coefficients=coeffs, noise_variance=float(residuals @ residuals) / dof)

"""Recursive least squares — online model updates (paper Appendix A).

When a new measurement arrives, a node updates its regression coefficients
without refitting from scratch, using the rank-one recursions (eq. 6–8):

    b_k = b_{k-1} + x_k y_k
    P_k = P_{k-1} - P_{k-1} x_k [1 + x_k^T P_{k-1} x_k]^{-1} x_k^T P_{k-1}
    a_k = a_{k-1} - P_k (x_k x_k^T a_{k-1} - x_k y_k)

where ``P`` tracks ``(X X^T)^{-1}``.  The update is O(k²) per measurement —
the constant-memory, constant-time behaviour the paper relies on for
in-network modelling.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import require_int_at_least, require_positive


class RecursiveLeastSquares:
    """Online least-squares estimator over a fixed-size regressor vector.

    Parameters
    ----------
    order:
        Dimension k of the regressor vector.
    initial_coefficients:
        Starting coefficient estimate (defaults to zeros; the paper's
        synthetic experiment initializes alpha_1 = 1).
    initial_p_scale:
        ``P_0 = initial_p_scale * I``.  Large values mean low confidence in
        the initial coefficients, so early observations dominate.
    """

    def __init__(
        self,
        order: int,
        *,
        initial_coefficients: np.ndarray | None = None,
        initial_p_scale: float = 1e4,
    ):
        self.order = require_int_at_least(order, 1, "order")
        require_positive(initial_p_scale, "initial_p_scale")
        if initial_coefficients is None:
            self._coefficients = np.zeros(order, dtype=np.float64)
        else:
            coeffs = np.asarray(initial_coefficients, dtype=np.float64)
            if coeffs.shape != (order,):
                raise ValueError(f"initial_coefficients must have shape ({order},)")
            self._coefficients = coeffs.copy()
        self._p = np.eye(order, dtype=np.float64) * initial_p_scale
        self._updates = 0

    @property
    def coefficients(self) -> np.ndarray:
        """Current coefficient estimate (a copy; safe to hold)."""
        return self._coefficients.copy()

    @property
    def updates(self) -> int:
        """Number of observations absorbed so far."""
        return self._updates

    def update(self, regressors: np.ndarray, target: float) -> np.ndarray:
        """Absorb one observation ``(x_k, y_k)``; returns the new coefficients."""
        x = np.asarray(regressors, dtype=np.float64)
        if x.shape != (self.order,):
            raise ValueError(f"regressors must have shape ({self.order},), got {x.shape}")
        if not np.isfinite(x).all() or not math.isfinite(target):
            raise ValueError("regressors and target must be finite")
        px = self._p @ x
        gain_denominator = 1.0 + float(x @ px)
        self._p = self._p - px[:, None] * px[None, :] / gain_denominator
        # Symmetrize to fight numerical drift over long streams.
        self._p = (self._p + self._p.T) / 2.0
        prediction_error = float(x @ self._coefficients) - float(target)
        self._coefficients = self._coefficients - self._p @ (x * prediction_error)
        self._updates += 1
        return self.coefficients

    def seed_batch(self, design: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Initialize from a batch fit (the paper's "performed once" step).

        Sets ``P = (X^T X)^{-1}`` (regularized if singular) and the
        coefficients to the batch least-squares solution, after which
        :meth:`update` continues incrementally.
        """
        design = np.asarray(design, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if design.ndim != 2 or design.shape[1] != self.order:
            raise ValueError(f"design must be (m, {self.order})")
        if targets.shape != (design.shape[0],):
            raise ValueError("targets must align with design rows")
        gram = design.T @ design
        # Tikhonov nudge keeps P well-defined for collinear regressors.
        gram += np.eye(self.order) * 1e-9 * max(np.trace(gram), 1.0)
        self._p = np.linalg.inv(gram)
        self._coefficients = self._p @ (design.T @ targets)
        self._updates += design.shape[0]
        return self.coefficients

    # ------------------------------------------------------------------
    # checkpointing (used by the live serving layer, repro.serve)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete estimator state as plain arrays, for checkpointing.

        The returned dict round-trips bit-exactly through
        :meth:`from_state`: a restored estimator continues the update
        recursion from the identical ``P`` matrix and coefficients, which
        is what makes kill-and-resume runs byte-equivalent.
        """
        return {
            "order": self.order,
            "coefficients": self._coefficients.copy(),
            "p": self._p.copy(),
            "updates": self._updates,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RecursiveLeastSquares":
        """Reconstruct an estimator from a :meth:`state_dict` snapshot."""
        rls = cls(int(state["order"]))
        coefficients = np.asarray(state["coefficients"], dtype=np.float64)
        p = np.asarray(state["p"], dtype=np.float64)
        if coefficients.shape != (rls.order,) or p.shape != (rls.order, rls.order):
            raise ValueError("state arrays do not match the stored order")
        rls._coefficients = coefficients.copy()
        rls._p = p.copy()
        rls._updates = int(state["updates"])
        return rls

    def __repr__(self) -> str:
        return (
            f"RecursiveLeastSquares(order={self.order}, updates={self._updates}, "
            f"coefficients={np.round(self._coefficients, 4).tolist()})"
        )

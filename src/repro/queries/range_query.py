"""Range queries over the clustered network (paper §7.2).

A range query ``(q, r)`` retrieves every node whose feature is within
distance *r* of the query feature *q*.  The clustered algorithm:

1. The initiator routes the query to its cluster root over the cluster
   tree.
2. The root fans the query out over the backbone tree.  The M-tree's top
   level extends over the backbone: at build time every backbone edge
   direction stores a covering ball ``(F, R)`` for *all members of all
   clusters* on its far side, so distribution itself prunes — an entire
   backbone subtree is skipped when ``d(q, F) > r + R`` (triangle
   inequality; the paper's index is "a distributed M-tree … physically
   embedded on the communication graph", and this is its root level).
3. Each visited root applies **δ-compactness pruning**: with ``R_root``
   the root's covering radius (≤ δ/2 for ELink clusterings, by the δ/2
   join rule), the whole cluster is *excluded* when ``d(q, F_root) > r +
   R_root`` and *included* when ``d(q, F_root) ≤ r - R_root`` — both pure
   triangle inequality, no further messages.
4. Only boundary clusters descend the M-tree: a parent forwards the query
   to child *j* unless ``|d(q, F_i^R) - d(F_i^R, F_j^R)| > r + R_j``
   (prune) and stops descending below *j* when
   ``d(q, F_i^R) + d(F_i^R, F_j^R) ≤ r - R_j`` (include whole subtree).
5. Results aggregate back along the traversed edges.

Cost accounting: every traversed cluster-tree edge and every backbone-path
hop is charged ``dim+1`` values for the query going down and 1 value for
the aggregate coming back — the same convention the TAG baseline is
charged under, so the comparison in Figs 14–15 is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_non_negative
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.backbone import BackboneTree
from repro.index.mtree import MTreeIndex
from repro.sim.messages import CATEGORY_QUERY
from repro.sim.stats import MessageStats


@dataclass
class RangeQueryResult:
    """Result set plus the communication spent to obtain it."""

    matches: set[Hashable]
    messages: int
    clusters_pruned: int  # clusters answered by δ-compactness alone
    clusters_included: int  # clusters fully included without descent
    clusters_descended: int  # clusters that needed the M-tree


class RangeQueryEngine:
    """Executes range queries over a clustering + M-tree + backbone."""

    def __init__(
        self,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        backbone: BackboneTree,
    ):
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self.backbone = backbone
        self._dim = int(next(iter(self.features.values())).shape[0])
        # Directional backbone summaries: (a, b) -> covering ball of every
        # cluster member on b's side of the edge.  Built once; the build
        # would cost one (dim+1) message per backbone edge direction, which
        # the clustering experiments account with the backbone build.
        self._subtree_ball = self._build_backbone_summaries()

    def _build_backbone_summaries(self) -> dict[tuple[Hashable, Hashable], tuple[np.ndarray, float]]:
        balls: dict[tuple[Hashable, Hashable], tuple[np.ndarray, float]] = {}
        tree = self.backbone.tree
        for a, b in tree.edges:
            for src, dst in ((a, b), (b, a)):
                # Roots on dst's side when edge (src, dst) is removed.
                side = self._side_roots(src, dst)
                center = self.mtree.routing_feature[dst]
                radius = 0.0
                for root in side:
                    d = self.metric.distance(center, self.mtree.routing_feature[root])
                    radius = max(radius, d + self.mtree.covering_radius[root])
                balls[(src, dst)] = (center, radius)
        return balls

    def _side_roots(self, src: Hashable, dst: Hashable) -> set[Hashable]:
        """Backbone roots reachable from *dst* without crossing (src, dst)."""
        seen = {dst}
        stack = [dst]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor == src and current == dst:
                    continue
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def query(
        self, q: np.ndarray, radius: float, initiator: Hashable
    ) -> RangeQueryResult:
        """Run a range query from *initiator*; returns matches and cost."""
        require_non_negative(radius, "radius")
        q = np.asarray(q, dtype=np.float64)
        stats = MessageStats()
        query_values = self._dim + 1

        # 1. Initiator -> its cluster root over the cluster tree.
        origin_root = self.clustering.root_of(initiator)
        entry_hops = len(self.clustering.path_to_root(initiator)) - 1
        if entry_hops:
            self._charge(stats, query_values, entry_hops)
            self._charge(stats, 1, entry_hops)  # results back to initiator

        # 2. Fan out over the backbone tree, pruning whole backbone
        #    subtrees whose covering ball cannot intersect the query ball.
        #    Only traversed edges carry the query down and the aggregate
        #    back.
        visited_roots: list[Hashable] = [origin_root]
        stack: list[Hashable] = [origin_root]
        seen = {origin_root}
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                center, ball_radius = self._subtree_ball[(current, neighbor)]
                if self.metric.distance(q, center) > radius + ball_radius:
                    continue  # the entire far-side subtree is out of range
                hops = self.backbone.edge_hops(current, neighbor)
                self._charge(stats, query_values, hops)
                self._charge(stats, 1, hops)
                visited_roots.append(neighbor)
                stack.append(neighbor)

        # 3 + 4. Per-cluster pruning and descent at the visited roots.
        matches: set[Hashable] = set()
        pruned = included = descended = 0
        for root in visited_roots:
            d_root = self.metric.distance(q, self.mtree.routing_feature[root])
            r_root = self.mtree.covering_radius[root]
            if d_root > radius + r_root:
                pruned += 1
                continue
            if d_root <= radius - r_root:
                included += 1
                matches.update(self.clustering.members(root))
                continue
            descended += 1
            matches.update(self._descend(q, radius, root, stats, query_values))

        return RangeQueryResult(matches, stats.total_values, pruned, included, descended)

    # ------------------------------------------------------------------
    def _descend(
        self,
        q: np.ndarray,
        radius: float,
        root: Hashable,
        stats: MessageStats,
        query_values: int,
    ) -> set[Hashable]:
        """M-tree descent within one cluster; charges visited tree edges."""
        matches: set[Hashable] = set()
        stack: list[Hashable] = [root]
        while stack:
            node = stack.pop()
            d_node = self.metric.distance(q, self.mtree.routing_feature[node])
            if d_node <= radius:
                matches.add(node)
            for child, (d_parent_child, r_child) in self.mtree.child_info[node].items():
                # Parent-side exclusion (no message): triangle inequality on
                # the stored child table.
                if abs(d_node - d_parent_child) > radius + r_child:
                    continue
                # Parent-side full inclusion: the whole child subtree hits.
                if d_node + d_parent_child <= radius - r_child:
                    matches.update(self._subtree(child))
                    # One confirmation message still flows down and back.
                    self._charge(stats, query_values, 1)
                    self._charge(stats, 1, 1)
                    continue
                self._charge(stats, query_values, 1)  # query down one edge
                self._charge(stats, 1, 1)  # aggregate back up
                stack.append(child)
        return matches

    def _subtree(self, node: Hashable) -> set[Hashable]:
        out: set[Hashable] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            out.add(current)
            stack.extend(self.mtree.children[current])
        return out

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)


def brute_force_range(
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    q: np.ndarray,
    radius: float,
) -> set[Hashable]:
    """Ground-truth answer set, for correctness checks in tests."""
    return {
        node
        for node, feature in features.items()
        if metric.distance(q, feature) <= radius
    }

"""Range queries over the clustered network (paper §7.2).

A range query ``(q, r)`` retrieves every node whose feature is within
distance *r* of the query feature *q*.  The clustered algorithm:

1. The initiator routes the query to its cluster root over the cluster
   tree.
2. The root fans the query out over the backbone tree.  The M-tree's top
   level extends over the backbone: at build time every backbone edge
   direction stores a covering ball ``(F, R)`` for *all members of all
   clusters* on its far side, so distribution itself prunes — an entire
   backbone subtree is skipped when ``d(q, F) > r + R`` (triangle
   inequality; the paper's index is "a distributed M-tree … physically
   embedded on the communication graph", and this is its root level).
3. Each visited root applies **δ-compactness pruning**: with ``R_root``
   the root's covering radius (≤ δ/2 for ELink clusterings, by the δ/2
   join rule), the whole cluster is *excluded* when ``d(q, F_root) > r +
   R_root`` and *included* when ``d(q, F_root) ≤ r - R_root`` — both pure
   triangle inequality, no further messages.
4. Only boundary clusters descend the M-tree: a parent forwards the query
   to child *j* unless ``|d(q, F_i^R) - d(F_i^R, F_j^R)| > r + R_j``
   (prune) and stops descending below *j* when
   ``d(q, F_i^R) + d(F_i^R, F_j^R) ≤ r - R_j`` (include whole subtree).
5. Results aggregate back along the traversed edges.

Cost accounting: every traversed cluster-tree edge and every backbone-path
hop is charged ``dim+1`` values for the query going down and 1 value for
the aggregate coming back — the same convention the TAG baseline is
charged under, so the comparison in Figs 14–15 is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_non_negative
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.backbone import BackboneTree
from repro.index.mtree import MTreeIndex
from repro.obs.metrics import MetricsRegistry
from repro.sim.messages import CATEGORY_QUERY
from repro.sim.stats import MessageStats

#: Drop reasons recorded by the degraded-mode query paths.
DROP_DEAD_RELAY = "dead_relay"
DROP_DEAD_ROOT = "dead_root"
DROP_NO_SURVIVORS = "no_survivors"


@dataclass
class RangeQueryResult:
    """Result set plus the communication spent to obtain it."""

    matches: set[Hashable]
    messages: int
    clusters_pruned: int  # clusters answered by δ-compactness alone
    clusters_included: int  # clusters fully included without descent
    clusters_descended: int  # clusters that needed the M-tree
    #: Fraction of surviving nodes whose cluster the query could consult
    #: (1.0 unless crashes severed parts of the backbone).
    coverage: float = 1.0
    #: Query deliveries dropped on degraded paths (dead relays/roots);
    #: per-reason detail is mirrored into the engine's metrics registry.
    drops: int = 0


class RangeQueryEngine:
    """Executes range queries over a clustering + M-tree + backbone.

    Degraded operation after fail-stop crashes: pass ``dead`` (the crashed
    node set) and the engine returns **partial results with a coverage
    fraction** instead of crashing — dead backbone relays cut off their
    far-side clusters (counted as uncovered), dead nodes are filtered from
    match sets, and a query whose own representative died is answered from
    the surviving cluster members alone.  With ``root_replacements``
    (re-elected representatives, after
    :meth:`~repro.index.backbone.BackboneTree.reroute_around` repaired the
    backbone) the replacement stands in for the dead root, pruning with a
    conservative covering ball (replacement-to-old-root distance added to
    the old covering radius keeps the triangle-inequality exclusions
    sound).  Both parameters default to empty: the fault-free path is
    untouched.

    Every degraded-path loss is accounted twice over, consistently: the
    per-query ``MessageStats`` records it under ``drops_by_reason``
    (``dead_relay`` / ``dead_root`` / ``no_survivors``) and, when a
    *metrics* registry is supplied, the same reasons increment
    ``queries.drops.<reason>`` counters — so a service-level registry and
    the per-query stats always agree.
    """

    def __init__(
        self,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        backbone: BackboneTree,
        *,
        dead: "set[Hashable] | frozenset[Hashable] | None" = None,
        root_replacements: Mapping[Hashable, Hashable] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self.backbone = backbone
        self._metrics = metrics
        self._dead = frozenset(dead) if dead else frozenset()
        self._replacements = dict(root_replacements) if root_replacements else {}
        self._replaced_by = {repl: orig for orig, repl in self._replacements.items()}
        self._dim = int(next(iter(self.features.values())).shape[0])
        # Directional backbone summaries: (a, b) -> covering ball of every
        # cluster member on b's side of the edge.  Built once; the build
        # would cost one (dim+1) message per backbone edge direction, which
        # the clustering experiments account with the backbone build.
        self._subtree_ball = self._build_backbone_summaries()

    def _build_backbone_summaries(self) -> dict[tuple[Hashable, Hashable], tuple[np.ndarray, float]]:
        balls: dict[tuple[Hashable, Hashable], tuple[np.ndarray, float]] = {}
        tree = self.backbone.tree
        for a, b in tree.edges:
            for src, dst in ((a, b), (b, a)):
                # Roots on dst's side when edge (src, dst) is removed.
                side = self._side_roots(src, dst)
                center = self.mtree.routing_feature[dst]
                radius = 0.0
                for root in side:
                    root_center, root_radius = self._routing_ball(root)
                    d = self.metric.distance(center, root_center)
                    radius = max(radius, d + root_radius)
                balls[(src, dst)] = (center, radius)
        return balls

    def _side_roots(self, src: Hashable, dst: Hashable) -> set[Hashable]:
        """Backbone roots reachable from *dst* without crossing (src, dst)."""
        seen = {dst}
        stack = [dst]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor == src and current == dst:
                    continue
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def fanout_preview(
        self, q: np.ndarray, radius: float, initiator: Hashable
    ) -> tuple[int, list[Hashable], int]:
        """Dry-run the backbone fan-out without charging messages.

        Returns ``(entry_hops, visited_roots, backbone_hops)`` — the
        cluster-tree hops from *initiator* to its root, the backbone roots
        the query would reach after directional-summary pruning, and the
        total backbone hops those traversals cost.  This is the exact
        fan-out term of the query's message cost; the planner
        (:mod:`repro.queries.planner`) uses it to estimate the M-tree
        plan's cost from the same statistics the engine itself prunes
        with, leaving only the per-cluster descent cost to be modeled.
        """
        q = np.asarray(q, dtype=np.float64)
        origin_root = self.clustering.root_of(initiator)
        entry_hops = len(self.clustering.path_to_root(initiator)) - 1
        start = self._replacements.get(origin_root, origin_root)
        visited: list[Hashable] = [start]
        backbone_hops = 0
        stack = [start]
        seen = {start}
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if self._dead and neighbor in self._dead:
                    continue  # the walk drops at dead relays, as query() does
                center, ball_radius = self._ball_toward(current, neighbor)
                if self.metric.distance(q, center) > radius + ball_radius:
                    continue
                backbone_hops += self.backbone.edge_hops(current, neighbor)
                visited.append(neighbor)
                stack.append(neighbor)
        return entry_hops, visited, backbone_hops

    def query(
        self, q: np.ndarray, radius: float, initiator: Hashable
    ) -> RangeQueryResult:
        """Run a range query from *initiator*; returns matches and cost."""
        require_non_negative(radius, "radius")
        q = np.asarray(q, dtype=np.float64)
        stats = MessageStats()
        query_values = self._dim + 1
        dead = self._dead

        # 1. Initiator -> its cluster root over the cluster tree.
        origin_root = self.clustering.root_of(initiator)
        if dead and origin_root in dead and origin_root not in self._replacements:
            # Unrepaired dead representative: the initiator cannot enter
            # the backbone, so the query is answered by flooding the
            # surviving members of its own cluster.
            return self._local_only(q, radius, origin_root, stats, query_values)
        entry_hops = len(self.clustering.path_to_root(initiator)) - 1
        if entry_hops:
            self._charge(stats, query_values, entry_hops)
            self._charge(stats, 1, entry_hops)  # results back to initiator
        start = self._replacements.get(origin_root, origin_root)

        # 2. Fan out over the backbone tree, pruning whole backbone
        #    subtrees whose covering ball cannot intersect the query ball.
        #    Only traversed edges carry the query down and the aggregate
        #    back.  Dead backbone relays cut off their far side: those
        #    clusters go uncovered rather than raising.
        lost_roots: set[Hashable] = set()
        visited_roots: list[Hashable] = [start]
        stack: list[Hashable] = [start]
        seen = {start}
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if dead and neighbor in dead:
                    # The query copy toward this relay is undeliverable.
                    self._drop(stats, DROP_DEAD_RELAY)
                    lost_roots.update(self._side_roots(current, neighbor))
                    continue
                center, ball_radius = self._ball_toward(current, neighbor)
                if self.metric.distance(q, center) > radius + ball_radius:
                    continue  # the entire far-side subtree is out of range
                hops = self.backbone.edge_hops(current, neighbor)
                self._charge(stats, query_values, hops)
                self._charge(stats, 1, hops)
                visited_roots.append(neighbor)
                stack.append(neighbor)

        # 3 + 4. Per-cluster pruning and descent at the visited roots.
        matches: set[Hashable] = set()
        pruned = included = descended = 0
        for root in visited_roots:
            center, r_root = self._routing_ball(root)
            d_root = self.metric.distance(q, center)
            if d_root > radius + r_root:
                pruned += 1
                continue
            if d_root <= radius - r_root:
                included += 1
                matches.update(self._members_of(root))
                continue
            descended += 1
            descend_root = self._replaced_by.get(root, root)
            matches.update(self._descend(q, radius, descend_root, stats, query_values))

        if dead:
            matches.difference_update(dead)
        coverage = self._coverage_after_losses(lost_roots)
        return RangeQueryResult(
            matches,
            stats.total_values,
            pruned,
            included,
            descended,
            coverage,
            stats.total_drops,
        )

    # ------------------------------------------------------------------
    # Degraded-operation helpers (all no-ops without dead/replacements).
    def _routing_ball(self, root: Hashable) -> tuple[np.ndarray, float]:
        """Pruning ball of *root*, conservative for re-elected roots.

        A replacement's own M-tree entry only covers its subtree, so its
        cluster ball is the dead root's ball enlarged by the feature
        distance between the two — sound by the triangle inequality.
        """
        center = self.mtree.routing_feature[root]
        orig = self._replaced_by.get(root)
        if orig is None:
            return center, self.mtree.covering_radius[root]
        slack = self.metric.distance(center, self.mtree.routing_feature[orig])
        return center, slack + self.mtree.covering_radius[orig]

    def _ball_toward(
        self, src: Hashable, dst: Hashable
    ) -> tuple[np.ndarray, float]:
        ball = self._subtree_ball.get((src, dst))
        if ball is not None:
            return ball
        # Edge created by backbone repair after this engine was built: no
        # precomputed summary, so never prune across it.
        return np.zeros(self._dim), float("inf")

    def _members_of(self, root: Hashable):
        members = self.clustering.members(self._replaced_by.get(root, root))
        if self._dead:
            return [m for m in members if m not in self._dead]
        return members

    def _alive_total(self) -> int:
        return sum(1 for n in self.clustering.assignment if n not in self._dead)

    def _coverage_after_losses(self, lost_roots: set[Hashable]) -> float:
        if not lost_roots:
            return 1.0
        alive_total = self._alive_total()
        if alive_total == 0:
            # No survivors at all: nothing was (or could be) covered.
            return 0.0
        uncovered = 0
        for root in lost_roots:
            orig = self._replaced_by.get(root, root)
            uncovered += sum(
                1 for m in self.clustering.members(orig) if m not in self._dead
            )
        return 1.0 - uncovered / alive_total

    def _local_only(
        self,
        q: np.ndarray,
        radius: float,
        origin_root: Hashable,
        stats: MessageStats,
        query_values: int,
    ) -> RangeQueryResult:
        """Answer from the initiator's own surviving cluster members."""
        self._drop(stats, DROP_DEAD_ROOT)
        alive = [
            m for m in self.clustering.members(origin_root) if m not in self._dead
        ]
        for _ in range(max(len(alive) - 1, 0)):
            self._charge(stats, query_values, 1)
            self._charge(stats, 1, 1)
        matches = {
            m for m in alive if self.metric.distance(q, self.features[m]) <= radius
        }
        alive_total = self._alive_total()
        # A fully-dead network covers nothing — 0.0, never 1.0 (a 0/0 here
        # used to claim full coverage for an unanswerable query).
        coverage = len(alive) / alive_total if alive_total else 0.0
        # Only count a descent when surviving members actually answered;
        # an empty cluster consulted nothing (this used to report 1).
        descended = 1 if alive else 0
        if not alive:
            self._drop(stats, DROP_NO_SURVIVORS)
        return RangeQueryResult(
            matches, stats.total_values, 0, 0, descended, coverage, stats.total_drops
        )

    # ------------------------------------------------------------------
    def _descend(
        self,
        q: np.ndarray,
        radius: float,
        root: Hashable,
        stats: MessageStats,
        query_values: int,
    ) -> set[Hashable]:
        """M-tree descent within one cluster; charges visited tree edges."""
        matches: set[Hashable] = set()
        stack: list[Hashable] = [root]
        while stack:
            node = stack.pop()
            d_node = self.metric.distance(q, self.mtree.routing_feature[node])
            if d_node <= radius:
                matches.add(node)
            for child, (d_parent_child, r_child) in self.mtree.child_info[node].items():
                # Parent-side exclusion (no message): triangle inequality on
                # the stored child table.
                if abs(d_node - d_parent_child) > radius + r_child:
                    continue
                # Parent-side full inclusion: the whole child subtree hits.
                if d_node + d_parent_child <= radius - r_child:
                    matches.update(self._subtree(child))
                    # One confirmation message still flows down and back.
                    self._charge(stats, query_values, 1)
                    self._charge(stats, 1, 1)
                    continue
                self._charge(stats, query_values, 1)  # query down one edge
                self._charge(stats, 1, 1)  # aggregate back up
                stack.append(child)
        return matches

    def _subtree(self, node: Hashable) -> set[Hashable]:
        out: set[Hashable] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            out.add(current)
            stack.extend(self.mtree.children[current])
        return out

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)

    def _drop(self, stats: MessageStats, reason: str) -> None:
        """Record one degraded-path drop in both accounting systems."""
        stats.drop("query", reason)
        if self._metrics is not None:
            self._metrics.counter(f"queries.drops.{reason}").inc()


def brute_force_range(
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    q: np.ndarray,
    radius: float,
) -> set[Hashable]:
    """Ground-truth answer set, for correctness checks in tests."""
    return {
        node
        for node, feature in features.items()
        if metric.distance(q, feature) <= radius
    }

"""TAG aggregation baseline for range queries (paper §8.3).

TAG (TinyDB's Tiny AGgregation service) answers every query over a fixed
overlay spanning tree rooted at the base station: the *distribution* phase
pushes the query down every tree edge, the *collection* phase aggregates
partial results up every tree edge.  Its per-query cost is therefore fixed
— the paper notes it equals twice the number of spanning-tree edges — and
independent of how selective the query is, which is exactly what the
clustered algorithm beats.

For a fair comparison with the clustered engine we charge the same value
counts: ``dim+1`` values per edge for the query going down and 1 value per
edge for the aggregate coming up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_non_negative
from repro.features.metrics import Metric


@dataclass
class TagQueryResult:
    """Result set plus the (fixed) communication cost."""

    matches: set[Hashable]
    messages: int


class TagEngine:
    """Overlay-tree aggregation engine (distribute + collect)."""

    def __init__(
        self,
        graph: nx.Graph,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        base_station: Hashable | None = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.base_station = base_station if base_station is not None else next(iter(graph.nodes))
        if self.base_station not in graph:
            raise KeyError(f"base station {self.base_station!r} not in graph")
        self.overlay = nx.bfs_tree(graph, self.base_station)
        self._dim = int(next(iter(self.features.values())).shape[0])

    @property
    def tree_edges(self) -> int:
        """Number of edges in the overlay tree."""
        return self.overlay.number_of_edges()

    def per_query_cost(self) -> int:
        """Fixed cost: (dim+1) down + 1 up on every overlay edge."""
        return (self._dim + 2) * self.tree_edges

    def query(self, q: np.ndarray, radius: float) -> TagQueryResult:
        """Evaluate a range query by full distribute-and-collect."""
        require_non_negative(radius, "radius")
        q = np.asarray(q, dtype=np.float64)
        matches = {
            node
            for node, feature in self.features.items()
            if self.metric.distance(q, feature) <= radius
        }
        return TagQueryResult(matches, self.per_query_cost())

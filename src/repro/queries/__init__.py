"""Query processing over the clustered network (paper §7.2–7.3, §8.6)."""

from repro.queries.knn import KnnQueryEngine, KnnResult, brute_force_knn
from repro.queries.path_query import (
    PathQueryEngine,
    PathQueryResult,
    bfs_flood_path,
    maximin_safe_path,
)
from repro.queries.range_query import (
    RangeQueryEngine,
    RangeQueryResult,
    brute_force_range,
)
from repro.queries.tag import TagEngine, TagQueryResult

__all__ = [
    "KnnQueryEngine",
    "KnnResult",
    "PathQueryEngine",
    "PathQueryResult",
    "RangeQueryEngine",
    "RangeQueryResult",
    "TagEngine",
    "TagQueryResult",
    "bfs_flood_path",
    "brute_force_knn",
    "brute_force_range",
    "maximin_safe_path",
]

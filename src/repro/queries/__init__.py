"""Query processing over the clustered network (paper §7.2–7.3, §8.6).

Besides the per-strategy engines (M-tree pruning, backbone scans, TAG
flooding), the package ships a serving layer: a cost-model
:class:`~repro.queries.planner.QueryPlanner` that picks the cheapest
strategy per query, a generation-swept
:class:`~repro.queries.result_cache.QueryResultCache`, and the
``repro query-bench`` load-replay driver in :mod:`repro.queries.load`.
See ``docs/QUERYING.md`` for the full guide.
"""

from repro.queries.knn import KnnQueryEngine, KnnResult, brute_force_knn
from repro.queries.load import (
    MIXES,
    ScenarioSpec,
    WorkloadSpec,
    build_scenario,
    generate_workload,
    replay,
    validate_queries_block,
    warm_cache_pass,
)
from repro.queries.path_query import (
    PathQueryEngine,
    PathQueryResult,
    bfs_flood_path,
    maximin_safe_path,
)
from repro.queries.planner import (
    PLAN_BACKENDS,
    PlannedResult,
    QueryPlan,
    QueryPlanner,
    canonical_answer,
)
from repro.queries.range_query import (
    RangeQueryEngine,
    RangeQueryResult,
    brute_force_range,
)
from repro.queries.result_cache import QueryResultCache
from repro.queries.tag import TagEngine, TagQueryResult

__all__ = [
    "KnnQueryEngine",
    "KnnResult",
    "MIXES",
    "PLAN_BACKENDS",
    "PathQueryEngine",
    "PathQueryResult",
    "PlannedResult",
    "QueryPlan",
    "QueryPlanner",
    "QueryResultCache",
    "RangeQueryEngine",
    "RangeQueryResult",
    "ScenarioSpec",
    "TagEngine",
    "TagQueryResult",
    "WorkloadSpec",
    "bfs_flood_path",
    "brute_force_knn",
    "brute_force_range",
    "build_scenario",
    "canonical_answer",
    "generate_workload",
    "maximin_safe_path",
    "replay",
    "validate_queries_block",
    "warm_cache_pass",
]

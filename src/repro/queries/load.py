"""Seed-deterministic query workloads and the ``repro query-bench`` driver.

The planner (:mod:`repro.queries.planner`) makes per-query cost choices;
this module measures what those choices buy under load.  A *workload* is
a reproducible list of range/k-NN/path queries: query centers follow a
**zipfian popularity law** over the node population (rank nodes by
``repr``, give rank *i* probability ``∝ 1/(i+1)^s`` — a handful of hot
regions get most of the traffic, the tail stays warm, which is exactly
the regime result caching pays off in), radii/k/γ cycle through small
mixed sets, and the range/knn/path operation mix comes from a named
profile in :data:`MIXES`.  Everything derives from
``numpy.random.default_rng(seed)``, so the same spec always replays the
same queries, in the same order, on any machine.

Replay is *serial* (one planner, one process — the latency baseline) or
*concurrent* (``--jobs N`` shards the workload over the warm process
pool from :mod:`repro.perf.pool`; each worker memoizes the built scenario
via :func:`repro.perf.memo.process_memo`, so it pays the
cluster/index/planner build once, not per shard).  Both paths report
**p50/p99 latency, queries/sec, and messages/query**, plus plan-choice
and cache counters, into the BENCH schema-5 ``queries`` block written by
:func:`run_bench` (merged into an existing ``BENCH_results.json`` when
one is present).  A *warm* pass re-replays the workload against the
now-populated result cache (hits must appear), then forces a maintenance
invalidation — a node removal bumps the structure generation — and
audits every subsequently served answer against a cache-bypassed
recompute: ``stale_answers`` counts mismatches, and the serving contract
requires **zero**.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Hashable, Mapping

import numpy as np

from repro._validation import require_int_at_least

#: Operation mixes (fractions of range/knn/path traffic) the bench sweeps.
MIXES: dict[str, dict[str, float]] = {
    "range-heavy": {"range": 0.7, "knn": 0.2, "path": 0.1},
    "balanced": {"range": 0.34, "knn": 0.33, "path": 0.33},
    "path-knn": {"range": 0.2, "knn": 0.4, "path": 0.4},
}

#: BENCH artifact schema this module emits (schema 3 + the ``queries``
#: block; see docs/QUERYING.md for the block's layout).
BENCH_SCHEMA = 5


@dataclass(frozen=True)
class ScenarioSpec:
    """The serving stack a workload replays against (picklable)."""

    n: int = 60  # synthetic-dataset node count
    seed: int = 42  # dataset seed
    delta: float = 0.4  # ELink δ (a dozen-odd clusters on the default dataset)
    cache_capacity: int = 4096  # result-cache entries


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible query stream (picklable)."""

    mix: str  # key into MIXES
    queries: int = 100
    seed: int = 0
    zipf_s: float = 1.1  # popularity skew (higher = hotter head)
    radii: tuple[float, ...] = (0.5, 1.0, 2.0)
    k_values: tuple[int, ...] = (1, 5, 10)
    gamma: float = 0.5  # safe-path clearance


@dataclass(frozen=True)
class Query:
    """One generated query; ``params`` match the planner method kwargs."""

    op: str  # "range" | "knn" | "path"
    params: tuple[tuple[str, Any], ...]  # sorted (name, value) pairs

    def kwargs(self) -> dict[str, Any]:
        """The planner call kwargs (feature tuples back to arrays)."""
        params = dict(self.params)
        for key in ("q", "danger"):
            if key in params:
                params[key] = np.asarray(params[key], dtype=np.float64)
        return params


def build_scenario(spec: ScenarioSpec) -> dict[str, Any]:
    """Build the full serving stack for *spec* (deterministic).

    Returns a dict with the planner, its result cache, the maintenance
    session whose ``generation`` drives invalidation, and the raw parts
    (graph/clustering/features/metric/mtree/backbone) for tests.
    """
    from repro.core import ELinkConfig, run_elink
    from repro.core.maintenance import MaintenanceSession
    from repro.datasets.synthetic import generate_synthetic_dataset
    from repro.index import build_backbone, build_mtree
    from repro.obs.metrics import MetricsRegistry
    from repro.queries.planner import QueryPlanner
    from repro.queries.result_cache import QueryResultCache

    dataset = generate_synthetic_dataset(spec.n, seed=spec.seed)
    metric = dataset.metric()
    features = dataset.features
    graph = dataset.topology.graph
    clustering = run_elink(
        dataset.topology, features, metric, ELinkConfig(delta=spec.delta)
    ).clustering
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(graph, clustering)
    metrics = MetricsRegistry()
    cache = QueryResultCache(spec.cache_capacity, metrics=metrics)
    session = MaintenanceSession(
        graph, clustering, features, metric, spec.delta, spec.delta / 8
    )
    planner = QueryPlanner(
        graph,
        clustering,
        features,
        metric,
        mtree,
        backbone,
        metrics=metrics,
        cache=cache,
        generation=lambda: session.generation,
    )
    return {
        "planner": planner,
        "cache": cache,
        "session": session,
        "metrics": metrics,
        "graph": graph,
        "clustering": clustering,
        "features": features,
        "metric": metric,
        "mtree": mtree,
        "backbone": backbone,
    }


def generate_workload(
    nodes: list[Hashable],
    features: Mapping[Hashable, np.ndarray],
    spec: WorkloadSpec,
) -> list[Query]:
    """The deterministic query list for *spec* over *nodes*.

    Nodes are ranked by ``repr`` (a machine-independent total order);
    query centers, initiators, and path endpoints all draw from the same
    zipfian rank distribution, so the popular region of the network is
    both asked about and asked from.
    """
    if spec.mix not in MIXES:
        raise KeyError(f"unknown mix {spec.mix!r}; choose from {sorted(MIXES)}")
    require_int_at_least(spec.queries, 1, "queries")
    mix = MIXES[spec.mix]
    ranked = sorted(nodes, key=repr)
    weights = np.array([1.0 / (i + 1) ** spec.zipf_s for i in range(len(ranked))])
    weights /= weights.sum()
    rng = np.random.default_rng(spec.seed)
    ops = rng.choice(
        sorted(mix), size=spec.queries, p=[mix[op] for op in sorted(mix)]
    )

    def pick() -> Hashable:
        return ranked[int(rng.choice(len(ranked), p=weights))]

    def center_feature() -> tuple[float, ...]:
        return tuple(np.asarray(features[pick()], dtype=float).tolist())

    queries: list[Query] = []
    for op in ops:
        if op == "range":
            params: dict[str, Any] = {
                "q": center_feature(),
                "radius": float(spec.radii[int(rng.integers(len(spec.radii)))]),
                "initiator": pick(),
            }
        elif op == "knn":
            params = {
                "q": center_feature(),
                "k": int(spec.k_values[int(rng.integers(len(spec.k_values)))]),
                "initiator": pick(),
            }
        else:  # path
            params = {
                "source": pick(),
                "destination": pick(),
                "danger": center_feature(),
                "gamma": spec.gamma,
            }
        queries.append(Query(op, tuple(sorted(params.items()))))
    return queries


def _run_queries(
    planner: Any, queries: list[Query]
) -> tuple[list[float], int, int, dict[str, int]]:
    """(per-query latencies, total messages, cache hits, plan counts)."""
    latencies: list[float] = []
    messages = 0
    cached = 0
    plans: dict[str, int] = {}
    for query in queries:
        t0 = time.perf_counter()
        planned = getattr(planner, query.op)(**query.kwargs())
        latencies.append(time.perf_counter() - t0)
        messages += planned.messages
        cached += 1 if planned.cached else 0
        plans[planned.plan.backend] = plans.get(planned.plan.backend, 0) + 1
    return latencies, messages, cached, plans


def _percentiles(latencies: list[float]) -> dict[str, float]:
    return {
        "p50_ms": round(float(np.percentile(latencies, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(latencies, 99)) * 1e3, 3),
    }


def replay(planner: Any, queries: list[Query]) -> dict[str, Any]:
    """Replay *queries* through *planner*; returns the per-run report.

    Latencies are wall-clock per query (cache hits included — they are
    what a client would see); ``messages_per_query`` averages the actual
    network cost, so cache hits pull it down.
    """
    start = time.perf_counter()
    latencies, messages, cached, plans = _run_queries(planner, queries)
    elapsed = time.perf_counter() - start
    return {
        "count": len(queries),
        **_percentiles(latencies),
        "qps": round(len(queries) / elapsed, 1) if elapsed > 0 else None,
        "messages_per_query": round(messages / len(queries), 1),
        "plans": dict(sorted(plans.items())),
        "cache_hits": cached,
    }


def _replay_shard(
    scenario: ScenarioSpec, workload: WorkloadSpec, lo: int, hi: int
) -> tuple[list[float], int, int]:
    """Pool worker: replay queries [lo, hi) of *workload* on *scenario*.

    The built scenario is memoized per process under its spec, so every
    shard a worker executes after its first reuses the same planner —
    the same warm-context contract the experiment runner's trials use.
    """
    from repro.perf.memo import process_memo

    ctx = process_memo(("query-bench", scenario), lambda: build_scenario(scenario))
    queries = generate_workload(list(ctx["graph"].nodes), ctx["features"], workload)
    latencies, messages, cached, _plans = _run_queries(ctx["planner"], queries[lo:hi])
    return latencies, messages, cached


def replay_concurrent(
    scenario: ScenarioSpec, workload: WorkloadSpec, jobs: int
) -> dict[str, Any]:
    """Replay *workload* sharded over a warm *jobs*-process pool."""
    from repro.perf.pool import create_pool

    require_int_at_least(jobs, 1, "jobs")
    total = workload.queries
    bounds = [(i * total // jobs, (i + 1) * total // jobs) for i in range(jobs)]
    bounds = [(lo, hi) for lo, hi in bounds if hi > lo]
    start = time.perf_counter()
    with create_pool(len(bounds)) as pool:
        futures = [
            pool.submit(_replay_shard, scenario, workload, lo, hi)
            for lo, hi in bounds
        ]
        outputs = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    latencies = [lat for lats, _m, _c in outputs for lat in lats]
    messages = sum(m for _lats, m, _c in outputs)
    cached = sum(c for _lats, _m, c in outputs)
    return {
        "count": total,
        "jobs": jobs,
        **_percentiles(latencies),
        "qps": round(total / elapsed, 1) if elapsed > 0 else None,
        "messages_per_query": round(messages / total, 1),
        "cache_hits": cached,
    }


def warm_cache_pass(ctx: dict[str, Any], queries: list[Query]) -> dict[str, Any]:
    """Re-replay against the warm cache, force an invalidation, audit freshness.

    Three phases: (1) a warm re-run of *queries* (the cache was populated
    by the cold run) counting hits; (2) a **forced maintenance
    invalidation** — one member node is removed through the maintenance
    session, which bumps the structure generation; (3) a freshness audit:
    every query is served again and compared against a cache-bypassed
    recompute of the same plan — a mismatch means a pre-invalidation
    cache entry leaked through.  ``stale_answers`` counts mismatches and
    the serving contract requires it to be 0 (the generation sweep in
    :mod:`repro.queries.result_cache` guarantees it).
    """
    from repro.queries.planner import canonical_answer

    planner, cache, session = ctx["planner"], ctx["cache"], ctx["session"]
    hits_before = cache.hits
    warm = replay(planner, queries)
    warm_hits = cache.hits - hits_before

    # Forced invalidation: removing a member changes membership, so the
    # session bumps its generation and the next planner call sweeps.
    victim = next(
        (
            node
            for node in sorted(session.assignment, key=repr)
            if node != session.assignment[node]  # prefer non-roots: cheap removal
        ),
        sorted(session.assignment, key=repr)[0],  # all-singleton clustering
    )
    generation_before = session.generation
    session.remove_node(victim)
    if session.generation <= generation_before:
        raise AssertionError("node removal must bump the structure generation")

    stale = 0
    for query in queries:
        served = getattr(planner, query.op)(**query.kwargs())
        recomputed = getattr(planner, query.op)(
            **query.kwargs(), backend=served.plan.backend
        )
        if canonical_answer(query.op, served.result) != canonical_answer(
            query.op, recomputed.result
        ):
            stale += 1
    return {
        "hits": warm_hits,
        "p50_ms": warm["p50_ms"],
        "messages_per_query": warm["messages_per_query"],
        "invalidations": cache.invalidations,
        "audited": len(queries),
        "stale_answers": stale,
    }


def validate_queries_block(block: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless *block* is a well-formed ``queries`` block."""
    for field in ("scenario", "mixes"):
        if field not in block:
            raise ValueError(f"queries block missing {field!r}")
    mixes = block["mixes"]
    if len(mixes) < 3:
        raise ValueError(f"queries block needs >= 3 mixes, got {sorted(mixes)}")
    for name, mix in mixes.items():
        if "serial" not in mix:
            raise ValueError(f"mix {name!r} missing the serial report")
        for report_name, report in mix.items():
            for field in ("p50_ms", "p99_ms", "qps", "messages_per_query"):
                if field not in report:
                    raise ValueError(f"{name}.{report_name} missing {field!r}")
    warm = block.get("warm")
    if warm is not None and warm.get("stale_answers", 0) != 0:
        raise ValueError(f"stale answers served: {warm['stale_answers']}")


def run_bench(
    scenario: ScenarioSpec,
    *,
    queries: int = 100,
    seed: int = 0,
    jobs: int = 1,
    mixes: list[str] | None = None,
    bench_out: str = "BENCH_results.json",
    no_bench: bool = False,
) -> dict[str, Any]:
    """Run the full query bench; returns (and optionally writes) the block.

    Sweeps every mix in :data:`MIXES` (or *mixes*): cold serial replay,
    an optional concurrent replay (*jobs* > 1), and — for the first mix —
    the warm-cache/forced-invalidation pass.  The resulting ``queries``
    block is merged into ``BENCH_results.json`` (preserving an existing
    runner payload, bumping its schema to :data:`BENCH_SCHEMA`) unless
    *no_bench* is set.
    """
    from repro.perf.meta import environment_metadata

    ctx = build_scenario(scenario)
    names = mixes if mixes is not None else sorted(MIXES)
    block: dict[str, Any] = {
        "scenario": {
            **asdict(scenario),
            "clusters": ctx["clustering"].num_clusters,
        },
        "workload": {"queries": queries, "seed": seed},
        "mixes": {},
    }
    nodes = list(ctx["graph"].nodes)
    for index, name in enumerate(names):
        spec = WorkloadSpec(mix=name, queries=queries, seed=seed)
        workload = generate_workload(nodes, ctx["features"], spec)
        entry: dict[str, Any] = {"serial": replay(ctx["planner"], workload)}
        if jobs > 1:
            entry["concurrent"] = replay_concurrent(scenario, spec, jobs)
        block["mixes"][name] = entry
        if index == 0:
            block["warm"] = warm_cache_pass(ctx, workload)
            # The forced invalidation removed a node from this scenario's
            # maintenance state; rebuild so later mixes see the pristine
            # structure (their numbers must not depend on mix order).
            ctx = build_scenario(scenario)
    validate_queries_block(block)

    if not no_bench:
        payload: dict[str, Any] = {}
        if os.path.exists(bench_out):
            try:
                with open(bench_out, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = {}
        if not payload:
            payload = {"environment": environment_metadata()}
        payload["schema"] = BENCH_SCHEMA
        payload["queries"] = block
        with open(bench_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return block


def main(argv: list[str] | None = None) -> int:
    """``repro query-bench`` entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro query-bench",
        description="replay seed-deterministic query workloads through the "
        "cost-model planner and record the BENCH schema-5 queries block",
    )
    parser.add_argument("--n", type=int, default=60, help="scenario node count")
    parser.add_argument("--seed", type=int, default=42, help="scenario dataset seed")
    parser.add_argument("--delta", type=float, default=0.4, help="clustering threshold")
    parser.add_argument(
        "--queries", type=int, default=100, help="queries per workload mix"
    )
    parser.add_argument(
        "--workload-seed", type=int, default=0, help="workload generator seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="also replay each mix sharded over an N-process warm pool",
    )
    parser.add_argument(
        "--mix",
        action="append",
        choices=sorted(MIXES),
        default=None,
        help="workload mix to run (repeatable; default: all mixes)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the scenario and workload (CI smoke profile)",
    )
    parser.add_argument(
        "--bench-out",
        default="BENCH_results.json",
        metavar="PATH",
        help="BENCH artifact to merge the queries block into",
    )
    parser.add_argument(
        "--no-bench", action="store_true", help="skip writing the benchmark artifact"
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    n, queries = args.n, args.queries
    if args.quick:
        n, queries = min(n, 40), min(queries, 40)
    scenario = ScenarioSpec(n=n, seed=args.seed, delta=args.delta)
    block = run_bench(
        scenario,
        queries=queries,
        seed=args.workload_seed,
        jobs=args.jobs,
        mixes=args.mix,
        bench_out=args.bench_out,
        no_bench=args.no_bench,
    )
    try:
        print(
            f"scenario: n={n} seed={args.seed} delta={args.delta} "
            f"({block['scenario']['clusters']} clusters), {queries} queries/mix"
        )
        for name, entry in block["mixes"].items():
            for kind, report in entry.items():
                plans = report.get("plans")
                plans_text = f" plans={plans}" if plans else f" jobs={report['jobs']}"
                print(
                    f"  {name:<12} {kind:<10} p50 {report['p50_ms']}ms  "
                    f"p99 {report['p99_ms']}ms  {report['qps']} q/s  "
                    f"{report['messages_per_query']} msg/q{plans_text}"
                )
        warm = block["warm"]
        print(
            f"  warm cache: {warm['hits']} hits, p50 {warm['p50_ms']}ms, "
            f"{warm['messages_per_query']} msg/q; after forced invalidation: "
            f"{warm['invalidations']} entries swept, "
            f"{warm['stale_answers']}/{warm['audited']} stale answers"
        )
        if not args.no_bench:
            print(f"[wrote {args.bench_out}: schema {BENCH_SCHEMA} queries block]")
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like
        # `repro trace` does instead of dumping a traceback.
        sys.stderr.close()
        return 0
    return 0

"""Path queries over the clustered network (paper §7.3).

During a hazard (pollutant leak, fire), a rescue path from *x* to *y* must
keep every node on the path at least γ away — in feature space — from the
danger feature ``F_D``:

    return a path x -> y such that d(F_j, F_D) >= γ for every node j on it.

Clustered algorithm:

1. Classify clusters with δ-compactness-style pruning on the root: with
   ``R_root`` the covering radius, a cluster is **safe** when
   ``d(F_root, F_D) - R_root >= γ`` (every member is), **unsafe** when
   ``d(F_root, F_D) + R_root < γ`` (no member is), and **boundary**
   otherwise, in which case the M-tree is drilled to label safe/unsafe
   *sub-clusters* (charged per visited tree edge).
2. Spatially contiguous safe regions are joined by safe backbone trees;
   the source's region is searched (BFS over region-level adjacency) for
   the destination, and the path is traced back.

If source and destination fall in different safe regions, no safe path
exists and the query is suppressed at the source's root — the paper's
early-exit.

The BFS-flooding baseline instead floods the query through the safe part
of the network from the source: every reached safe node rebroadcasts once,
so the cost is ~2 values per edge incident to the flooded region, plus the
path trace-back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_non_negative
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.mtree import MTreeIndex
from repro.obs.metrics import MetricsRegistry
from repro.sim.messages import CATEGORY_QUERY, Message
from repro.sim.stats import MessageStats

#: Drop reasons recorded by the degraded-mode path-query paths.
DROP_DEAD_ROOT = "dead_root"
DROP_DEAD_ENDPOINT = "dead_endpoint"
DROP_NO_SURVIVORS = "no_survivors"


@dataclass
class PathQueryResult:
    """A safe path (or None) plus the communication spent."""

    path: list[Hashable] | None
    messages: int
    safe_nodes: int
    clusters_drilled: int
    #: Fraction of surviving nodes whose cluster the query could classify
    #: (1.0 unless crashes removed cluster representatives).
    coverage: float = 1.0
    #: Query deliveries dropped on degraded paths (dead roots/endpoints);
    #: per-reason detail is mirrored into the engine's metrics registry.
    drops: int = 0


class PathQueryEngine:
    """Safe-path search over a clustering + M-tree.

    Degraded operation after fail-stop crashes: pass ``dead`` (the crashed
    node set) and clusters whose representative died are excluded from the
    safe set — their surviving members cannot be classified, so they count
    as uncovered and the result carries a coverage fraction instead of a
    crash.  Dead nodes are never part of a returned path.  ``dead`` defaults
    to empty: the fault-free path is untouched.

    Degraded-path losses are recorded in the per-query ``MessageStats``
    under ``drops_by_reason`` (``dead_root`` / ``dead_endpoint`` /
    ``no_survivors``) and mirrored into ``queries.drops.<reason>``
    counters when a *metrics* registry is supplied, so both accounting
    systems agree.
    """

    def __init__(
        self,
        graph: nx.Graph,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        *,
        dead: "set[Hashable] | frozenset[Hashable] | None" = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.graph = graph
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self._dead = frozenset(dead) if dead else frozenset()
        self._metrics = metrics
        self._dim = int(next(iter(self.features.values())).shape[0])

    # ------------------------------------------------------------------
    def query(
        self,
        source: Hashable,
        destination: Hashable,
        danger: np.ndarray,
        gamma: float,
    ) -> PathQueryResult:
        """Find a safe path from *source* to *destination* (or prove none)."""
        require_non_negative(gamma, "gamma")
        danger = np.asarray(danger, dtype=np.float64)
        stats = MessageStats()
        query_values = self._dim + 1

        # A dead endpoint can neither issue the query nor terminate the
        # path: answer "no path" with zero coverage instead of silently
        # classifying clusters for an unanswerable question.
        if self._dead and (source in self._dead or destination in self._dead):
            self._drop(stats, DROP_DEAD_ENDPOINT)
            return PathQueryResult(None, 0, 0, 0, 0.0, stats.total_drops)

        # Source routes the query to its cluster root.
        entry_hops = len(self.clustering.path_to_root(source)) - 1
        if entry_hops:
            self._charge(stats, query_values, entry_hops)

        safe_nodes, drilled, coverage = self._classify(danger, gamma, stats, query_values)
        if source not in safe_nodes or destination not in safe_nodes:
            return PathQueryResult(
                None, stats.total_values, len(safe_nodes), drilled, coverage, stats.total_drops
            )

        # Safe regions: connected components of the safe-induced subgraph.
        safe_sub = self.graph.subgraph(safe_nodes)
        component = nx.node_connected_component(safe_sub, source)
        if destination not in component:
            return PathQueryResult(
                None, stats.total_values, len(safe_nodes), drilled, coverage, stats.total_drops
            )

        # Region-level BFS along the safe backbone: charge the query once
        # per safe cluster-root region traversed (2 values each way), then
        # trace the path back (1 value per hop).
        region_roots = {self.clustering.root_of(node) for node in component}
        for _ in region_roots:
            self._charge(stats, 2, 1)
        path = nx.shortest_path(safe_sub.subgraph(component), source, destination)
        self._charge(stats, 1, len(path) - 1)
        return PathQueryResult(
            list(path), stats.total_values, len(safe_nodes), drilled, coverage, stats.total_drops
        )

    # ------------------------------------------------------------------
    def _classify(
        self,
        danger: np.ndarray,
        gamma: float,
        stats: MessageStats,
        query_values: int,
    ) -> tuple[set[Hashable], int, float]:
        """Label every node safe/unsafe, drilling boundary clusters.

        Clusters with a dead representative cannot be classified: their
        surviving members are left out of the safe set and counted as
        uncovered in the returned coverage fraction.
        """
        safe: set[Hashable] = set()
        drilled = 0
        dead = self._dead
        uncovered = 0
        for root in self.clustering.roots:
            if dead and root in dead:
                # The classification request to this root is undeliverable.
                self._drop(stats, DROP_DEAD_ROOT)
                uncovered += sum(
                    1 for m in self.clustering.members(root) if m not in dead
                )
                continue
            d = self.metric.distance(danger, self.mtree.routing_feature[root])
            radius = self.mtree.covering_radius[root]
            # Reaching each root costs one backbone traversal; approximate
            # with one charge per cluster (the backbone fan-out).
            self._charge(stats, query_values, 1)
            if d - radius >= gamma:
                safe.update(self.clustering.members(root))
                continue
            if d + radius < gamma:
                continue
            drilled += 1
            safe.update(self._drill(root, danger, gamma, stats, query_values))
        coverage = 1.0
        if dead:
            safe.difference_update(dead)
            alive_total = sum(
                1 for n in self.clustering.assignment if n not in dead
            )
            if alive_total:
                coverage = 1.0 - uncovered / alive_total
            else:
                # Zero survivors: nothing was (or could be) classified —
                # 0.0, never the vacuous 1.0 this case used to report.
                self._drop(stats, DROP_NO_SURVIVORS)
                coverage = 0.0
        return safe, drilled, coverage

    def _drill(
        self,
        root: Hashable,
        danger: np.ndarray,
        gamma: float,
        stats: MessageStats,
        query_values: int,
    ) -> set[Hashable]:
        """M-tree drill-down labelling safe sub-clusters of one cluster."""
        safe: set[Hashable] = set()
        stack: list[Hashable] = [root]
        while stack:
            node = stack.pop()
            d_node = self.metric.distance(danger, self.mtree.routing_feature[node])
            if d_node >= gamma:
                safe.add(node)
            for child in self.mtree.children[node]:
                d_child_route = self.metric.distance(
                    danger, self.mtree.routing_feature[child]
                )
                r_child = self.mtree.covering_radius[child]
                if d_child_route - r_child >= gamma:
                    safe.update(self._subtree(child))
                    self._charge(stats, query_values, 1)
                    continue
                if d_child_route + r_child < gamma:
                    self._charge(stats, query_values, 1)
                    continue
                self._charge(stats, query_values, 1)
                stack.append(child)
        return safe

    def _subtree(self, node: Hashable) -> set[Hashable]:
        out: set[Hashable] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            out.add(current)
            stack.extend(self.mtree.children[current])
        return out

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)

    def _drop(self, stats: MessageStats, reason: str) -> None:
        """Record one degraded-path drop in both accounting systems."""
        stats.drop("query", reason)
        if self._metrics is not None:
            self._metrics.counter(f"queries.drops.{reason}").inc()


def maximin_safe_path(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    source: Hashable,
    destination: Hashable,
    danger: np.ndarray,
) -> PathQueryResult:
    """The *safest* path: maximize the minimum danger distance en route.

    §7.3 asks for any path clearing a fixed margin γ; rescue planning often
    wants the best achievable margin instead.  This is the classic maximin
    (bottleneck) path problem, solved with a Dijkstra variant that grows
    the widest bottleneck first.  Communication is charged like a safe
    flood over the visited region (each expanded node broadcasts once),
    making costs comparable with :func:`bfs_flood_path`.

    The returned :attr:`PathQueryResult.safe_nodes` is the number of nodes
    expanded; the achieved bottleneck is the minimum danger distance over
    the returned path.
    """
    danger = np.asarray(danger, dtype=np.float64)
    stats = MessageStats()
    safety = {node: metric.distance(features[node], danger) for node in graph.nodes}

    import heapq

    # Max-heap on the bottleneck value achieved when reaching a node.
    best_bottleneck = {source: safety[source]}
    parents: dict[Hashable, Hashable] = {source: source}
    heap = [(-safety[source], repr(source), source)]
    expanded: set[Hashable] = set()
    while heap:
        negative, _, node = heapq.heappop(heap)
        if node in expanded:
            continue
        expanded.add(node)
        degree = graph.degree(node)
        if degree:
            stats.record(Message("query", node, None, values=2), hops=degree)
        if node == destination:
            break
        bottleneck = -negative
        for neighbor in graph.neighbors(node):
            candidate = min(bottleneck, safety[neighbor])
            if candidate > best_bottleneck.get(neighbor, -1.0):
                best_bottleneck[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (-candidate, repr(neighbor), neighbor))

    if destination not in parents:
        return PathQueryResult(None, stats.total_values, len(expanded), 0)
    path = [destination]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    if len(path) > 1:
        stats.record(Message("query", destination, source, values=1), hops=len(path) - 1)
    return PathQueryResult(list(path), stats.total_values, len(expanded), 0)


def bfs_flood_path(
    graph: nx.Graph,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    source: Hashable,
    destination: Hashable,
    danger: np.ndarray,
    gamma: float,
) -> PathQueryResult:
    """Baseline: flood the query through safe nodes from the source.

    Every reached safe node rebroadcasts the query once (2 values per copy,
    query id + hop pointer); unsafe nodes drop it.  The path is traced back
    along BFS parents (1 value per hop).
    """
    require_non_negative(gamma, "gamma")
    danger = np.asarray(danger, dtype=np.float64)
    stats = MessageStats()

    def is_safe(node: Hashable) -> bool:
        return metric.distance(features[node], danger) >= gamma

    if not is_safe(source):
        return PathQueryResult(None, 0, 0, 0)

    parents: dict[Hashable, Hashable] = {source: source}
    frontier = [source]
    reached = {source}
    while frontier:
        next_frontier: list[Hashable] = []
        for node in frontier:
            # Broadcast to every neighbour (the flood's per-node cost).
            degree = graph.degree(node)
            if degree:
                stats.record(Message("query", node, None, values=2), hops=degree)
            for neighbor in graph.neighbors(node):
                if neighbor in reached or not is_safe(neighbor):
                    continue
                reached.add(neighbor)
                parents[neighbor] = node
                next_frontier.append(neighbor)
        frontier = next_frontier
        if destination in reached:
            break

    if destination not in reached:
        return PathQueryResult(None, stats.total_values, len(reached), 0)
    path = [destination]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    if len(path) > 1:
        stats.record(Message("query", destination, source, values=1), hops=len(path) - 1)
    return PathQueryResult(path, stats.total_values, len(reached), 0)

"""k-nearest-neighbour queries over the distributed index (extension).

"Which k sensors behave most like this model?" is the ranking twin of the
paper's range query, and the M-tree supports it with the classic
best-first search: visit clusters and subtrees in order of their
*optimistic* distance bound ``max(0, d(q, F^R) - R)`` and stop when the
k-th best confirmed distance beats every unvisited bound.  The same
triangle-inequality machinery as §7 does the pruning; communication is
charged per visited backbone edge and cluster-tree edge, exactly like the
range engine, so costs are comparable.

Degraded operation matches the range/path engines: pass ``dead`` (the
crashed node set) and the search answers from the reachable part of the
network with a ``coverage`` fraction instead of crashing — dead backbone
relays cut off their far-side clusters, dead nodes are never ranked, and
an initiator whose own representative died (and was not re-elected) is
answered from its surviving cluster members alone.  ``root_replacements``
lets re-elected representatives stand in for dead roots with a
conservative covering ball.  Every degraded-path loss is recorded in the
per-query ``MessageStats`` ``drops_by_reason`` (``dead_relay`` /
``dead_root`` / ``no_survivors``) and mirrored into the engine's
``queries.drops.<reason>`` metrics counters, so both accounting systems
agree — the same double-entry contract the range engine keeps.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_int_at_least
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.backbone import BackboneTree
from repro.index.mtree import MTreeIndex
from repro.obs.metrics import MetricsRegistry
from repro.sim.messages import CATEGORY_QUERY
from repro.sim.stats import MessageStats

#: Drop reasons recorded by the degraded-mode k-NN paths (shared
#: vocabulary with the range engine, so service counters aggregate).
DROP_DEAD_RELAY = "dead_relay"
DROP_DEAD_ROOT = "dead_root"
DROP_NO_SURVIVORS = "no_survivors"


@dataclass
class KnnResult:
    """The k nearest nodes (sorted by distance) plus the cost."""

    neighbors: list[tuple[Hashable, float]]
    messages: int
    nodes_visited: int
    #: Fraction of surviving nodes whose cluster the query could consult
    #: (1.0 unless crashes severed parts of the backbone).
    coverage: float = 1.0
    #: Query deliveries dropped on degraded paths (dead relays/roots);
    #: per-reason detail is mirrored into the engine's metrics registry.
    drops: int = 0


class KnnQueryEngine:
    """Best-first k-NN search over clustering + M-tree + backbone.

    Fault-free by default; ``dead`` / ``root_replacements`` switch on the
    degraded mode described in the module docstring.  A *metrics*
    registry, when supplied, receives ``queries.drops.<reason>`` counters
    that agree with each result's ``drops`` total.
    """

    def __init__(
        self,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        backbone: BackboneTree,
        *,
        dead: "set[Hashable] | frozenset[Hashable] | None" = None,
        root_replacements: Mapping[Hashable, Hashable] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self.backbone = backbone
        self._metrics = metrics
        self._dead = frozenset(dead) if dead else frozenset()
        self._replacements = dict(root_replacements) if root_replacements else {}
        self._replaced_by = {repl: orig for orig, repl in self._replacements.items()}
        self._dim = int(next(iter(self.features.values())).shape[0])

    def query(self, q: np.ndarray, k: int, initiator: Hashable) -> KnnResult:
        """Return the *k* nodes with smallest feature distance to *q*."""
        require_int_at_least(k, 1, "k")
        q = np.asarray(q, dtype=np.float64)
        stats = MessageStats()
        query_values = self._dim + 1
        counter = itertools.count()  # deterministic heap tie-break
        dead = self._dead

        # Route to the initiator's root first (as in §7.2).
        origin = self.clustering.root_of(initiator)
        if dead and origin in dead and origin not in self._replacements:
            # Unrepaired dead representative: the initiator cannot enter
            # the backbone, so the query ranks the surviving members of
            # its own cluster only.
            return self._local_only(q, k, origin, stats, query_values)
        entry_hops = len(self.clustering.path_to_root(initiator)) - 1
        if entry_hops:
            self._charge(stats, query_values, entry_hops)
            self._charge(stats, 1, entry_hops)
        start = self._replacements.get(origin, origin)

        # Degraded mode: find which backbone roots are still reachable
        # from the start without relaying through a dead node; the rest
        # are uncovered.
        if dead:
            reachable, lost_roots = self._survey_backbone(start, stats)
        else:
            reachable, lost_roots = None, set()

        # Best-first frontier over (bound, kind, payload).  Cluster roots
        # enter with their optimistic bound; expanding a root enqueues its
        # M-tree children; expanding a node confirms its own distance.
        best: list[tuple[float, Hashable]] = []  # max-heap via negation

        def admit(node: Hashable, distance: float) -> None:
            if len(best) < k:
                heapq.heappush(best, (-distance, node))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, node))

        def kth_bound() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        frontier: list[tuple[float, int, Hashable]] = []
        for root in self.clustering.roots:
            effective = self._replacements.get(root, root)
            if reachable is not None and effective not in reachable:
                continue  # severed from the backbone: uncovered
            center, r_root = self._routing_ball(effective)
            d = self.metric.distance(q, center)
            bound = max(0.0, d - r_root)
            heapq.heappush(frontier, (bound, next(counter), root))

        visited = 0
        reached_roots = {origin}
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > kth_bound():
                break  # nothing unvisited can improve the answer
            root = self.clustering.root_of(node)
            if root not in reached_roots:
                reached_roots.add(root)
                target = self._replacements.get(root, root)
                hops = self._backbone_hops(start, target)
                self._charge(stats, query_values, hops)
                self._charge(stats, 1, hops)
            if node != root:
                # Travelling one cluster-tree edge to this node.
                self._charge(stats, query_values, 1)
                self._charge(stats, 1, 1)
            visited += 1
            if not dead or node not in dead:
                admit(node, self.metric.distance(q, self.features[node]))
            for child, (d_pc, r_child) in self.mtree.child_info[node].items():
                # The parent holds its children's routing features (it
                # received them during the bottom-up build), so the tight
                # M-tree bound d(q, F_child^R) - R_child is local.
                d_child = self.metric.distance(q, self.mtree.routing_feature[child])
                child_bound = max(0.0, d_child - r_child)
                if child_bound <= kth_bound():
                    heapq.heappush(frontier, (child_bound, next(counter), child))

        neighbors = sorted(((node, -negative) for negative, node in best), key=lambda kv: (kv[1], repr(kv[0])))
        coverage = self._coverage_after_losses(lost_roots)
        return KnnResult(
            neighbors, stats.total_values, visited, coverage, stats.total_drops
        )

    # ------------------------------------------------------------------
    # Degraded-operation helpers (all no-ops without dead/replacements).
    def _routing_ball(self, root: Hashable) -> tuple[np.ndarray, float]:
        """Pruning ball of *root*, conservative for re-elected roots.

        A replacement's own M-tree entry only covers its subtree, so its
        cluster ball is the dead root's ball enlarged by the feature
        distance between the two — sound by the triangle inequality.
        """
        center = self.mtree.routing_feature[root]
        orig = self._replaced_by.get(root)
        if orig is None:
            return center, self.mtree.covering_radius[root]
        slack = self.metric.distance(center, self.mtree.routing_feature[orig])
        return center, slack + self.mtree.covering_radius[orig]

    def _survey_backbone(
        self, start: Hashable, stats: MessageStats
    ) -> tuple[set[Hashable], set[Hashable]]:
        """(reachable backbone nodes, lost far-side roots) from *start*."""
        lost: set[Hashable] = set()
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if neighbor in self._dead:
                    # The query copy toward this relay is undeliverable.
                    self._drop(stats, DROP_DEAD_RELAY)
                    lost.update(self._side_roots(current, neighbor))
                    continue
                stack.append(neighbor)
        return seen - lost, lost

    def _side_roots(self, src: Hashable, dst: Hashable) -> set[Hashable]:
        """Backbone roots reachable from *dst* without crossing (src, dst)."""
        seen = {dst}
        stack = [dst]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor == src and current == dst:
                    continue
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def _alive_total(self) -> int:
        return sum(1 for n in self.clustering.assignment if n not in self._dead)

    def _coverage_after_losses(self, lost_roots: set[Hashable]) -> float:
        if not lost_roots:
            return 1.0
        alive_total = self._alive_total()
        if alive_total == 0:
            return 0.0
        uncovered = 0
        for root in lost_roots:
            orig = self._replaced_by.get(root, root)
            uncovered += sum(
                1 for m in self.clustering.members(orig) if m not in self._dead
            )
        return 1.0 - uncovered / alive_total

    def _local_only(
        self,
        q: np.ndarray,
        k: int,
        origin: Hashable,
        stats: MessageStats,
        query_values: int,
    ) -> KnnResult:
        """Rank only the initiator's own surviving cluster members."""
        self._drop(stats, DROP_DEAD_ROOT)
        alive = [m for m in self.clustering.members(origin) if m not in self._dead]
        for _ in range(max(len(alive) - 1, 0)):
            self._charge(stats, query_values, 1)
            self._charge(stats, 1, 1)
        ranked = sorted(
            ((m, self.metric.distance(q, self.features[m])) for m in alive),
            key=lambda kv: (kv[1], repr(kv[0])),
        )
        alive_total = self._alive_total()
        coverage = len(alive) / alive_total if alive_total else 0.0
        if not alive:
            self._drop(stats, DROP_NO_SURVIVORS)
        return KnnResult(
            ranked[:k], stats.total_values, len(alive), coverage, stats.total_drops
        )

    # ------------------------------------------------------------------
    def _backbone_hops(self, origin: Hashable, root: Hashable) -> int:
        """Hops of the backbone-tree route from *origin* to *root*."""
        if origin == root:
            return 0
        route = nx.shortest_path(self.backbone.tree, origin, root)
        return sum(self.backbone.edge_hops(a, b) for a, b in zip(route, route[1:]))

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)

    def _drop(self, stats: MessageStats, reason: str) -> None:
        """Record one degraded-path drop in both accounting systems."""
        stats.drop("query", reason)
        if self._metrics is not None:
            self._metrics.counter(f"queries.drops.{reason}").inc()


def brute_force_knn(
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    q: np.ndarray,
    k: int,
) -> list[tuple[Hashable, float]]:
    """Ground-truth k-NN for correctness checks."""
    distances = [
        (node, metric.distance(q, feature)) for node, feature in features.items()
    ]
    distances.sort(key=lambda kv: (kv[1], repr(kv[0])))
    return distances[:k]

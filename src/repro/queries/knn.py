"""k-nearest-neighbour queries over the distributed index (extension).

"Which k sensors behave most like this model?" is the ranking twin of the
paper's range query, and the M-tree supports it with the classic
best-first search: visit clusters and subtrees in order of their
*optimistic* distance bound ``max(0, d(q, F^R) - R)`` and stop when the
k-th best confirmed distance beats every unvisited bound.  The same
triangle-inequality machinery as §7 does the pruning; communication is
charged per visited backbone edge and cluster-tree edge, exactly like the
range engine, so costs are comparable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_int_at_least
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.backbone import BackboneTree
from repro.index.mtree import MTreeIndex
from repro.sim.messages import CATEGORY_QUERY
from repro.sim.stats import MessageStats


@dataclass
class KnnResult:
    """The k nearest nodes (sorted by distance) plus the cost."""

    neighbors: list[tuple[Hashable, float]]
    messages: int
    nodes_visited: int


class KnnQueryEngine:
    """Best-first k-NN search over clustering + M-tree + backbone."""

    def __init__(
        self,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        backbone: BackboneTree,
    ):
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self.backbone = backbone
        self._dim = int(next(iter(self.features.values())).shape[0])

    def query(self, q: np.ndarray, k: int, initiator: Hashable) -> KnnResult:
        """Return the *k* nodes with smallest feature distance to *q*."""
        require_int_at_least(k, 1, "k")
        q = np.asarray(q, dtype=np.float64)
        stats = MessageStats()
        query_values = self._dim + 1
        counter = itertools.count()  # deterministic heap tie-break

        # Route to the initiator's root first (as in §7.2).
        origin = self.clustering.root_of(initiator)
        entry_hops = len(self.clustering.path_to_root(initiator)) - 1
        if entry_hops:
            self._charge(stats, query_values, entry_hops)
            self._charge(stats, 1, entry_hops)

        # Best-first frontier over (bound, kind, payload).  Cluster roots
        # enter with their optimistic bound; expanding a root enqueues its
        # M-tree children; expanding a node confirms its own distance.
        best: list[tuple[float, Hashable]] = []  # max-heap via negation

        def admit(node: Hashable, distance: float) -> None:
            if len(best) < k:
                heapq.heappush(best, (-distance, node))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, node))

        def kth_bound() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        frontier: list[tuple[float, int, Hashable]] = []
        for root in self.clustering.roots:
            d = self.metric.distance(q, self.mtree.routing_feature[root])
            bound = max(0.0, d - self.mtree.covering_radius[root])
            heapq.heappush(frontier, (bound, next(counter), root))
            if root != origin:
                # Reaching another root costs its backbone route; charged
                # lazily when the root is actually expanded (below).
                pass

        visited = 0
        reached_roots = {origin}
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > kth_bound():
                break  # nothing unvisited can improve the answer
            root = self.clustering.root_of(node)
            if root not in reached_roots:
                reached_roots.add(root)
                hops = self._backbone_hops(origin, root)
                self._charge(stats, query_values, hops)
                self._charge(stats, 1, hops)
            if node != root:
                # Travelling one cluster-tree edge to this node.
                self._charge(stats, query_values, 1)
                self._charge(stats, 1, 1)
            visited += 1
            admit(node, self.metric.distance(q, self.features[node]))
            for child, (d_pc, r_child) in self.mtree.child_info[node].items():
                # The parent holds its children's routing features (it
                # received them during the bottom-up build), so the tight
                # M-tree bound d(q, F_child^R) - R_child is local.
                d_child = self.metric.distance(q, self.mtree.routing_feature[child])
                child_bound = max(0.0, d_child - r_child)
                if child_bound <= kth_bound():
                    heapq.heappush(frontier, (child_bound, next(counter), child))

        neighbors = sorted(((node, -negative) for negative, node in best), key=lambda kv: (kv[1], repr(kv[0])))
        return KnnResult(neighbors, stats.total_values, visited)

    def _backbone_hops(self, origin: Hashable, root: Hashable) -> int:
        """Hops of the backbone-tree route from *origin* to *root*."""
        if origin == root:
            return 0
        import networkx as nx

        route = nx.shortest_path(self.backbone.tree, origin, root)
        return sum(self.backbone.edge_hops(a, b) for a, b in zip(route, route[1:]))

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)


def brute_force_knn(
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    q: np.ndarray,
    k: int,
) -> list[tuple[Hashable, float]]:
    """Ground-truth k-NN for correctness checks."""
    distances = [
        (node, metric.distance(q, feature)) for node, feature in features.items()
    ]
    distances.sort(key=lambda kv: (kv[1], repr(kv[0])))
    return distances[:k]

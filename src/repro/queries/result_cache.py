"""Per-query result cache with maintenance-driven generation invalidation.

:class:`QueryResultCache` memoizes planned query answers in memory, keyed
through the same content-addressing machinery as the on-disk artifact
cache (:func:`repro.perf.cache.cache_key`): the key is a SHA-256 over the
operation name and its canonicalized parameters — query feature arrays
included — so two textually different but semantically identical requests
share one entry.

**Invalidation contract.**  Every entry records the *structure generation*
it was computed at.  :class:`~repro.core.maintenance.MaintenanceSession`
bumps its ``generation`` counter whenever cluster membership or a
propagated root feature changes (detach/merge/singleton outcomes, root
broadcasts, node removal); silent feature drift within the slack Δ does
**not** bump it.  When the cache observes a newer generation it drops
every entry from older generations before answering — so a cached answer
is never served across a structural change (0 stale answers), while
answers served within a generation are at most Δ-stale in feature space,
the same bounded-staleness window the maintenance protocol itself grants
(the spatial-correlation accuracy model of arXiv:1108.2644 is the
motivation for serving such bounded-error answers).

Counters (when a metrics registry is attached): ``queries.cache.hits``,
``queries.cache.misses``, ``queries.cache.invalidations`` (entries
dropped by generation sweeps) and ``queries.cache.evictions`` (LRU
capacity evictions).  The planner mirrors hits/misses/invalidations into
``queries.*`` trace events for ``repro trace --queries``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import cache_key

#: Key-schema salt for query-result entries; bump when the planned result
#: representation (or the key schema itself) changes shape.  2: keys
#: carry the degraded context, so pre-fix fault-free entries can never
#: alias a degraded query's key.
_RESULT_SALT = "query-result-2"

#: Default LRU capacity, in entries.  Query results are small (match-id
#: sets plus plan metadata), so a few thousand entries cover a zipfian
#: working set while bounding memory.
DEFAULT_CAPACITY = 4096


class QueryResultCache:
    """In-memory LRU of query answers, invalidated by structure generation.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries; least-recently-used entries
        are evicted beyond it.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
        ``queries.cache.*`` counters.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *, metrics: MetricsRegistry | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._metrics = metrics
        #: key -> (generation, value); insertion order doubles as LRU order.
        self._entries: "OrderedDict[str, tuple[int, Any]]" = OrderedDict()
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def key(
        self,
        op: str,
        params: Mapping[str, Any],
        context: Mapping[str, Any] | None = None,
    ) -> str:
        """Content-addressed key for *op* with canonicalized *params*.

        *context* is the degraded-topology context the answer was (or
        would be) computed under — the planner passes its ``dead`` set
        and ``root_replacements`` mapping.  It is hashed into the key, so
        a fault-free answer can never be served for a degraded query (or
        vice versa): the two live under different keys.  ``None`` (the
        fault-free default) hashes exactly as before the context existed.
        """
        if context:
            params = {**params, "__degraded__": context}
        return cache_key(f"query.{op}", params, _RESULT_SALT)

    def observe_generation(self, generation: int) -> int:
        """Adopt *generation*, sweeping entries from older generations.

        Returns the number of entries invalidated.  Generations never go
        backwards; observing an older value is a no-op (a lagging caller
        must not resurrect swept entries).
        """
        if generation <= self.generation:
            return 0
        self.generation = generation
        stale = [k for k, (gen, _value) in self._entries.items() if gen < generation]
        for k in stale:
            del self._entries[k]
        if stale:
            self.invalidations += len(stale)
            self._count("queries.cache.invalidations", len(stale))
        return len(stale)

    def get(self, key: str) -> tuple[bool, Any]:
        """(hit, value); a hit refreshes the entry's LRU position."""
        entry = self._entries.get(key)
        if entry is None or entry[0] < self.generation:
            # A same-key entry from an older generation can only linger if
            # the sweep was bypassed; treat it as a miss, never serve it.
            self.misses += 1
            self._count("queries.cache.misses")
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("queries.cache.hits")
        return True, entry[1]

    def put(self, key: str, value: Any) -> None:
        """Store *value* at the current generation, evicting LRU overflow."""
        self._entries[key] = (self.generation, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("queries.cache.evictions")

    def stats(self) -> dict[str, int]:
        """Session counters plus current size, JSON-ready."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "generation": self.generation,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

"""Cost-model query planner over the clustered serving stack.

The query layer has three ways to answer any spatial query, with very
different message bills:

- **mtree** — the paper's clustered plan: route to the initiator's root,
  fan out over the backbone with directional-summary pruning, apply
  δ-compactness at each visited root, and descend the distributed M-tree
  only inside boundary clusters (:mod:`repro.queries.range_query`,
  :mod:`repro.queries.knn`, :mod:`repro.queries.path_query`);
- **backbone** — backbone routing without the index: visit *every*
  cluster root over the backbone tree, classify each cluster with its
  root ball alone, and flood the cluster tree of every boundary cluster
  (no M-tree descent).  Cheap when clusters are few and tight, expensive
  when many clusters straddle the query ball;
- **flood** — local flooding: TAG-style distribute-and-collect over a
  network-wide overlay tree for range/k-NN, a safe-region flood for path
  queries.  Cost is independent of selectivity — the right plan only for
  unselective queries on fragmented clusterings.

:class:`QueryPlanner` estimates each plan's message cost per query from
topology and clustering statistics — cluster count and sizes, backbone
depth (total backbone hops), covering radii versus the query radius, the
exact pruned backbone fan-out
(:meth:`~repro.queries.range_query.RangeQueryEngine.fanout_preview`) —
and executes the argmin.  All three backends return the **same answer**
(they are exact under the same triangle-inequality machinery; the planner
additionally canonicalizes path-query routes), so plan choice only moves
cost, never results.  ``explain`` output reports every backend's estimate
next to the chosen plan's actual cost, making the model auditable query
by query.

Results are memoized through :class:`~repro.queries.result_cache.QueryResultCache`
(content-addressed keys via :func:`repro.perf.cache.cache_key`) and
invalidated by the maintenance layer's structure generation — see the
cache module docstring for the staleness contract.  Planning, execution,
and cache traffic emit ``queries.*`` trace events consumed by
``repro trace --queries`` and ``queries.*`` counters in the metrics
registry.

The planner serves the fault-free path by default.  Pass ``dead`` /
``root_replacements`` (the engines' degraded vocabulary) and the cost
model discounts what crashes removed: re-elected roots prune with the
engines' conservative replacement balls, backbone hop terms count only
edges a query can actually traverse (fan-out stops at dead relays, and
their severed far sides contribute no descent cost), per-cluster sizes
count surviving members, and clusters whose representative died
unreplaced are costed as unreachable.  Execution routes through the
engines' own degraded paths, so the planner never plans a route through
a node they would refuse.  The flood backend is unavailable degraded —
its overlay tree routes through dead nodes — so it is never chosen and
cannot be forced.  Cache keys embed the degraded context
(:meth:`~repro.queries.result_cache.QueryResultCache.key`), so a
fault-free cached answer is never served for a degraded query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_int_at_least, require_non_negative
from repro.core.delta import Clustering
from repro.features.metrics import Metric
from repro.index.backbone import BackboneTree
from repro.index.mtree import MTreeIndex
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.queries.knn import KnnQueryEngine, KnnResult, brute_force_knn
from repro.queries.path_query import (
    DROP_DEAD_ENDPOINT,
    DROP_DEAD_ROOT,
    PathQueryEngine,
    PathQueryResult,
)
from repro.queries.range_query import DROP_DEAD_RELAY, RangeQueryEngine, RangeQueryResult
from repro.queries.result_cache import QueryResultCache
from repro.queries.tag import TagEngine
from repro.sim.messages import CATEGORY_QUERY
from repro.sim.stats import MessageStats

#: The plan backends, in tie-break preference order (ties go to the
#: earliest entry — the clustered plan, whose constants are best-measured).
PLAN_BACKENDS = ("mtree", "backbone", "flood")

#: Fraction of a boundary cluster's tree edges the M-tree descent is
#: modeled to visit (the descent prunes subtrees; the backbone plan's
#: cluster flood visits every edge).  Calibrated on the seeded scenarios
#: in tests/test_planner.py; explain output exposes the per-query error.
DESCENT_FRACTION = 0.5

#: Same role for the path query's boundary-cluster M-tree drill.
DRILL_FRACTION = 0.5

#: Per-cluster node budget the k-NN best-first search is modeled to
#: confirm inside each visited cluster (it stops at the k-th bound).
KNN_VISIT_PER_CLUSTER = 2


@dataclass(frozen=True)
class QueryPlan:
    """A chosen backend plus the full per-backend estimate table."""

    op: str  # "range" | "knn" | "path"
    backend: str  # the chosen entry of PLAN_BACKENDS
    estimates: Mapping[str, float]  # backend -> estimated value-messages
    reason: str  # "min-cost" | "forced"

    def explain_text(self) -> str:
        """One-line rendering of the estimate table and the choice."""
        ranked = sorted(self.estimates.items(), key=lambda kv: kv[1])
        table = ", ".join(f"{name} est {cost:.0f}" for name, cost in ranked)
        return f"plan {self.op}: {self.backend} ({self.reason}) | {table}"


@dataclass
class PlannedResult:
    """One executed (or cache-served) query with its plan and cost."""

    plan: QueryPlan
    result: Any  # RangeQueryResult | KnnResult | PathQueryResult
    messages: int  # actual network cost of THIS response (0 on cache hits)
    estimated: float  # the chosen backend's estimate
    cached: bool = False

    def explain_text(self) -> str:
        """Estimate-vs-actual rendering for the executed plan."""
        if self.cached:
            return f"{self.plan.explain_text()} | served from cache (0 messages)"
        ratio = self.messages / self.estimated if self.estimated else math.inf
        return (
            f"{self.plan.explain_text()} | actual {self.messages} "
            f"(actual/est {ratio:.2f}x)"
        )


def canonical_answer(op: str, result: Any) -> Any:
    """The backend-independent answer of a query result, for equivalence.

    Range answers are frozen match sets, k-NN answers the ordered
    neighbor list, path answers the route (or None).  Cost fields are
    deliberately excluded — they are exactly what plan choice changes.
    """
    if op == "range":
        return frozenset(result.matches)
    if op == "knn":
        return tuple((node, round(dist, 12)) for node, dist in result.neighbors)
    if op == "path":
        return None if result.path is None else tuple(result.path)
    raise ValueError(f"unknown op {op!r}")


@dataclass
class _Stats:
    """Topology/clustering statistics the cost model reads."""

    n: int
    dim: int
    num_clusters: int
    overlay_edges: int
    total_backbone_hops: int
    mean_degree: float
    sizes: dict[Hashable, int] = field(default_factory=dict)


class QueryPlanner:
    """Plans and executes range/k-NN/path queries (see module docstring).

    Parameters
    ----------
    graph, clustering, features, metric, mtree, backbone:
        The serving structures every engine shares.
    metrics:
        Optional registry for ``queries.*`` counters.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; the planner stamps its
        events with a per-planner sequence clock (deterministic).
    emit:
        Alternative event sink ``emit(type, **data)`` — the serving layer
        passes its context emitter so events share the service clock.
        Wins over *tracer* when both are given.
    cache:
        Optional :class:`~repro.queries.result_cache.QueryResultCache`.
        Auto-planned answers are memoized in it; forced-backend runs
        bypass it (their cost is the experiment).
    generation:
        Zero-argument callable returning the current maintenance
        structure generation (e.g. ``lambda: session.generation``); the
        cache sweeps stale entries whenever it advances.  ``None`` pins
        generation 0 (static snapshots).
    dead, root_replacements:
        The degraded-topology context, with the same semantics the
        engines give them (crashed node set; dead root -> re-elected
        representative).  Both default empty: the fault-free cost model
        and execution paths are byte-identical to pre-degraded builds.
    """

    def __init__(
        self,
        graph: nx.Graph,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        mtree: MTreeIndex,
        backbone: BackboneTree,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        emit: Callable[..., None] | None = None,
        cache: QueryResultCache | None = None,
        generation: Callable[[], int] | None = None,
        dead: "set[Hashable] | frozenset[Hashable] | None" = None,
        root_replacements: Mapping[Hashable, Hashable] | None = None,
    ):
        self.graph = graph
        self.clustering = clustering
        self.features = {k: np.asarray(v, dtype=np.float64) for k, v in features.items()}
        self.metric = metric
        self.mtree = mtree
        self.backbone = backbone
        self._metrics = metrics
        self._cache = cache
        self._generation = generation
        self._dead = frozenset(dead) if dead else frozenset()
        self._replacements = dict(root_replacements) if root_replacements else {}
        self._replaced_by = {repl: orig for orig, repl in self._replacements.items()}
        self._degraded = bool(self._dead or self._replacements)
        self._seq = 0
        if emit is not None:
            self._emit_fn = emit
        elif tracer is not None:
            self._emit_fn = self._tracer_emit(tracer)
        else:
            self._emit_fn = None

        self._range_engine = RangeQueryEngine(
            clustering, self.features, metric, mtree, backbone,
            dead=self._dead or None, root_replacements=self._replacements or None,
            metrics=metrics,
        )
        self._knn_engine = KnnQueryEngine(
            clustering, self.features, metric, mtree, backbone,
            dead=self._dead or None, root_replacements=self._replacements or None,
            metrics=metrics,
        )
        self._path_engine = PathQueryEngine(
            graph, clustering, self.features, metric, mtree,
            dead=self._dead or None, metrics=metrics,
        )
        # One overlay for the flood backend; TAG's per-query cost does not
        # depend on where the overlay is rooted (it is always n-1 edges),
        # so a fixed deterministic base station keeps plans comparable.
        base = min(graph.nodes, key=repr)
        self._tag = TagEngine(graph, self.features, metric, base_station=base)

        # Per-cluster sizes over *surviving* members: the degraded cost
        # model's discount, and exactly the fault-free sizes when nothing
        # is dead.
        if self._dead:
            sizes = {
                root: sum(1 for m in clustering.members(root) if m not in self._dead)
                for root in clustering.roots
            }
        else:
            sizes = {root: len(clustering.members(root)) for root in clustering.roots}
        total_hops = sum(
            backbone.edge_hops(a, b) for a, b in backbone.tree.edges
        )
        n = graph.number_of_nodes()
        self.stats = _Stats(
            n=n,
            dim=int(next(iter(self.features.values())).shape[0]),
            num_clusters=clustering.num_clusters,
            overlay_edges=self._tag.tree_edges,
            total_backbone_hops=total_hops,
            mean_degree=(2.0 * graph.number_of_edges() / n) if n else 0.0,
            sizes=sizes,
        )
        self._route_cache: dict[Hashable, dict[Hashable, int]] = {}

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan_range(self, q: np.ndarray, radius: float, initiator: Hashable) -> QueryPlan:
        """Estimate every backend for a range query and pick the cheapest."""
        require_non_negative(radius, "radius")
        q = np.asarray(q, dtype=np.float64)
        per_edge = self.stats.dim + 2  # (dim+1) down + 1 aggregate up
        origin = self.clustering.root_of(initiator)
        if self._unreachable_root(origin):
            # Unrepaired dead representative: every clustered backend
            # decays to flooding the initiator's surviving cluster.
            local = per_edge * max(self.stats.sizes.get(origin, 0) - 1, 0)
            return self._choose("range", {
                "mtree": float(local),
                "backbone": float(local),
                "flood": self._flood_cost(self._tag.per_query_cost()),
            })
        entry = len(self.clustering.path_to_root(initiator)) - 1
        classes = self._classify_range(q, radius)
        _hops_reach, reachable = self._backbone_reach(self._effective(origin))
        boundary_all = sum(
            max(self.stats.sizes[r] - 1, 0)
            for r, c in classes.items()
            if c == "boundary" and (reachable is None or self._effective(r) in reachable)
        )
        entry_hops, visited, fanout_hops = self._range_engine.fanout_preview(q, radius, initiator)
        boundary_visited = sum(
            max(self.stats.sizes.get(self._orig_root(r), 0) - 1, 0)
            for r in visited
            if classes.get(self._orig_root(r)) == "boundary"
        )
        estimates = {
            "mtree": per_edge * (entry_hops + fanout_hops)
            + per_edge * boundary_visited * DESCENT_FRACTION,
            "backbone": per_edge * (entry + _hops_reach) + per_edge * boundary_all,
            "flood": self._flood_cost(self._tag.per_query_cost()),
        }
        return self._choose("range", estimates)

    def plan_knn(self, q: np.ndarray, k: int, initiator: Hashable) -> QueryPlan:
        """Estimate every backend for a k-NN query and pick the cheapest."""
        require_int_at_least(k, 1, "k")
        q = np.asarray(q, dtype=np.float64)
        dim = self.stats.dim
        origin = self.clustering.root_of(initiator)
        if self._unreachable_root(origin):
            local = (dim + 2) * max(self.stats.sizes.get(origin, 0) - 1, 0)
            return self._choose("knn", {
                "mtree": float(local),
                "backbone": float(local),
                "flood": self._flood_cost((dim + 1 + k) * self.stats.overlay_edges),
            })
        entry = len(self.clustering.path_to_root(initiator)) - 1
        start = self._effective(origin)
        hops_reach, reachable = self._backbone_reach(start)
        # Only clusters the degraded engines can consult: a live (or
        # re-elected) representative that is not severed behind a dead
        # backbone relay.
        candidates = [
            r
            for r in self.clustering.roots
            if not self._unreachable_root(r)
            and (reachable is None or self._effective(r) in reachable)
        ]
        # Optimistic k-th-distance guess from the closest root ball: every
        # root whose optimistic bound beats it is modeled as visited.
        balls = {r: self._routing_ball(r) for r in candidates}
        d_by_root = {r: self.metric.distance(q, balls[r][0]) for r in candidates}
        best = min(d_by_root, key=lambda r: (d_by_root[r], repr(r)))
        est_kth = d_by_root[best] + balls[best][1]
        routes = self._route_hops_from(start)
        visited = [
            r
            for r in candidates
            if max(0.0, d_by_root[r] - balls[r][1]) <= est_kth
        ]
        per_edge = dim + 2
        mtree_cost = per_edge * entry + sum(
            per_edge * routes.get(self._effective(r), 0)
            + per_edge * min(max(self.stats.sizes[r] - 1, 0), KNN_VISIT_PER_CLUSTER * k)
            for r in visited
        )
        # Cluster-tree edges the backbone scan floods (surviving members
        # of consultable clusters only).
        scan_edges = sum(max(self.stats.sizes[r] - 1, 0) for r in candidates)
        estimates = {
            "mtree": float(mtree_cost),
            "backbone": (dim + 1 + k) * (entry + hops_reach + scan_edges),
            "flood": self._flood_cost((dim + 1 + k) * self.stats.overlay_edges),
        }
        return self._choose("knn", estimates)

    def plan_path(
        self, source: Hashable, destination: Hashable, danger: np.ndarray, gamma: float
    ) -> QueryPlan:
        """Estimate every backend for a safe-path query and pick the cheapest."""
        require_non_negative(gamma, "gamma")
        danger = np.asarray(danger, dtype=np.float64)
        qv = self.stats.dim + 1
        if self._dead and (source in self._dead or destination in self._dead):
            # Dead endpoint: every engine answers "no path" immediately.
            return self._choose("path", {
                "mtree": 0.0, "backbone": 0.0, "flood": self._flood_cost(0.0),
            })
        entry = len(self.clustering.path_to_root(source)) - 1
        safe_nodes = 0.0
        boundary_edges = 0
        classified = 0
        for root in self.clustering.roots:
            if self._dead and root in self._dead:
                # The path engine cannot classify this cluster (its
                # representative died); no cost, no safe members.
                continue
            classified += 1
            d = self.metric.distance(danger, self.mtree.routing_feature[root])
            radius = self.mtree.covering_radius[root]
            size = self.stats.sizes[root]
            if d - radius >= gamma:
                safe_nodes += size
            elif d + radius >= gamma:  # boundary: some members may be safe
                safe_nodes += 0.5 * size
                boundary_edges += max(size - 1, 0)
        classify = qv * (entry + classified)
        estimates = {
            "mtree": classify + qv * boundary_edges * DRILL_FRACTION,
            "backbone": classify + qv * boundary_edges,
            "flood": self._flood_cost(2.0 * safe_nodes * self.stats.mean_degree),
        }
        return self._choose("path", estimates)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def range(
        self, q: np.ndarray, radius: float, initiator: Hashable, *, backend: str | None = None
    ) -> PlannedResult:
        """Answer a range query through the chosen (or forced) plan."""
        q = np.asarray(q, dtype=np.float64)
        runners = {
            "mtree": lambda: self._range_engine.query(q, radius, initiator),
            "backbone": lambda: self._range_backbone(q, radius, initiator),
            "flood": lambda: self._tag_range(q, radius),
        }
        params = {"q": q, "radius": float(radius), "initiator": initiator}
        return self._execute(
            "range", params, lambda: self.plan_range(q, radius, initiator), runners, backend
        )

    def knn(
        self, q: np.ndarray, k: int, initiator: Hashable, *, backend: str | None = None
    ) -> PlannedResult:
        """Answer a k-NN query through the chosen (or forced) plan."""
        q = np.asarray(q, dtype=np.float64)
        runners = {
            "mtree": lambda: self._knn_engine.query(q, k, initiator),
            "backbone": lambda: self._knn_scan(q, k, initiator, over_backbone=True),
            "flood": lambda: self._knn_scan(q, k, initiator, over_backbone=False),
        }
        params = {"q": q, "k": int(k), "initiator": initiator}
        return self._execute(
            "knn", params, lambda: self.plan_knn(q, k, initiator), runners, backend
        )

    def path(
        self,
        source: Hashable,
        destination: Hashable,
        danger: np.ndarray,
        gamma: float,
        *,
        backend: str | None = None,
    ) -> PlannedResult:
        """Answer a safe-path query through the chosen (or forced) plan."""
        danger = np.asarray(danger, dtype=np.float64)
        runners = {
            "mtree": lambda: self._path_engine.query(source, destination, danger, gamma),
            "backbone": lambda: self._path_backbone(source, destination, danger, gamma),
            "flood": lambda: self._path_flood(source, destination, danger, gamma),
        }
        params = {
            "source": source,
            "destination": destination,
            "danger": danger,
            "gamma": float(gamma),
        }
        return self._execute(
            "path",
            params,
            lambda: self.plan_path(source, destination, danger, gamma),
            runners,
            backend,
        )

    def cache_stats(self) -> dict[str, int] | None:
        """The attached cache's counters, or None without a cache."""
        return None if self._cache is None else self._cache.stats()

    # ------------------------------------------------------------------
    # backend implementations (backbone / flood variants)
    # ------------------------------------------------------------------
    def _range_backbone(
        self, q: np.ndarray, radius: float, initiator: Hashable
    ) -> RangeQueryResult:
        """Backbone plan: visit every root, δ-compactness only, flood boundary clusters.

        Degraded, it visits every *reachable* root — the fan-out drops at
        dead relays exactly like the engine's, an unrepaired dead origin
        root decays to the engine's local-only answer, and re-elected
        roots prune with their conservative balls — so the answer equals
        the degraded M-tree plan's.
        """
        stats = MessageStats()
        qv = self.stats.dim + 1
        origin = self.clustering.root_of(initiator)
        if self._unreachable_root(origin):
            return self._range_engine._local_only(q, radius, origin, stats, qv)
        entry = len(self.clustering.path_to_root(initiator)) - 1
        self._charge(stats, qv, entry)
        self._charge(stats, 1, entry)
        if self._dead:
            lost = self._charged_sweep(self._range_engine, self._effective(origin), stats, qv, 1)
        else:
            # Unpruned fan-out: the query and its aggregate traverse every
            # backbone edge once (no directional summaries in this plan).
            lost = set()
            for a, b in self.backbone.tree.edges:
                hops = self.backbone.edge_hops(a, b)
                self._charge(stats, qv, hops)
                self._charge(stats, 1, hops)
        matches: set[Hashable] = set()
        pruned = included = descended = 0
        for root in self.clustering.roots:
            if self._unreachable_root(root) or self._effective(root) in lost:
                continue  # the degraded engines cannot consult this cluster
            center, r_root = self._routing_ball(root)
            d = self.metric.distance(q, center)
            members = self._alive_members(root)
            if d > radius + r_root:
                pruned += 1
                continue
            if d <= radius - r_root:
                included += 1
                matches.update(members)
                continue
            descended += 1
            edges = max(len(members) - 1, 0)
            self._charge(stats, qv, edges)  # query floods the cluster tree
            self._charge(stats, 1, edges)  # partial matches aggregate back
            matches.update(
                m for m in members if self.metric.distance(q, self.features[m]) <= radius
            )
        coverage = self._range_engine._coverage_after_losses(lost)
        return RangeQueryResult(
            matches, stats.total_values, pruned, included, descended,
            coverage, stats.total_drops,
        )

    def _tag_range(self, q: np.ndarray, radius: float) -> RangeQueryResult:
        """Flood plan: TAG distribute-and-collect; cost is selectivity-free."""
        out = self._tag.query(q, radius)
        return RangeQueryResult(
            out.matches, out.messages, 0, 0, self.stats.num_clusters
        )

    def _knn_scan(
        self, q: np.ndarray, k: int, initiator: Hashable, *, over_backbone: bool
    ) -> KnnResult:
        """k-NN by exhaustive scan, charged over the backbone or the overlay.

        Both variants confirm every node (k-best merge on the way back
        carries k candidates per edge), so the answer equals brute force;
        only the transport being charged differs.  The degraded backbone
        scan ranks only surviving members of clusters the engine can
        consult (live/re-elected representative, not severed behind a
        dead relay) — the same pool the degraded best-first search draws
        from, so the answers agree.
        """
        stats = MessageStats()
        qv = self.stats.dim + 1
        if over_backbone and self._degraded:
            origin = self.clustering.root_of(initiator)
            if self._unreachable_root(origin):
                return self._knn_engine._local_only(q, k, origin, stats, qv)
            self._charge(stats, qv, len(self.clustering.path_to_root(initiator)) - 1)
            if self._dead:
                lost = self._charged_sweep(
                    self._knn_engine, self._effective(origin), stats, qv, k
                )
            else:
                lost = set()
                for a, b in self.backbone.tree.edges:
                    hops = self.backbone.edge_hops(a, b)
                    self._charge(stats, qv, hops)
                    self._charge(stats, k, hops)
            pool: dict[Hashable, np.ndarray] = {}
            for root in self.clustering.roots:
                if self._unreachable_root(root) or self._effective(root) in lost:
                    continue
                members = self._alive_members(root)
                edges = max(len(members) - 1, 0)
                self._charge(stats, qv, edges)
                self._charge(stats, k, edges)
                pool.update((m, self.features[m]) for m in members)
            neighbors = brute_force_knn(pool, self.metric, q, k) if pool else []
            coverage = self._knn_engine._coverage_after_losses(lost)
            return KnnResult(
                neighbors, stats.total_values, len(pool), coverage, stats.total_drops
            )
        if over_backbone:
            for a, b in self.backbone.tree.edges:
                hops = self.backbone.edge_hops(a, b)
                self._charge(stats, qv, hops)
                self._charge(stats, k, hops)
            for root in self.clustering.roots:
                edges = max(self.stats.sizes[root] - 1, 0)
                self._charge(stats, qv, edges)
                self._charge(stats, k, edges)
        else:
            edges = self.stats.overlay_edges
            self._charge(stats, qv, edges)
            self._charge(stats, k, edges)
        neighbors = brute_force_knn(self.features, self.metric, q, k)
        return KnnResult(neighbors, stats.total_values, self.stats.n)

    def _path_backbone(
        self, source: Hashable, destination: Hashable, danger: np.ndarray, gamma: float
    ) -> PathQueryResult:
        """Backbone plan: root-ball classification, cluster floods, no drill.

        Degraded, it mirrors the path engine's semantics: dead endpoints
        answer "no path" immediately, clusters whose representative died
        are unclassifiable (their survivors stay out of the safe set and
        count as uncovered), and dead nodes never enter the safe set.
        """
        stats = MessageStats()
        qv = self.stats.dim + 1
        if self._dead and (source in self._dead or destination in self._dead):
            self._path_engine._drop(stats, DROP_DEAD_ENDPOINT)
            return PathQueryResult(None, 0, 0, 0, 0.0, stats.total_drops)
        entry = len(self.clustering.path_to_root(source)) - 1
        self._charge(stats, qv, entry)
        safe: set[Hashable] = set()
        drilled = 0
        uncovered = 0
        for root in self.clustering.roots:
            members = self._alive_members(root)
            if self._dead and root in self._dead:
                self._path_engine._drop(stats, DROP_DEAD_ROOT)
                uncovered += len(members)
                continue
            self._charge(stats, qv, 1)  # backbone fan-out, one charge per root
            d = self.metric.distance(danger, self.mtree.routing_feature[root])
            radius = self.mtree.covering_radius[root]
            if d - radius >= gamma:
                safe.update(members)
                continue
            if d + radius < gamma:
                continue
            drilled += 1
            edges = max(len(members) - 1, 0)
            self._charge(stats, qv, edges)  # classify members over the tree
            safe.update(
                m
                for m in members
                if self.metric.distance(self.features[m], danger) >= gamma
            )
        coverage = 1.0
        if self._dead:
            alive_total = sum(
                1 for n in self.clustering.assignment if n not in self._dead
            )
            coverage = 1.0 - uncovered / alive_total if alive_total else 0.0
        return self._route_safe(
            source, destination, safe, drilled, stats, coverage=coverage
        )

    def _path_flood(
        self, source: Hashable, destination: Hashable, danger: np.ndarray, gamma: float
    ) -> PathQueryResult:
        """Flood plan: flood the whole safe region, then trace the route.

        Unlike :func:`~repro.queries.path_query.bfs_flood_path` this
        floods the source's entire safe component (no early exit), which
        is what lets the returned route be canonical — identical to the
        clustered plans' — so plan choice never changes the answer.
        """
        stats = MessageStats()
        if self.metric.distance(self.features[source], danger) < gamma:
            return PathQueryResult(None, 0, 0, 0)
        safe = {
            node
            for node, feature in self.features.items()
            if self.metric.distance(feature, danger) >= gamma
        }
        component = nx.node_connected_component(self.graph.subgraph(safe), source)
        for node in component:
            degree = self.graph.degree(node)
            if degree:
                self._charge(stats, 2, degree)  # one rebroadcast per safe node
        return self._route_safe(source, destination, safe, 0, stats, flooded=len(component))

    def _route_safe(
        self,
        source: Hashable,
        destination: Hashable,
        safe: set[Hashable],
        drilled: int,
        stats: MessageStats,
        *,
        flooded: int | None = None,
        coverage: float = 1.0,
    ) -> PathQueryResult:
        """Shared tail of every path backend: canonical route through *safe*.

        Mirrors :meth:`~repro.queries.path_query.PathQueryEngine.query`'s
        region search exactly (same subgraph views, same BFS), so all
        backends return byte-identical routes for the same safe set.
        """
        safe_count = len(safe) if flooded is None else flooded
        if source not in safe or destination not in safe:
            return PathQueryResult(
                None, stats.total_values, safe_count, drilled, coverage,
                stats.total_drops,
            )
        safe_sub = self.graph.subgraph(safe)
        component = nx.node_connected_component(safe_sub, source)
        if destination not in component:
            return PathQueryResult(
                None, stats.total_values, safe_count, drilled, coverage,
                stats.total_drops,
            )
        if flooded is None:
            # Region-level search over safe cluster roots, as the engine
            # charges it; the flood plan already paid per-node above.
            region_roots = {self.clustering.root_of(node) for node in component}
            for _ in region_roots:
                self._charge(stats, 2, 1)
        path = nx.shortest_path(safe_sub.subgraph(component), source, destination)
        self._charge(stats, 1, len(path) - 1)
        return PathQueryResult(
            list(path), stats.total_values, safe_count, drilled, coverage,
            stats.total_drops,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _execute(
        self,
        op: str,
        params: Mapping[str, Any],
        plan_fn: Callable[[], QueryPlan],
        runners: Mapping[str, Callable[[], Any]],
        backend: str | None,
    ) -> PlannedResult:
        if backend is not None and backend not in PLAN_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {PLAN_BACKENDS}")
        if backend == "flood" and self._degraded:
            raise ValueError(
                "flood backend unavailable under a degraded topology: its "
                "overlay tree routes through dead nodes"
            )
        key = None
        if backend is None and self._cache is not None:
            if self._generation is not None:
                self._cache.observe_generation(self._generation())
            try:
                key = self._cache.key(op, params, context=self._cache_context())
            except TypeError:
                key = None  # un-canonicalizable parameter: skip the cache
            if key is not None:
                hit, value = self._cache.get(key)
                if hit:
                    plan, result, estimated = value
                    self._count(f"queries.cache_served.{op}")
                    self._emit(
                        "queries.cache_hit", op=op, backend=plan.backend,
                        generation=self._cache.generation,
                    )
                    return PlannedResult(plan, result, 0, estimated, cached=True)
                self._emit("queries.cache_miss", op=op, generation=self._cache.generation)
        plan = plan_fn()
        if backend is not None:
            plan = QueryPlan(op, backend, plan.estimates, "forced")
        self._count(f"queries.plans.{plan.backend}")
        self._count(f"queries.executed.{op}")
        self._emit(
            "queries.plan", op=op, backend=plan.backend, reason=plan.reason,
            estimates={k: round(v, 1) for k, v in plan.estimates.items()},
        )
        result = runners[plan.backend]()
        estimated = plan.estimates[plan.backend]
        self._emit(
            "queries.execute", op=op, backend=plan.backend,
            estimated=round(estimated, 1), actual=result.messages,
        )
        if key is not None:
            self._cache.put(key, (plan, result, estimated))
        return PlannedResult(plan, result, result.messages, estimated)

    def _choose(self, op: str, estimates: dict[str, float]) -> QueryPlan:
        backend = min(
            PLAN_BACKENDS, key=lambda name: (estimates[name], PLAN_BACKENDS.index(name))
        )
        return QueryPlan(op, backend, estimates, "min-cost")

    def _classify_range(self, q: np.ndarray, radius: float) -> dict[Hashable, str]:
        classes: dict[Hashable, str] = {}
        for root in self.clustering.roots:
            if self._unreachable_root(root):
                # Dead unreplaced representative: the degraded engines
                # cannot consult this cluster at all.
                classes[root] = "lost"
                continue
            center, r_root = self._routing_ball(root)
            d = self.metric.distance(q, center)
            if d > radius + r_root:
                classes[root] = "pruned"
            elif d <= radius - r_root:
                classes[root] = "included"
            else:
                classes[root] = "boundary"
        return classes

    def _orig_root(self, root: Hashable) -> Hashable:
        """Map a re-elected replacement back to the original root id.

        ``fanout_preview`` walks the (possibly rerouted) backbone, so
        degraded it surfaces replacement node ids; sizes and classes are
        keyed by the original roots.  Fault-free this is the identity.
        """
        return self._replaced_by.get(root, root)

    def _unreachable_root(self, root: Hashable) -> bool:
        """True when *root* is dead with no re-elected replacement."""
        return bool(self._dead) and root in self._dead and root not in self._replacements

    def _effective(self, root: Hashable) -> Hashable:
        """The node actually representing *root* on the backbone."""
        return self._replacements.get(root, root)

    def _routing_ball(self, root: Hashable) -> tuple[np.ndarray, float]:
        """The (possibly conservative replacement) ball the engines prune with."""
        return self._range_engine._routing_ball(self._effective(root))

    def _alive_members(self, root: Hashable) -> list[Hashable]:
        members = self.clustering.members(root)
        if self._dead:
            return [m for m in members if m not in self._dead]
        return list(members)

    def _flood_cost(self, cost: float) -> float:
        # Flooding routes through every node; with dead/replaced nodes
        # the degraded engines refuse it, so an infinite estimate keeps
        # it out of the argmin (and _execute rejects forcing it).
        return math.inf if self._degraded else float(cost)

    def _backbone_reach(self, start: Hashable) -> "tuple[int, set[Hashable] | None]":
        """(traversable backbone hops, reachable tree nodes | None = all).

        Fault-free the whole tree is traversable, so the precomputed
        total is returned untouched (byte-identical cost model).  With
        dead relays the walk from *start* stops at them, exactly as the
        engines' fan-out does; severed far sides contribute no hops.
        """
        if not self._dead:
            return self.stats.total_backbone_hops, None
        seen = {start}
        stack = [start]
        hops = 0
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if neighbor in self._dead:
                    continue
                hops += self.backbone.edge_hops(current, neighbor)
                stack.append(neighbor)
        return hops, seen - self._dead

    def _charged_sweep(
        self,
        engine: Any,
        start: Hashable,
        stats: MessageStats,
        qv: int,
        up: int,
    ) -> set[Hashable]:
        """Walk the backbone from *start*, charging traversed edges.

        Charges *qv* values down and *up* values back per traversable
        edge, records a dead-relay drop via *engine* for every severed
        edge, and returns the lost tree-node set (the far sides the
        query can never reach) — the same bookkeeping the degraded
        engines perform during their fan-out.
        """
        lost: set[Hashable] = set()
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if neighbor in self._dead:
                    engine._drop(stats, DROP_DEAD_RELAY)
                    lost.update(engine._side_roots(current, neighbor))
                    continue
                hops = self.backbone.edge_hops(current, neighbor)
                self._charge(stats, qv, hops)
                self._charge(stats, up, hops)
                stack.append(neighbor)
        return lost

    def _cache_context(self) -> "dict[str, Any] | None":
        if not self._degraded:
            return None
        return {
            "dead": sorted(self._dead, key=repr),
            "root_replacements": sorted(self._replacements.items(), key=repr),
        }

    def _route_hops_from(self, start: Hashable) -> dict[Hashable, int]:
        cached = self._route_cache.get(start)
        if cached is not None:
            return cached
        hops: dict[Hashable, int] = {start: 0}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.backbone.tree.neighbors(current):
                if neighbor in hops or (self._dead and neighbor in self._dead):
                    continue
                hops[neighbor] = hops[current] + self.backbone.edge_hops(current, neighbor)
                stack.append(neighbor)
        self._route_cache[start] = hops
        return hops

    @staticmethod
    def _charge(stats: MessageStats, values: int, hops: int) -> None:
        if hops > 0:
            stats.charge("query", CATEGORY_QUERY, values, hops)

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _emit(self, type_: str, **data: Any) -> None:
        if self._emit_fn is not None:
            self._emit_fn(type_, **data)

    def _tracer_emit(self, tracer: Tracer) -> Callable[..., None]:
        def emit(type_: str, **data: Any) -> None:
            self._seq += 1
            tracer.emit(float(self._seq), type_, None, **data)

        return emit

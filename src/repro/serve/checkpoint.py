"""Atomic, versioned, integrity-checked service checkpoints.

A checkpoint is a single file: one UTF-8 JSON header line (schema
version, stream position, payload byte length, SHA-256 of the payload)
followed by a pickled state payload.  Writes go to a temp file in the
same directory, are fsynced, then published with ``os.replace`` — a
checkpoint is either fully present or absent, never torn, even under
SIGKILL mid-write.

:meth:`CheckpointManager.load_latest` walks checkpoints newest-first and
returns the first one whose header parses, whose schema is supported,
and whose payload hash matches — a torn or corrupted newest file (the
expected artifact of a kill) silently falls back to the previous one.
Restore integrity failures are loud (``serve.checkpoint_rejected``
events + counter), never crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.serve.context import ServeContext

#: Checkpoint file schema; bump on incompatible payload changes.
CHECKPOINT_SCHEMA = 1

_PREFIX = "ckpt-"
_SUFFIX = ".bin"


class CheckpointManager:
    """Writes and restores atomic checkpoints under one directory."""

    def __init__(self, directory: str | Path, ctx: ServeContext, *, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._ctx = ctx
        self.writes = 0

    def _path_for(self, seq: int) -> Path:
        return self.directory / f"{_PREFIX}{seq:012d}{_SUFFIX}"

    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def write(self, state: dict[str, Any], *, seq: int) -> Path:
        """Atomically persist *state* as the checkpoint for stream position *seq*."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "schema": CHECKPOINT_SCHEMA,
            "seq": int(seq),
            "length": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        fd, tmp_name = tempfile.mkstemp(prefix=".ckpt-", dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            final = self._path_for(seq)
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        self._ctx.metrics.counter("serve.checkpoint_writes").inc()
        self._ctx.emit("serve.checkpoint_write", seq=int(seq), bytes=len(blob))
        self._prune()
        return final

    def _prune(self) -> None:
        files = self.checkpoints()
        for stale in files[: max(0, len(files) - self.keep)]:
            try:
                stale.unlink()
            except OSError:
                pass

    def _read(self, path: Path) -> tuple[dict[str, Any], dict[str, Any]]:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
        header = json.loads(header_line.decode("utf-8"))
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(f"unsupported checkpoint schema {header.get('schema')!r}")
        if len(payload) != header.get("length"):
            raise ValueError("checkpoint payload truncated")
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise ValueError("checkpoint payload hash mismatch")
        return header, pickle.loads(payload)

    def load_latest(self) -> tuple[dict[str, Any], dict[str, Any]] | None:
        """Restore the newest intact checkpoint as ``(header, state)``.

        Corrupt or incompatible files are skipped (newest-first) with a
        ``serve.checkpoint_rejected`` event; returns None when no intact
        checkpoint exists.
        """
        for path in reversed(self.checkpoints()):
            try:
                header, state = self._read(path)
            except (OSError, ValueError, KeyError, json.JSONDecodeError, pickle.UnpicklingError, EOFError) as exc:
                self._ctx.metrics.counter("serve.checkpoint_rejected").inc()
                self._ctx.emit("serve.checkpoint_rejected", file=path.name, error=repr(exc))
                continue
            self._ctx.emit("serve.checkpoint_restore", seq=header["seq"], file=path.name)
            return header, state
        return None

"""Query API: range/knn/path/snapshot/healthz over the live clustering state.

:class:`QueryService` routes every query through the **cost-model query
planner** (:mod:`repro.queries.planner`), built lazily from the
pipeline's maintenance state and rebuilt under an explicit **staleness
bound**: a query is never answered from a planner more than
``staleness_updates`` maintenance updates behind the live state, and
every response reports how stale its view actually was plus the plan the
planner chose (backend + estimated vs actual message cost).  Answers are
memoized in a :class:`~repro.queries.result_cache.QueryResultCache` that
survives planner rebuilds; the maintenance session's structure
generation invalidates it, so a cached answer is never served across a
membership change.  Before the bootstrap clustering exists, queries
return a structured ``not_ready`` error rather than blocking.

:class:`ApiServer` exposes the same operations over a newline-delimited
JSON TCP protocol (``{"op": "range", "q": [...], "radius": ...}`` in,
one JSON object out per line) — `/healthz`-style liveness included — so
a running service can be probed with nothing but a socket.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Hashable

import numpy as np

from repro.index.backbone import build_backbone
from repro.index.mtree import build_mtree
from repro.queries.planner import PlannedResult, QueryPlanner
from repro.queries.result_cache import QueryResultCache
from repro.serve.context import ServeContext
from repro.serve.pipeline import ClusteringPipeline


class NotReadyError(RuntimeError):
    """Raised when queries arrive before the bootstrap clustering exists."""


class QueryService:
    """Answers queries from staleness-bounded snapshots of pipeline state.

    Parameters
    ----------
    pipeline:
        The live pipeline (read-only access; asyncio's single thread
        means state is consistent between awaits).
    staleness_updates:
        Maximum maintenance updates the query engines may lag the live
        state before they are rebuilt.
    health:
        Optional callable returning the service's ``/healthz`` payload.
    """

    def __init__(
        self,
        pipeline: ClusteringPipeline,
        ctx: ServeContext,
        *,
        staleness_updates: int = 500,
        health: Callable[[], dict[str, Any]] | None = None,
    ):
        self.pipeline = pipeline
        self.ctx = ctx
        self.staleness_updates = staleness_updates
        self._health = health
        self._built_version = -1
        self._planner: QueryPlanner | None = None
        self._cache = QueryResultCache(metrics=ctx.metrics)
        self._by_name: dict[str, Hashable] = {str(n): n for n in pipeline.nodes}
        self.rebuilds = 0

    def _resolve(self, name: Any) -> Hashable:
        node = self._by_name.get(str(name))
        if node is None:
            raise KeyError(f"unknown node {name!r}")
        return node

    def _get_planner(self) -> QueryPlanner:
        session = self.pipeline.session
        if session is None:
            raise NotReadyError("clustering not bootstrapped yet")
        behind = self.pipeline.version - self._built_version
        if self._planner is None or behind > self.staleness_updates:
            clustering = session.current_clustering()
            features = session.features
            metric = self.pipeline.metric
            mtree = build_mtree(clustering, features, metric)
            backbone = build_backbone(self.pipeline.graph, clustering)
            # The result cache outlives planner rebuilds: its entries are
            # keyed by query content and swept by the session's structure
            # generation, not by which planner instance computed them.
            self._planner = QueryPlanner(
                self.pipeline.graph,
                clustering,
                features,
                metric,
                mtree,
                backbone,
                metrics=self.ctx.metrics,
                emit=self.ctx.emit,
                cache=self._cache,
                generation=lambda: session.generation,
            )
            self._built_version = self.pipeline.version
            self.rebuilds += 1
            self.ctx.metrics.counter("serve.engine_rebuilds").inc()
            self.ctx.emit("serve.engine_rebuild", version=self.pipeline.version)
        return self._planner

    def _plan_info(self, planned: PlannedResult) -> dict[str, Any]:
        return {
            "backend": planned.plan.backend,
            "reason": planned.plan.reason,
            "estimated": round(planned.estimated, 1),
            "cached": planned.cached,
        }

    def _staleness(self) -> dict[str, Any]:
        return {
            "updates_behind": self.pipeline.version - self._built_version,
            "bound": self.staleness_updates,
            "seconds_since_reading": round(self.pipeline.staleness(), 6),
        }

    def range_query(self, q, radius: float, initiator: Any | None = None) -> dict[str, Any]:
        """Range query; returns matches, cost, coverage, plan, staleness."""
        planner = self._get_planner()
        start = self._resolve(initiator) if initiator is not None else self.pipeline.nodes[0]
        planned = planner.range(np.asarray(q, dtype=np.float64), float(radius), start)
        result = planned.result
        self.ctx.metrics.counter("serve.queries.range").inc()
        return {
            "matches": sorted(str(node) for node in result.matches),
            "messages": planned.messages,
            "coverage": result.coverage,
            "drops": result.drops,
            "plan": self._plan_info(planned),
            "staleness": self._staleness(),
        }

    def knn_query(self, q, k: int, initiator: Any | None = None) -> dict[str, Any]:
        """k-NN query; returns ranked neighbors, cost, plan, staleness."""
        planner = self._get_planner()
        start = self._resolve(initiator) if initiator is not None else self.pipeline.nodes[0]
        planned = planner.knn(np.asarray(q, dtype=np.float64), int(k), start)
        result = planned.result
        self.ctx.metrics.counter("serve.queries.knn").inc()
        return {
            "neighbors": [
                {"node": str(node), "distance": round(dist, 9)}
                for node, dist in result.neighbors
            ],
            "messages": planned.messages,
            "coverage": result.coverage,
            "drops": result.drops,
            "plan": self._plan_info(planned),
            "staleness": self._staleness(),
        }

    def path_query(self, source: Any, destination: Any, danger, gamma: float) -> dict[str, Any]:
        """Safe-path query; returns the path (or None), cost, plan, staleness."""
        planner = self._get_planner()
        planned = planner.path(
            self._resolve(source),
            self._resolve(destination),
            np.asarray(danger, dtype=np.float64),
            float(gamma),
        )
        result = planned.result
        self.ctx.metrics.counter("serve.queries.path").inc()
        return {
            "path": None if result.path is None else [str(n) for n in result.path],
            "messages": planned.messages,
            "coverage": result.coverage,
            "drops": result.drops,
            "plan": self._plan_info(planned),
            "staleness": self._staleness(),
        }

    def snapshot(self) -> dict[str, Any]:
        """The pipeline's canonical digest snapshot (see pipeline docs)."""
        self.ctx.metrics.counter("serve.queries.snapshot").inc()
        return self.pipeline.snapshot()

    def healthz(self) -> dict[str, Any]:
        """Service liveness/degradation payload."""
        payload = self._health() if self._health is not None else {}
        payload.setdefault("status", "ok")
        payload["ready"] = self.pipeline.session is not None
        payload["clusters"] = self.pipeline.num_clusters
        payload["coverage"] = round(self.pipeline.coverage(), 6)
        payload["staleness"] = self._staleness()
        return payload

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Route one decoded JSON request to its operation."""
        op = request.get("op")
        try:
            if op == "range":
                return self.range_query(request["q"], request["radius"], request.get("initiator"))
            if op == "knn":
                return self.knn_query(request["q"], request["k"], request.get("initiator"))
            if op == "path":
                return self.path_query(
                    request["source"], request["destination"], request["danger"], request["gamma"]
                )
            if op == "snapshot":
                return self.snapshot()
            if op == "healthz":
                return self.healthz()
            return {"error": f"unknown op {op!r}"}
        except NotReadyError as exc:
            return {"error": "not_ready", "detail": str(exc)}
        except (KeyError, ValueError, TypeError) as exc:
            return {"error": "bad_request", "detail": repr(exc)}


class ApiServer:
    """Newline-delimited JSON TCP front door for a :class:`QueryService`."""

    def __init__(self, service: QueryService, ctx: ServeContext, *, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.ctx = ctx
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line.decode("utf-8"))
                    response = self.service.dispatch(request)
                except json.JSONDecodeError as exc:
                    response = {"error": "bad_json", "detail": str(exc)}
                writer.write(json.dumps(response, sort_keys=True).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            writer.close()

    async def run(self) -> None:
        """Serve until cancelled (runs as a supervised stage)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.ctx.emit("serve.api_listen", host=self.host, port=self.port)
        async with self._server:
            await self._server.serve_forever()

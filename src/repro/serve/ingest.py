"""Ingest front-end: one supervised stage per reading source.

Each :class:`IngestStage` pulls readings from its (replayable) source and
publishes them onto the broker's ``readings`` topic, providing the
service's resilience envelope around untrusted input:

- **retry/timeout/backoff** — every fetch runs under a timeout;
  timeouts and :class:`TransientSourceError` are retried with
  exponential backoff (``serve.source_retries`` counter,
  ``serve.source_retry`` events).  Exhausted retries crash the stage so
  the supervisor takes over (restart with its own backoff, crash
  budget).
- **validation** — readings with unknown nodes or non-finite values are
  counted (``serve.malformed_total``), traced
  (``serve.reading_malformed``) and dropped before they can poison the
  pipeline.
- **chaos hooks** — a :class:`~repro.serve.chaos.ChaosDriver` can stall
  the source, corrupt a reading, skew the source clock, or crash the
  stage at exact stream positions, all seed-deterministically.

The stage keeps no state of its own beyond the source cursor, so a
supervisor restart resumes exactly where the crash happened.
"""

from __future__ import annotations

import asyncio

from repro.serve.broker import Broker
from repro.serve.chaos import ChaosDriver
from repro.serve.context import ServeContext
from repro.serve.pipeline import finite_value
from repro.serve.readings import Reading, TransientSourceError
from repro.serve.supervisor import StageCrash

#: Broker topic carrying validated readings to the pipeline.
READINGS_TOPIC = "readings"


class IngestStage:
    """Supervised loop moving one source's readings onto the broker.

    Parameters
    ----------
    source:
        Any replayable source (``next_reading``/``exhausted``/``name``).
    known_nodes:
        Node ids the pipeline accepts; anything else is malformed.
    rate:
        Target aggregate readings/second (0 = as fast as possible).
        Pacing is by global stream position, so sharded sources stay
        roughly aligned.
    fetch_timeout, max_retries, retry_base:
        Per-fetch timeout and the retry envelope (backoff doubles per
        attempt from *retry_base*).
    """

    def __init__(
        self,
        source,
        broker: Broker,
        ctx: ServeContext,
        *,
        known_nodes,
        stop_event: asyncio.Event,
        chaos: ChaosDriver | None = None,
        rate: float = 0.0,
        fetch_timeout: float = 5.0,
        max_retries: int = 4,
        retry_base: float = 0.05,
    ):
        self.source = source
        self.broker = broker
        self.ctx = ctx
        self.known_nodes = set(known_nodes)
        self.stop_event = stop_event
        self.chaos = chaos
        self.rate = rate
        self.fetch_timeout = fetch_timeout
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.name = f"ingest:{source.name}"
        self.published = 0
        self.malformed = 0
        self._clock_skew = 0.0
        self._started_at: float | None = None

    async def _fetch(self) -> Reading | None:
        attempt = 0
        while True:
            try:
                return await asyncio.wait_for(self.source.next_reading(), self.fetch_timeout)
            except (asyncio.TimeoutError, TransientSourceError) as exc:
                attempt += 1
                self.ctx.metrics.counter("serve.source_retries").inc()
                if attempt > self.max_retries:
                    raise StageCrash(f"{self.name}: retries exhausted ({exc!r})") from exc
                backoff = self.retry_base * 2 ** (attempt - 1)
                self.ctx.emit(
                    "serve.source_retry",
                    self.source.name,
                    source=self.source.name,
                    attempt=attempt,
                    backoff=round(backoff, 4),
                    error=repr(exc),
                )
                await asyncio.sleep(backoff)

    async def _apply_chaos(self, reading: Reading) -> Reading:
        if self.chaos is None:
            return reading
        position = reading.seq
        for crash in self.chaos.stage_crashes(self.name, position):
            raise StageCrash(f"{self.name}: injected crash at position {crash.time}")
        for _, duration in self.chaos.stalls(self.source.name, position):
            self.ctx.emit(
                "serve.source_stall",
                self.source.name,
                source=self.source.name,
                duration=duration,
                seq=reading.seq,
            )
            await asyncio.sleep(duration)
        for offset in self.chaos.skews(self.source.name, position):
            self._clock_skew += offset
            self.ctx.emit(
                "serve.clock_skew",
                self.source.name,
                source=self.source.name,
                offset=offset,
                total=self._clock_skew,
            )
        if self.chaos.malformed(self.source.name, position):
            reading = Reading(
                seq=reading.seq,
                node=reading.node,
                value=float("nan"),
                timestamp=reading.timestamp,
                source=reading.source,
            )
        return reading

    def _valid(self, reading: Reading) -> bool:
        if reading.node in self.known_nodes and finite_value(reading.value):
            return True
        self.malformed += 1
        self.ctx.metrics.counter("serve.malformed_total").inc()
        self.ctx.emit(
            "serve.reading_malformed",
            self.source.name,
            source=self.source.name,
            seq=reading.seq,
            reading_node=str(reading.node),
        )
        return False

    async def _pace(self, reading: Reading) -> None:
        if self.rate <= 0:
            return
        if self._started_at is None:
            self._started_at = self.ctx.now()
        target = reading.seq / self.rate
        delay = target - (self.ctx.now() - self._started_at)
        if delay > 0:
            await asyncio.sleep(delay)

    async def run(self) -> None:
        """Pump the source until exhaustion or a drain request.

        Crashes (injected or organic) propagate to the supervisor; the
        source cursor survives, so the restarted stage resumes in place.
        """
        while not self.stop_event.is_set():
            reading = await self._fetch()
            if reading is None:
                break
            reading = await self._apply_chaos(reading)
            if not self._valid(reading):
                continue
            if self._clock_skew:
                reading = Reading(
                    seq=reading.seq,
                    node=reading.node,
                    value=reading.value,
                    timestamp=reading.timestamp + self._clock_skew,
                    source=reading.source,
                )
            await self._pace(reading)
            await self.broker.publish(READINGS_TOPIC, reading)
            self.published += 1
        self.ctx.emit(
            "serve.source_end",
            self.source.name,
            source=self.source.name,
            published=self.published,
            drained=self.stop_event.is_set(),
        )

"""Stage supervision: restart crashed stages with backoff, under a crash budget.

Every long-running piece of the service (each ingest source, the
pipeline consumer, the checkpointer, the query API) runs as a supervised
*stage*.  A stage that raises is restarted after an exponential backoff
(``backoff_base · 2^(restarts-1)``, capped); a stage that exhausts its
crash budget is abandoned — and if it was marked *critical*, the whole
service fails fast (exit code 1) rather than limping along silently.

Observability: every crash emits a ``serve.stage_crash`` trace event and
bumps ``serve.stage_restarts``; a budget exhaustion emits
``serve.stage_giveup``.  Restart counts are part of the ``/healthz``
payload.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.serve.context import ServeContext


class StageCrash(RuntimeError):
    """Raised inside a stage to simulate (or signal) a stage crash."""


@dataclass
class StageSpec:
    """One supervised stage: a restartable coroutine factory plus its record."""

    name: str
    factory: Callable[[], Awaitable[None]]
    critical: bool = True
    restarts: int = 0
    done: bool = False
    failed: bool = False
    task: asyncio.Task | None = field(default=None, repr=False)


class Supervisor:
    """Runs stages as tasks, restarting crashes with exponential backoff.

    Parameters
    ----------
    ctx:
        Service context for events/metrics.
    crash_budget:
        Restarts allowed per stage before it is abandoned.
    backoff_base:
        First restart delay in seconds; doubles per restart up to
        *backoff_cap*.
    """

    def __init__(
        self,
        ctx: ServeContext,
        *,
        crash_budget: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if crash_budget < 0:
            raise ValueError(f"crash_budget must be >= 0, got {crash_budget}")
        self._ctx = ctx
        self.crash_budget = crash_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stages: dict[str, StageSpec] = {}
        self.failed = asyncio.Event()

    def add(self, name: str, factory: Callable[[], Awaitable[None]], *, critical: bool = True) -> StageSpec:
        """Register a stage; started by :meth:`start`."""
        if name in self.stages:
            raise ValueError(f"duplicate stage name {name!r}")
        spec = StageSpec(name, factory, critical)
        self.stages[name] = spec
        return spec

    def start(self) -> None:
        """Launch one supervised task per registered stage."""
        for spec in self.stages.values():
            if spec.task is None:
                spec.task = asyncio.create_task(self._run_stage(spec), name=f"stage:{spec.name}")

    async def _run_stage(self, spec: StageSpec) -> None:
        while True:
            try:
                await spec.factory()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                spec.restarts += 1
                self._ctx.metrics.counter("serve.stage_restarts").inc()
                self._ctx.emit("serve.stage_crash", spec.name, stage=spec.name, error=repr(exc))
                if spec.restarts > self.crash_budget:
                    spec.failed = True
                    self._ctx.emit("serve.stage_giveup", spec.name, stage=spec.name, restarts=spec.restarts)
                    if spec.critical:
                        self.failed.set()
                    return
                backoff = min(self.backoff_base * 2 ** (spec.restarts - 1), self.backoff_cap)
                self._ctx.emit("serve.stage_restart", spec.name, stage=spec.name, backoff=round(backoff, 4))
                await asyncio.sleep(backoff)
                continue
            spec.done = True
            self._ctx.emit("serve.stage_done", spec.name, stage=spec.name)
            return

    def restart_counts(self) -> dict[str, int]:
        """Restarts per stage (the ``/healthz`` breakdown)."""
        return {name: spec.restarts for name, spec in self.stages.items()}

    def total_restarts(self) -> int:
        """Restarts across all stages."""
        return sum(spec.restarts for spec in self.stages.values())

    def all_done(self, names: list[str] | None = None) -> bool:
        """True when the named stages (default: all) finished or were abandoned."""
        specs = (
            self.stages.values()
            if names is None
            else [self.stages[name] for name in names]
        )
        return all(spec.done or spec.failed for spec in specs)

    async def cancel(self) -> None:
        """Cancel every still-running stage task and await them."""
        tasks = [spec.task for spec in self.stages.values() if spec.task is not None]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

"""``repro serve`` — run the resilient live clustering service.

Examples::

    repro serve --n 48 --rounds 120 --checkpoint-dir /tmp/ckpt \\
                --checkpoint-every 5s --snapshot-out final.json
    repro serve --n 48 --rounds 120 --checkpoint-dir /tmp/ckpt --resume
    repro serve --n 48 --rounds 200 --sources 3 --backpressure shed-oldest \\
                --chaos-seed 11 --chaos-stage-crashes 2 --chaos-stalls 2 \\
                --trace serve.jsonl

The process exits 0 after a graceful drain (SIGTERM/SIGINT or stream
end, with a final checkpoint when checkpointing is configured) and 1
when a critical stage exhausts its crash budget.  See docs/SERVING.md
for the lifecycle and resume runbook.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.broker import POLICY_BLOCK, POLICY_SHED_OLDEST


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="run the supervised live clustering service",
    )
    stream = parser.add_argument_group("stream")
    stream.add_argument("--n", type=int, default=64, help="network size")
    stream.add_argument("--seed", type=int, default=7, help="replay stream seed")
    stream.add_argument("--rounds", type=int, default=200, help="measurement rounds to replay")
    stream.add_argument("--density", type=float, default=0.8, help="topology density")
    stream.add_argument("--file", metavar="PATH", help="JSONL reading source instead of the synthetic replay")
    stream.add_argument("--sources", type=int, default=1, help="shard the stream across this many ingest sources")
    stream.add_argument("--rate", type=float, default=0.0, help="target readings/second (0 = unpaced)")

    clustering = parser.add_argument_group("clustering")
    clustering.add_argument("--delta", type=float, default=0.35, help="clustering threshold")
    clustering.add_argument("--slack", type=float, default=0.05, help="maintenance slack (2*slack < delta)")
    clustering.add_argument(
        "--bootstrap-rounds", type=int, default=12,
        help="RLS updates per node before the initial clustering",
    )

    robust = parser.add_argument_group("robustness")
    robust.add_argument("--queue-size", type=int, default=1024, help="pipeline queue bound")
    robust.add_argument(
        "--backpressure", choices=(POLICY_BLOCK, POLICY_SHED_OLDEST), default=POLICY_BLOCK,
        help="pipeline queue overflow policy",
    )
    robust.add_argument("--crash-budget", type=int, default=5, help="restarts allowed per stage")
    robust.add_argument("--drain-timeout", type=float, default=30.0, help="graceful drain deadline (seconds)")
    robust.add_argument("--checkpoint-dir", metavar="DIR", help="directory for atomic checkpoints")
    robust.add_argument(
        "--checkpoint-every", metavar="N[s]", default=None,
        help="checkpoint cadence: '5s' = every 5 seconds, '200' = every 200 readings",
    )
    robust.add_argument("--resume", action="store_true", help="restore the newest intact checkpoint first")

    query = parser.add_argument_group("query API")
    query.add_argument("--port", type=int, default=None, help="serve the JSON query API on this TCP port (0 = ephemeral)")
    query.add_argument(
        "--staleness-updates", type=int, default=500,
        help="max maintenance updates the query engines may lag",
    )

    chaos = parser.add_argument_group("chaos (seed-deterministic fault injection)")
    chaos.add_argument("--chaos-seed", type=int, default=None, help="fault plan seed (enables chaos)")
    chaos.add_argument("--chaos-stage-crashes", type=int, default=0, help="injected stage crashes")
    chaos.add_argument("--chaos-stalls", type=int, default=0, help="injected source stalls")
    chaos.add_argument("--chaos-stall-duration", type=float, default=0.2, help="seconds per stall")
    chaos.add_argument("--chaos-malformed", type=int, default=0, help="injected corrupted readings")

    out = parser.add_argument_group("artifacts")
    out.add_argument("--trace", metavar="PATH", help="export the serve.* JSONL trace at exit")
    out.add_argument("--metrics-out", metavar="PATH", help="export the metrics registry as JSON at exit")
    out.add_argument("--snapshot-out", metavar="PATH", help="write the canonical digest snapshot at exit")
    return parser


def parse_checkpoint_every(raw: str | None) -> tuple[float | None, int | None]:
    """Parse ``--checkpoint-every``: ``'5s'`` → seconds, ``'200'`` → readings."""
    if raw is None:
        return None, None
    text = raw.strip().lower()
    try:
        if text.endswith("s"):
            seconds = float(text[:-1])
            if seconds <= 0:
                raise ValueError
            return seconds, None
        readings = int(text)
        if readings <= 0:
            raise ValueError
        return None, readings
    except ValueError:
        raise SystemExit(
            f"--checkpoint-every must be a positive duration like '5s' or a reading count, got {raw!r}"
        ) from None


def config_from_args(args: argparse.Namespace):
    """Translate parsed arguments into a :class:`ServiceConfig`."""
    from repro.serve.service import ServiceConfig
    from repro.sim.faults import FaultPlan

    every_s, every_readings = parse_checkpoint_every(args.checkpoint_every)
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    plan = None
    if args.chaos_seed is not None:
        total = args.rounds * args.n
        stages = ["pipeline"] + [f"ingest:src-{i}" for i in range(args.sources)]
        sources = [f"src-{i}" for i in range(args.sources)]
        plan = FaultPlan.random_service(
            seed=args.chaos_seed,
            positions=(0.15 * total, 0.75 * total),
            stages=stages,
            stage_crashes=args.chaos_stage_crashes,
            sources=sources,
            stalls=args.chaos_stalls,
            stall_duration=args.chaos_stall_duration,
            malformed=args.chaos_malformed,
        )
    return ServiceConfig(
        n=args.n,
        seed=args.seed,
        rounds=args.rounds,
        density=args.density,
        delta=args.delta,
        slack=args.slack,
        bootstrap_rounds=args.bootstrap_rounds,
        sources=args.sources,
        queue_size=args.queue_size,
        backpressure=args.backpressure,
        rate=args.rate,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_s=every_s,
        checkpoint_every_readings=every_readings,
        resume=args.resume,
        crash_budget=args.crash_budget,
        drain_timeout=args.drain_timeout,
        staleness_updates=args.staleness_updates,
        port=args.port,
        file_source=args.file,
        trace_out=args.trace,
        metrics_out=args.metrics_out,
        snapshot_out=args.snapshot_out,
        chaos_plan=plan,
    )


def main(argv: list[str] | None = None) -> int:
    """``repro serve`` entry point."""
    args = build_parser().parse_args(argv)
    from repro.serve.service import ClusteringService

    config = config_from_args(args)
    service = ClusteringService(config)
    code = service.run()
    pipeline = service.pipeline
    print(
        f"serve: exit {code} ({service.drain_reason or 'failed'}) — "
        f"applied {pipeline.applied_total} readings, "
        f"{pipeline.num_clusters} clusters, "
        f"coverage {pipeline.coverage():.3f}, "
        f"restarts {service.supervisor.total_restarts()}",
        file=sys.stderr,
    )
    return code


if __name__ == "__main__":
    sys.exit(main())

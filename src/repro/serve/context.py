"""Shared service context: clock, tracer, and metrics wiring.

Every serve-layer component receives one :class:`ServeContext` instead of
separate tracer/metrics/clock arguments.  The context timestamps
``serve.*`` trace events with seconds since service start (monotonic), so
traces from different runs line up at t=0 and the ``repro trace``
inspector's ``--since/--until`` filters work naturally on them.
"""

from __future__ import annotations

import time
from typing import Any, Hashable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class ServeContext:
    """Clock + observability handles shared by every service component.

    Parameters
    ----------
    tracer:
        Destination for ``serve.*`` trace events (a fresh one by default).
    metrics:
        Registry for the service's counters and gauges (fresh by default).
    """

    def __init__(self, tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._t0 = time.monotonic()

    def now(self) -> float:
        """Seconds since service start (monotonic)."""
        return time.monotonic() - self._t0

    def emit(self, type: str, subject: Hashable | None = None, **data: Any) -> None:
        """Emit one ``serve.*`` trace event stamped with the service clock."""
        self.tracer.emit(round(self.now(), 6), type, subject, **data)

"""The resilient live clustering service (``repro serve``).

Turns the batch reproduction into a long-running, supervised process:
streaming ingest with bounded, backpressured queues; RLS model updates
driving incremental re-clustering through the slack-Δ maintenance
protocol; periodic atomic checkpoints with kill-and-resume equivalence;
a staleness-bounded query API; and seed-deterministic chaos hooks.

Layer map (each module's docstring carries the detail):

- :mod:`repro.serve.context` — shared clock + tracer + metrics handle
- :mod:`repro.serve.readings` — replayable reading sources
- :mod:`repro.serve.broker` — in-process pub/sub with backpressure
- :mod:`repro.serve.ingest` — supervised per-source intake stages
- :mod:`repro.serve.pipeline` — the clustering state machine
- :mod:`repro.serve.supervisor` — restart-with-backoff + crash budget
- :mod:`repro.serve.checkpoint` — atomic versioned checkpoints
- :mod:`repro.serve.chaos` — service-level fault-plan execution
- :mod:`repro.serve.api` — range/path/snapshot/healthz query surface
- :mod:`repro.serve.service` — lifecycle orchestration
- :mod:`repro.serve.cli` — the ``repro serve`` command

See docs/SERVING.md for the lifecycle diagram and runbooks.
"""

from repro.serve.api import ApiServer, NotReadyError, QueryService
from repro.serve.broker import POLICY_BLOCK, POLICY_SHED_OLDEST, Broker, Subscription
from repro.serve.chaos import ChaosDriver
from repro.serve.checkpoint import CHECKPOINT_SCHEMA, CheckpointManager
from repro.serve.context import ServeContext
from repro.serve.ingest import READINGS_TOPIC, IngestStage
from repro.serve.pipeline import ClusteringPipeline, snapshots_equal
from repro.serve.readings import (
    FileSource,
    Reading,
    ReplaySource,
    ReplaySpec,
    ReplayStream,
    TransientSourceError,
)
from repro.serve.service import EXIT_FAILED, EXIT_OK, ClusteringService, ServiceConfig
from repro.serve.supervisor import StageCrash, StageSpec, Supervisor

__all__ = [
    "ApiServer",
    "Broker",
    "CHECKPOINT_SCHEMA",
    "ChaosDriver",
    "CheckpointManager",
    "ClusteringPipeline",
    "ClusteringService",
    "EXIT_FAILED",
    "EXIT_OK",
    "FileSource",
    "IngestStage",
    "NotReadyError",
    "POLICY_BLOCK",
    "POLICY_SHED_OLDEST",
    "QueryService",
    "READINGS_TOPIC",
    "Reading",
    "ReplaySource",
    "ReplaySpec",
    "ReplayStream",
    "ServeContext",
    "ServiceConfig",
    "StageCrash",
    "StageSpec",
    "Subscription",
    "Supervisor",
    "TransientSourceError",
    "snapshots_equal",
]

"""The clustering pipeline: readings → RLS models → incremental clusters.

This is the service's single-writer state machine.  Each applied reading
updates the owning node's :class:`RecursiveLeastSquares` estimator over
the AR(1) regressors ``[previous_value, 1]``; the model's first
coefficient (the node's α) is the clustering feature, exactly the
paper's setup (§7, Appendix A).  Once every node has absorbed a
bootstrap quota of updates, an initial δ-clustering is built at the
slack-tightened threshold ``delta - 2·slack`` and handed to a
:class:`MaintenanceSession`, after which every coefficient change flows
through the paper's A1-A3 incremental maintenance conditions.

Determinism contract: applying the same readings in the same order from
the same (or a restored) state yields bit-identical estimators, clusters
and message totals — the property the kill-and-resume equivalence check
certifies.  Per-node ``last_seq`` makes replayed readings idempotent, so
sources may resume with overlap.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Hashable

import numpy as np

from repro.baselines.spanning_forest import run_spanning_forest
from repro.core.maintenance import MaintenanceSession
from repro.features.metrics import EuclideanMetric, Metric
from repro.geometry.topology import Topology
from repro.models.rls import RecursiveLeastSquares
from repro.serve.context import ServeContext
from repro.serve.readings import Reading

#: Pipeline state-dict schema; bump on incompatible changes.
PIPELINE_SCHEMA = 1

#: Outcomes of :meth:`ClusteringPipeline.apply`.
APPLIED = "applied"
FIRST = "first"
SKIPPED = "skipped"


class ClusteringPipeline:
    """Single-writer clustering state fed by the broker's reading queue.

    Parameters
    ----------
    topology:
        The sensor network (placement + communication graph).
    ctx:
        Service context for metrics/trace emission.
    delta, slack:
        The paper's δ and maintenance slack Δ (``2·slack < delta``).
    bootstrap_rounds:
        RLS updates every node must absorb before the initial clustering
        is built (early coefficients are dominated by the prior).
    coverage_rounds:
        A node counts as *covered* while its last applied reading is at
        most this many rounds behind the stream head; the fraction of
        covered nodes is the ``serve.coverage`` gauge.
    metric:
        Feature-space metric (Euclidean over the 1-d α feature by default).
    """

    def __init__(
        self,
        topology: Topology,
        ctx: ServeContext,
        *,
        delta: float,
        slack: float,
        bootstrap_rounds: int = 12,
        coverage_rounds: int = 4,
        metric: Metric | None = None,
    ):
        if bootstrap_rounds < 1:
            raise ValueError(f"bootstrap_rounds must be >= 1, got {bootstrap_rounds}")
        self.topology = topology
        self.graph = topology.graph
        self.ctx = ctx
        self.delta = float(delta)
        self.slack = float(slack)
        self.bootstrap_rounds = bootstrap_rounds
        self.coverage_rounds = coverage_rounds
        self.metric = metric if metric is not None else EuclideanMetric()
        self.nodes = list(self.graph.nodes)
        self.n = len(self.nodes)

        self.estimators: dict[Hashable, RecursiveLeastSquares] = {
            node: RecursiveLeastSquares(order=2) for node in self.nodes
        }
        self.last_value: dict[Hashable, float] = {}
        self.last_seq: dict[Hashable, int] = {}
        self.applied_total = 0
        self.applied_seq = -1
        self.session: MaintenanceSession | None = None
        self.version = 0  # maintenance updates absorbed since clustering
        self.last_apply_wall = ctx.now()
        self._ready_nodes = 0  # nodes past the bootstrap quota

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def apply(self, reading: Reading) -> str:
        """Absorb one reading; returns ``applied``/``first``/``skipped``.

        Re-delivered readings (``seq`` at or below the node's last
        applied position) are skipped, which makes resume-with-overlap
        idempotent.
        """
        node = reading.node
        if node not in self.estimators or reading.seq <= self.last_seq.get(node, -1):
            self.ctx.metrics.counter("serve.skipped_total").inc()
            return SKIPPED
        prev = self.last_value.get(node)
        self.last_value[node] = float(reading.value)
        self.last_seq[node] = reading.seq
        self.applied_seq = max(self.applied_seq, reading.seq)
        self.applied_total += 1
        self.last_apply_wall = self.ctx.now()
        self.ctx.metrics.counter("serve.applied_total").inc()
        self.ctx.metrics.gauge("serve.applied_seq").set(float(self.applied_seq))
        self.ctx.metrics.gauge("serve.coverage").set(self.coverage())
        if prev is None:
            return FIRST
        estimator = self.estimators[node]
        estimator.update(np.array([prev, 1.0]), float(reading.value))
        if estimator.updates == self.bootstrap_rounds:
            self._ready_nodes += 1
        feature = np.array([float(estimator.coefficients[0])])
        if self.session is not None:
            self.session.update_feature(node, feature)
            self.version += 1
            self.ctx.metrics.counter("serve.maintenance_updates").inc()
        elif self._ready_nodes == self.n:
            self._build_initial_clustering()
        return APPLIED

    def _build_initial_clustering(self) -> None:
        features = {
            node: np.array([float(est.coefficients[0])])
            for node, est in self.estimators.items()
        }
        threshold = self.delta - 2 * self.slack
        result = run_spanning_forest(self.topology, features, self.metric, threshold)
        self.session = MaintenanceSession(
            self.graph, result.clustering, features, self.metric, self.delta, self.slack
        )
        self.ctx.metrics.gauge("serve.clusters").set(float(self.session.num_clusters))
        self.ctx.emit(
            "serve.clustered",
            clusters=self.session.num_clusters,
            applied=self.applied_total,
            seq=self.applied_seq,
        )

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of nodes updated within the coverage window.

        1.0 until the stream has advanced a full window (nothing can be
        stale yet); afterwards a node counts only if its last applied
        reading is within ``coverage_rounds`` rounds of the stream head.
        """
        window = self.coverage_rounds * self.n
        horizon = self.applied_seq - window
        if horizon < 0:
            return 1.0
        covered = sum(1 for node in self.nodes if self.last_seq.get(node, -1) > horizon)
        return covered / self.n

    def staleness(self) -> float:
        """Seconds of service time since the last applied reading."""
        return self.ctx.now() - self.last_apply_wall

    @property
    def num_clusters(self) -> int:
        """Clusters in the current state (0 before bootstrap completes)."""
        return self.session.num_clusters if self.session is not None else 0

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Complete pipeline state for checkpointing (see module contract)."""
        return {
            "schema": PIPELINE_SCHEMA,
            "n": self.n,
            "delta": self.delta,
            "slack": self.slack,
            "bootstrap_rounds": self.bootstrap_rounds,
            "estimators": {node: est.state_dict() for node, est in self.estimators.items()},
            "last_value": dict(self.last_value),
            "last_seq": dict(self.last_seq),
            "applied_total": self.applied_total,
            "applied_seq": self.applied_seq,
            "version": self.version,
            "session": None if self.session is None else self.session.state_dict(),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this pipeline."""
        if state.get("schema") != PIPELINE_SCHEMA:
            raise ValueError(f"unsupported pipeline state schema {state.get('schema')!r}")
        if state["n"] != self.n:
            raise ValueError(f"checkpoint is for n={state['n']}, service has n={self.n}")
        self.estimators = {
            node: RecursiveLeastSquares.from_state(s) for node, s in state["estimators"].items()
        }
        self.last_value = dict(state["last_value"])
        self.last_seq = dict(state["last_seq"])
        self.applied_total = int(state["applied_total"])
        self.applied_seq = int(state["applied_seq"])
        self.version = int(state["version"])
        self._ready_nodes = sum(
            1 for est in self.estimators.values() if est.updates >= self.bootstrap_rounds
        )
        if state["session"] is not None:
            self.session = MaintenanceSession.from_state(self.graph, self.metric, state["session"])
            self.ctx.metrics.gauge("serve.clusters").set(float(self.session.num_clusters))
        else:
            self.session = None
        self.ctx.metrics.gauge("serve.applied_seq").set(float(self.applied_seq))

    # ------------------------------------------------------------------
    # equivalence snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Canonical end-state snapshot with a content digest.

        The ``state`` section contains exactly the quantities that must
        match between an uninterrupted run and a kill-and-resume run on
        the same deterministic source; ``digest`` is the SHA-256 of its
        canonical JSON form.  Robustness counters (sheds, restarts) live
        in ``info`` and are excluded from the digest — they legitimately
        differ between the two runs.
        """
        coeffs = {
            str(node): [float(c) for c in est.coefficients]
            for node, est in self.estimators.items()
        }
        state: dict[str, Any] = {
            "applied_total": self.applied_total,
            "applied_seq": self.applied_seq,
            "last_seq": {str(node): seq for node, seq in self.last_seq.items()},
            "coefficients": coeffs,
        }
        if self.session is not None:
            state["assignment"] = {
                str(node): str(root) for node, root in self.session.assignment.items()
            }
            state["root_features"] = {
                str(root): [float(v) for v in f]
                for root, f in self.session.root_features.items()
            }
            state["maintenance_values"] = self.session.stats.total_values
        canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return {
            "schema": PIPELINE_SCHEMA,
            "digest": digest,
            "state": state,
            "info": {
                "n": self.n,
                "delta": self.delta,
                "slack": self.slack,
                "clusters": self.num_clusters,
                "coverage": round(self.coverage(), 6),
            },
        }


def snapshots_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """True when two :meth:`ClusteringPipeline.snapshot` dicts certify the same state."""
    return bool(a.get("digest")) and a.get("digest") == b.get("digest")


def finite_value(value: Any) -> bool:
    """True when *value* is a real, finite measurement."""
    return isinstance(value, (int, float)) and math.isfinite(value)

"""The supervised live clustering service: wiring, lifecycle, drain, resume.

:class:`ClusteringService` assembles the serve layer into one asyncio
process:

```
 sources ──► IngestStage (×k, supervised) ──► Broker["readings"] ──►
   pipeline stage (supervised) ──► ClusteringPipeline ──► QueryService/API
                                        │
                                 checkpoint stage (periodic, atomic)
```

Lifecycle contract (the part CI certifies):

- **SIGTERM/SIGINT** trigger a graceful drain: intake stops, queued
  readings flush through the pipeline, one final checkpoint is written,
  and the process exits 0.
- **SIGKILL** loses nothing durable: ``--resume`` restores the newest
  intact checkpoint, seeks the replayable sources past it, and the
  per-node ``last_seq`` skip makes the overlap idempotent — the resumed
  run's final snapshot digest equals an uninterrupted run's.
- A critical stage that exhausts its crash budget fails the service
  fast with exit code 1.

Degradation is observable, never silent: coverage and staleness gauges,
``serve.degraded``/``serve.recovered`` events on coverage transitions,
and a ``/healthz`` payload aggregating restarts, sheds and queue depth.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serve.api import ApiServer, QueryService
from repro.serve.broker import POLICY_BLOCK, Broker
from repro.serve.chaos import ChaosDriver
from repro.serve.checkpoint import CheckpointManager
from repro.serve.context import ServeContext
from repro.serve.ingest import READINGS_TOPIC, IngestStage
from repro.serve.pipeline import ClusteringPipeline
from repro.serve.readings import FileSource, ReplaySource, ReplaySpec, ReplayStream
from repro.serve.supervisor import StageCrash, Supervisor
from repro.sim.faults import FaultPlan

#: Service exit codes.
EXIT_OK = 0
EXIT_FAILED = 1


@dataclass
class ServiceConfig:
    """Everything a :class:`ClusteringService` needs to run."""

    #: Network size, stream seed and length (the deterministic replay spec).
    n: int = 64
    seed: int = 7
    rounds: int = 200
    density: float = 0.8
    #: Clustering threshold δ and maintenance slack Δ.
    delta: float = 0.35
    slack: float = 0.05
    #: RLS updates per node before the initial clustering is built.
    bootstrap_rounds: int = 12
    #: Ingest sources the stream is sharded across.
    sources: int = 1
    #: Pipeline subscription queue bound and overflow policy.
    queue_size: int = 1024
    backpressure: str = POLICY_BLOCK
    #: Target aggregate readings/second (0 = unpaced).
    rate: float = 0.0
    #: Checkpointing (directory + cadence in seconds and/or readings).
    checkpoint_dir: str | None = None
    checkpoint_every_s: float | None = None
    checkpoint_every_readings: int | None = None
    resume: bool = False
    #: Supervision envelope.
    crash_budget: int = 5
    backoff_base: float = 0.05
    drain_timeout: float = 30.0
    #: Source retry envelope.
    fetch_timeout: float = 5.0
    source_retries: int = 4
    #: Query staleness bound (maintenance updates) and API port
    #: (None = no API server; 0 = ephemeral port).
    staleness_updates: int = 500
    port: int | None = None
    #: Optional JSONL file source replacing the synthetic replay stream.
    file_source: str | None = None
    #: Output artifacts (written at exit).
    trace_out: str | None = None
    metrics_out: str | None = None
    snapshot_out: str | None = None
    #: Seed-deterministic service-level fault plan (chaos testing).
    chaos_plan: FaultPlan | None = field(default=None, repr=False)
    #: Coverage below this flips health to ``degraded``.
    degraded_coverage: float = 0.999


class ClusteringService:
    """One runnable, supervised live clustering service instance."""

    def __init__(self, config: ServiceConfig, *, ctx: ServeContext | None = None):
        self.config = config
        self.ctx = ctx if ctx is not None else ServeContext()
        spec = ReplaySpec(
            n=config.n, seed=config.seed, rounds=config.rounds, density=config.density
        )
        self.stream = ReplayStream(spec)
        self.topology = self.stream.topology
        self.pipeline = ClusteringPipeline(
            self.topology,
            self.ctx,
            delta=config.delta,
            slack=config.slack,
            bootstrap_rounds=config.bootstrap_rounds,
        )
        self.broker = Broker(self.ctx)
        self.chaos = ChaosDriver(config.chaos_plan, self.ctx) if config.chaos_plan else None
        self.checkpoints = (
            CheckpointManager(config.checkpoint_dir, self.ctx)
            if config.checkpoint_dir
            else None
        )
        if config.file_source:
            self.sources: list[Any] = [FileSource(config.file_source)]
        else:
            self.sources = [
                ReplaySource(self.stream, shard=(i, config.sources), name=f"src-{i}")
                for i in range(config.sources)
            ]
        self.query_service = QueryService(
            self.pipeline,
            self.ctx,
            staleness_updates=config.staleness_updates,
            health=self.health,
        )
        self.api = (
            ApiServer(self.query_service, self.ctx, port=config.port)
            if config.port is not None
            else None
        )
        self.supervisor = Supervisor(
            self.ctx, crash_budget=config.crash_budget, backoff_base=config.backoff_base
        )
        self.exit_code: int | None = None
        self.drain_reason: str | None = None
        self._stop_intake = asyncio.Event()
        self._pipeline_stop = asyncio.Event()
        self._drain = asyncio.Event()
        self._sub = None
        self._last_ckpt_time = 0.0
        self._last_ckpt_applied = 0
        self._was_degraded = False

    # ------------------------------------------------------------------
    # lifecycle controls
    # ------------------------------------------------------------------
    def request_drain(self, reason: str) -> None:
        """Begin a graceful drain (idempotent); callable from signal handlers."""
        if self._drain.is_set():
            return
        self.drain_reason = reason
        self.ctx.emit("serve.drain", reason=reason)
        self._drain.set()
        self._stop_intake.set()

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` degradation summary."""
        coverage = self.pipeline.coverage()
        degraded = coverage < self.config.degraded_coverage or any(
            spec.failed for spec in self.supervisor.stages.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "applied": self.pipeline.applied_total,
            "queue_depth": self.broker.depth(READINGS_TOPIC),
            "shed_total": self._sub.shed_total if self._sub is not None else 0,
            "stage_restarts": self.supervisor.restart_counts(),
            "checkpoint_writes": self.checkpoints.writes if self.checkpoints else 0,
            "draining": self._drain.is_set(),
        }

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    async def _pipeline_stage(self) -> None:
        # The queue wait uses a persistent task + asyncio.wait rather than
        # wait_for: 3.11's wait_for can swallow an external cancellation
        # that races its timeout, leaving this loop unkillable; wait never
        # cancels the get, so it also re-arms for free on timeout.
        get_task: asyncio.Task | None = None
        try:
            while True:
                if get_task is None:
                    get_task = asyncio.ensure_future(self._sub.get())
                done, _ = await asyncio.wait({get_task}, timeout=0.05)
                if not done:
                    if self._pipeline_stop.is_set() and len(self._sub) == 0:
                        return
                    continue
                reading = get_task.result()
                get_task = None
                if self.chaos is not None and self.chaos.stage_crashes("pipeline", reading.seq):
                    raise StageCrash(f"pipeline: injected crash at seq {reading.seq}")
                self.pipeline.apply(reading)
        finally:
            if get_task is not None:
                get_task.cancel()

    async def _checkpoint_stage(self) -> None:
        cfg = self.config
        self._last_ckpt_time = self.ctx.now()
        self._last_ckpt_applied = self.pipeline.applied_total
        while not self._pipeline_stop.is_set():
            await asyncio.sleep(0.05)
            due_time = (
                cfg.checkpoint_every_s is not None
                and self.ctx.now() - self._last_ckpt_time >= cfg.checkpoint_every_s
            )
            due_count = (
                cfg.checkpoint_every_readings is not None
                and self.pipeline.applied_total - self._last_ckpt_applied
                >= cfg.checkpoint_every_readings
            )
            if due_time or due_count:
                self.write_checkpoint()

    def write_checkpoint(self) -> None:
        """Write one atomic checkpoint of the pipeline state now."""
        if self.checkpoints is None:
            return
        seq = max(self.pipeline.applied_seq, 0)
        self.checkpoints.write({"pipeline": self.pipeline.state_dict()}, seq=seq)
        self._last_ckpt_time = self.ctx.now()
        self._last_ckpt_applied = self.pipeline.applied_total

    def _resume(self) -> bool:
        if self.checkpoints is None:
            return False
        loaded = self.checkpoints.load_latest()
        if loaded is None:
            return False
        _, state = loaded
        self.pipeline.restore_state(state["pipeline"])
        for source in self.sources:
            source.resume_after(self.pipeline.last_seq)
        return True

    def _watch_degradation(self) -> None:
        coverage = self.pipeline.coverage()
        self.ctx.metrics.gauge("serve.coverage").set(coverage)
        self.ctx.metrics.gauge("serve.staleness").set(self.pipeline.staleness())
        self.ctx.metrics.series("serve.coverage.series").observe(
            round(self.ctx.now(), 4), coverage
        )
        degraded = coverage < self.config.degraded_coverage
        if degraded and not self._was_degraded:
            self.ctx.emit("serve.degraded", coverage=round(coverage, 6))
        elif self._was_degraded and not degraded:
            self.ctx.emit("serve.recovered", coverage=round(coverage, 6))
        self._was_degraded = degraded

    # ------------------------------------------------------------------
    # main run
    # ------------------------------------------------------------------
    async def run_async(self, *, install_signal_handlers: bool = False) -> int:
        """Run the service to completion; returns the process exit code."""
        cfg = self.config
        self.ctx.emit(
            "serve.start",
            n=cfg.n,
            seed=cfg.seed,
            rounds=cfg.rounds,
            sources=len(self.sources),
            backpressure=cfg.backpressure,
            resume=cfg.resume,
        )
        if cfg.resume and self._resume():
            self.ctx.emit(
                "serve.resumed",
                applied=self.pipeline.applied_total,
                seq=self.pipeline.applied_seq,
            )
        self._sub = self.broker.subscribe(
            READINGS_TOPIC,
            name="pipeline",
            maxsize=cfg.queue_size,
            policy=cfg.backpressure,
        )
        ingest_names = []
        for source in self.sources:
            stage = IngestStage(
                source,
                self.broker,
                self.ctx,
                known_nodes=self.pipeline.nodes,
                stop_event=self._stop_intake,
                chaos=self.chaos,
                rate=cfg.rate,
                fetch_timeout=cfg.fetch_timeout,
                max_retries=cfg.source_retries,
            )
            self.supervisor.add(stage.name, stage.run)
            ingest_names.append(stage.name)
        self.supervisor.add("pipeline", self._pipeline_stage)
        if self.checkpoints is not None and (
            cfg.checkpoint_every_s is not None or cfg.checkpoint_every_readings is not None
        ):
            self.supervisor.add("checkpoint", self._checkpoint_stage, critical=False)
        if self.api is not None:
            self.supervisor.add("api", self.api.run, critical=False)
        self.supervisor.start()

        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_drain, sig.name.lower())

        # Main watch loop: wait for drain, stream end, or critical failure.
        failed = False
        while True:
            if self.supervisor.failed.is_set():
                failed = True
                break
            if self._drain.is_set():
                break
            if self.supervisor.all_done(ingest_names):
                self.request_drain("stream_end")
                break
            self._watch_degradation()
            await asyncio.sleep(0.02)

        if failed:
            await self.supervisor.cancel()
            self.ctx.emit("serve.exit", code=EXIT_FAILED, reason="crash_budget")
            self.exit_code = EXIT_FAILED
        else:
            await self._drain_epilogue(ingest_names)
            self.ctx.emit("serve.exit", code=EXIT_OK, reason=self.drain_reason)
            self.exit_code = EXIT_OK
        self._export_artifacts()
        return self.exit_code

    async def _drain_epilogue(self, ingest_names: list[str]) -> None:
        """Stop intake, flush queues, final checkpoint (the graceful path)."""
        cfg = self.config
        self._stop_intake.set()
        deadline = self.ctx.now() + cfg.drain_timeout

        async def _await_cond(cond) -> None:
            while not cond() and self.ctx.now() < deadline:
                await asyncio.sleep(0.02)

        await _await_cond(lambda: self.supervisor.all_done(ingest_names))
        await _await_cond(lambda: self.broker.drained(READINGS_TOPIC))
        self._pipeline_stop.set()
        await _await_cond(lambda: self.supervisor.all_done(["pipeline"]))
        await self.supervisor.cancel()
        self.write_checkpoint()
        self._watch_degradation()
        self.ctx.emit(
            "serve.drained",
            applied=self.pipeline.applied_total,
            queue_depth=self.broker.depth(READINGS_TOPIC),
        )

    def _export_artifacts(self) -> None:
        cfg = self.config
        if cfg.trace_out:
            self.ctx.tracer.export_jsonl(cfg.trace_out)
        if cfg.metrics_out:
            self.ctx.metrics.export_json(cfg.metrics_out)
        if cfg.snapshot_out:
            snapshot = self.pipeline.snapshot()
            Path(cfg.snapshot_out).write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )

    def run(self) -> int:
        """Blocking entry point with OS signal handling (the CLI path)."""
        return asyncio.run(self.run_async(install_signal_handlers=True))

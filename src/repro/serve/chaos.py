"""Chaos driver: fires service-level fault-plan events inside the service.

Service-level :class:`~repro.sim.faults.FaultPlan` events (stage crashes,
source stalls, malformed readings, clock skew) are keyed by **stream
position** rather than kernel time, so a run at a fixed seed replays the
exact same fault sequence regardless of wall-clock pacing.  The driver
hands each stage the events that have come due at its current position;
each event fires exactly once.

The sim-side :class:`~repro.sim.faults.FaultInjector` refuses these
actions (they target the live process, not simulated nodes) — this
driver is their only consumer.
"""

from __future__ import annotations

from repro.sim.faults import (
    CLOCK_SKEW,
    MALFORM,
    SOURCE_STALL,
    STAGE_CRASH,
    FaultEvent,
    FaultPlan,
)
from repro.serve.context import ServeContext


class ChaosDriver:
    """Replays a plan's service-level events against the running service."""

    def __init__(self, plan: FaultPlan, ctx: ServeContext):
        self._ctx = ctx
        self._events = plan.service_events
        self._fired: set[int] = set()

    @property
    def pending(self) -> int:
        """Events that have not fired yet."""
        return len(self._events) - len(self._fired)

    def _take(self, action: str, key: str, position: float) -> list[FaultEvent]:
        due: list[FaultEvent] = []
        for idx, event in enumerate(self._events):
            if idx in self._fired or event.action != action or event.time > position:
                continue
            target = event.target
            name = target[0] if isinstance(target, tuple) else target
            if name != key:
                continue
            self._fired.add(idx)
            due.append(event)
        return due

    def stage_crashes(self, stage: str, position: float) -> list[FaultEvent]:
        """Due ``stage_crash`` events for *stage* at stream *position*."""
        return self._take(STAGE_CRASH, stage, position)

    def stalls(self, source: str, position: float) -> list[tuple[float, float]]:
        """Due ``(position, duration)`` stalls for *source*."""
        return [(e.time, e.target[1]) for e in self._take(SOURCE_STALL, source, position)]

    def malformed(self, source: str, position: float) -> bool:
        """True when *source*'s reading at *position* should be corrupted."""
        return bool(self._take(MALFORM, source, position))

    def skews(self, source: str, position: float) -> list[float]:
        """Due clock-skew offsets (seconds) for *source*."""
        return [e.target[1] for e in self._take(CLOCK_SKEW, source, position)]

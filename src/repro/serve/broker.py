"""In-process MQTT-style pub/sub broker with bounded, backpressured queues.

The live clustering service moves readings from ingest front-ends to the
pipeline stage through this broker, so tests and CI need no external
daemon.  The broker is deliberately tiny — named topics, fan-out to every
subscriber — but its queues carry the service's **backpressure policy**,
which is the part that matters for robustness:

- ``block``: a full subscriber queue makes :meth:`Broker.publish` wait
  (cooperative backpressure; the ingest stage slows to the pipeline's
  pace).  Blocked episodes surface as ``serve.backpressure`` trace
  events and the ``serve.backpressure_episodes`` counter.
- ``shed-oldest``: a full queue drops its *oldest* item to admit the new
  one — bounded memory and maximal freshness under overload, at the cost
  of lost readings.  Every shed increments ``serve.shed_total``; bursts
  coalesce into ``serve.shed_episode`` trace events (one per episode,
  carrying the count) so traces stay readable during sustained overload.

Policies are per-subscription, so a metrics tap can shed while the
pipeline subscription blocks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.serve.context import ServeContext

#: Subscriber-queue overflow policies.
POLICY_BLOCK = "block"
POLICY_SHED_OLDEST = "shed-oldest"

_POLICIES = (POLICY_BLOCK, POLICY_SHED_OLDEST)


class Subscription:
    """One subscriber's bounded queue on a topic.

    Created by :meth:`Broker.subscribe`; consumers call :meth:`get`.
    """

    def __init__(self, topic: str, name: str, maxsize: int, policy: str, ctx: ServeContext):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.topic = topic
        self.name = name
        self.maxsize = maxsize
        self.policy = policy
        self.shed_total = 0
        self._ctx = ctx
        self._items: deque[Any] = deque()
        self._not_empty = asyncio.Event()
        self._not_full = asyncio.Event()
        self._not_full.set()
        self._shed_episode = 0  # consecutive sheds in the current burst
        self._blocked_episode = False

    def __len__(self) -> int:
        return len(self._items)

    async def put(self, item: Any) -> None:
        """Enqueue *item* under this subscription's overflow policy."""
        if self.policy == POLICY_SHED_OLDEST:
            if len(self._items) >= self.maxsize:
                self._items.popleft()
                self.shed_total += 1
                self._shed_episode += 1
                self._ctx.metrics.counter("serve.shed_total").inc()
            self._items.append(item)
            self._not_empty.set()
            return
        # block policy: cooperative backpressure on the publisher.
        while len(self._items) >= self.maxsize:
            if not self._blocked_episode:
                self._blocked_episode = True
                self._ctx.metrics.counter("serve.backpressure_episodes").inc()
                self._ctx.emit("serve.backpressure", self.name, topic=self.topic, depth=len(self._items))
            self._not_full.clear()
            await self._not_full.wait()
        self._blocked_episode = False
        self._items.append(item)
        self._not_empty.set()

    async def get(self) -> Any:
        """Dequeue the next item, waiting until one is available."""
        while not self._items:
            self._flush_shed_episode()
            self._not_empty.clear()
            await self._not_empty.wait()
        item = self._items.popleft()
        if len(self._items) < self.maxsize:
            self._not_full.set()
        return item

    def get_nowait(self) -> Any:
        """Dequeue without waiting; raises :class:`IndexError` when empty."""
        item = self._items.popleft()
        if len(self._items) < self.maxsize:
            self._not_full.set()
        return item

    def _flush_shed_episode(self) -> None:
        if self._shed_episode:
            self._ctx.emit(
                "serve.shed_episode", self.name, topic=self.topic, count=self._shed_episode
            )
            self._shed_episode = 0


class Broker:
    """Named topics fanning out to bounded :class:`Subscription` queues."""

    def __init__(self, ctx: ServeContext):
        self._ctx = ctx
        self._topics: dict[str, list[Subscription]] = {}

    def subscribe(
        self,
        topic: str,
        *,
        name: str,
        maxsize: int = 1024,
        policy: str = POLICY_BLOCK,
    ) -> Subscription:
        """Create a bounded subscription on *topic* and return it."""
        sub = Subscription(topic, name, maxsize, policy, self._ctx)
        self._topics.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach *sub* from its topic (no-op if already detached)."""
        subs = self._topics.get(sub.topic, [])
        if sub in subs:
            subs.remove(sub)

    async def publish(self, topic: str, item: Any) -> None:
        """Deliver *item* to every subscriber of *topic*.

        Blocking subscriptions make this await until they have room, so a
        slow consumer backpressures the publisher; shedding subscriptions
        never block.
        """
        for sub in self._topics.get(topic, ()):
            await sub.put(item)

    def depth(self, topic: str) -> int:
        """Total queued items across *topic*'s subscriptions."""
        return sum(len(sub) for sub in self._topics.get(topic, ()))

    def drained(self, topic: str) -> bool:
        """True when every subscription on *topic* is empty."""
        return self.depth(topic) == 0

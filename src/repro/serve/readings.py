"""Reading streams: the replayable sources the ingest front-end consumes.

A :class:`Reading` is one sensor measurement with a global stream
position (``seq``).  Sources are **replayable**: they can be re-opened at
any position, which is what makes checkpoint/restore exact — a resumed
service seeks its sources past the last checkpointed position and the
pipeline skips anything already applied.

Two source families:

- :class:`ReplaySource` over a :class:`ReplayStream` — a deterministic
  synthetic measurement stream (the paper's AR(1) generator, §8.1) that
  is a pure function of ``(n, seed, rounds)``.  Tests, CI, and the
  kill-and-resume equivalence check all run on it.  A stream can be
  sharded across several sources (round-robin by node index) to exercise
  degraded modes where one source stalls while others advance.
- :class:`FileSource` — line-delimited JSON readings
  (``{"node": ..., "value": ...}`` per line) for replaying recorded
  data; ``seq`` is the line number.

Sources raise :class:`TransientSourceError` for retryable failures; the
ingest stage wraps every fetch in timeout + retry with exponential
backoff (see :mod:`repro.serve.ingest`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_in_range, require_int_at_least
from repro.geometry.topology import Topology, random_geometric_topology

#: The paper's α range for the per-node AR(1) coefficient (§8.1).
ALPHA_RANGE = (0.4, 0.8)


class TransientSourceError(RuntimeError):
    """A retryable source failure (the ingest stage backs off and retries)."""


@dataclass(frozen=True, slots=True)
class Reading:
    """One sensor measurement in the global stream order.

    ``seq`` is the reading's global stream position (unique, increasing
    per node); ``timestamp`` is the source clock in stream seconds.
    """

    seq: int
    node: Hashable
    value: float
    timestamp: float
    source: str = "replay"


@dataclass(frozen=True)
class ReplaySpec:
    """Parameters of a deterministic synthetic reading stream."""

    #: Network size (nodes placed as in the synthetic dataset).
    n: int = 64
    #: Seed; the stream is a pure function of the whole spec.
    seed: int = 7
    #: Measurement rounds (each round emits one reading per node).
    rounds: int = 200
    #: Topology density (see :func:`random_geometric_topology`).
    density: float = 0.8
    #: Stream seconds between consecutive readings (timestamp spacing).
    dt: float = 0.05

    def __post_init__(self) -> None:
        require_int_at_least(self.n, 2, "n")
        require_int_at_least(self.rounds, 1, "rounds")
        require_in_range(self.density, 0.1, 2.0, "density")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")


class ReplayStream:
    """A fully materialized synthetic stream: topology + value matrix.

    The value matrix follows the paper's synthetic generator:
    ``x_t = α_i x_{t-1} + e_t`` with ``e_t ~ U(0,1)`` and per-node
    ``α_i ~ U(0.4, 0.8)`` — deterministic given the spec, so two builds
    of the same spec replay byte-identical readings.
    """

    def __init__(self, spec: ReplaySpec):
        self.spec = spec
        self.topology: Topology = random_geometric_topology(
            spec.n, seed=spec.seed, density=spec.density, target_degree=4.0
        )
        self.nodes = list(self.topology.graph.nodes)
        rng = np.random.default_rng(spec.seed)
        self.alphas = rng.uniform(*ALPHA_RANGE, size=spec.n)
        state = rng.uniform(0.0, 1.0, size=spec.n)
        values = np.empty((spec.rounds, spec.n), dtype=np.float64)
        for r in range(spec.rounds):
            state = self.alphas * state + rng.uniform(0.0, 1.0, size=spec.n)
            values[r] = state
        self.values = values

    @property
    def total_readings(self) -> int:
        """Number of readings in the whole stream."""
        return self.spec.rounds * self.spec.n

    def reading(self, seq: int) -> Reading:
        """The reading at global position *seq*."""
        n = self.spec.n
        r, k = divmod(seq, n)
        return Reading(
            seq=seq,
            node=self.nodes[k],
            value=float(self.values[r, k]),
            timestamp=seq * self.spec.dt,
        )


class ReplaySource:
    """A (possibly sharded) cursor over a :class:`ReplayStream`.

    With ``shard = (i, k)`` the source emits only readings of nodes whose
    index satisfies ``idx % k == i``, in global ``seq`` order — the whole
    stream when ``(0, 1)``.  The cursor survives stage restarts (the
    supervisor re-enters ``run`` with the same source object) and can be
    repositioned after a checkpoint restore via :meth:`resume_after`.
    """

    def __init__(self, stream: ReplayStream, *, shard: tuple[int, int] = (0, 1), name: str | None = None):
        index, count = shard
        if count < 1 or not 0 <= index < count:
            raise ValueError(f"shard must be (index, count) with 0 <= index < count, got {shard}")
        self.stream = stream
        self.shard = shard
        self.name = name if name is not None else f"replay-{index}"
        n = stream.spec.n
        #: Node indices this shard owns, ascending.
        self._own = [k for k in range(n) if k % count == index]
        self._cursor = 0  # position into this shard's flat reading list
        self._total = stream.spec.rounds * len(self._own)

    @property
    def exhausted(self) -> bool:
        """True when every reading of this shard has been emitted."""
        return self._cursor >= self._total

    @property
    def remaining(self) -> int:
        """Readings this shard has not yet emitted."""
        return self._total - self._cursor

    def _seq_at(self, cursor: int) -> int:
        per_round = len(self._own)
        r, j = divmod(cursor, per_round)
        return r * self.stream.spec.n + self._own[j]

    async def next_reading(self) -> Reading | None:
        """The next reading of this shard, or None at end of stream."""
        if self.exhausted:
            return None
        reading = self.stream.reading(self._seq_at(self._cursor))
        self._cursor += 1
        return reading

    def resume_after(self, last_seq: Mapping[Hashable, int]) -> int:
        """Reposition past readings already applied per *last_seq*.

        Seeks to the first reading whose ``seq`` exceeds the smallest
        recorded position among this shard's nodes (the pipeline's
        per-node skip makes any residual overlap idempotent).  Returns
        the new cursor.
        """
        nodes = self.stream.nodes
        floor = min(
            (last_seq.get(nodes[k], -1) for k in self._own), default=-1
        )
        self._cursor = 0
        while self._cursor < self._total and self._seq_at(self._cursor) <= floor:
            self._cursor += 1
        return self._cursor


class FileSource:
    """Replayable JSONL reading source (``{"node":..., "value":...}`` lines).

    ``seq`` is the line number, so re-opening the file and skipping lines
    reproduces the stream exactly.  Malformed lines are *emitted* with a
    non-finite value — the ingest validator counts and drops them, which
    keeps corrupt input an observable event instead of a silent skip.
    """

    def __init__(self, path: str, *, name: str | None = None, dt: float = 0.05):
        self.path = path
        self.name = name if name is not None else "file"
        self.dt = dt
        self._lines = self._load()
        self._cursor = 0

    def _load(self) -> list[tuple[Hashable, float]]:
        out: list[tuple[Hashable, float]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    out.append((payload["node"], float(payload["value"])))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    out.append((None, float("nan")))
        return out

    @property
    def exhausted(self) -> bool:
        """True when every line has been emitted."""
        return self._cursor >= len(self._lines)

    @property
    def remaining(self) -> int:
        """Readings not yet emitted."""
        return len(self._lines) - self._cursor

    async def next_reading(self) -> Reading | None:
        """The next reading, or None at end of file."""
        if self.exhausted:
            return None
        node, value = self._lines[self._cursor]
        reading = Reading(
            seq=self._cursor,
            node=node,
            value=value,
            timestamp=self._cursor * self.dt,
            source=self.name,
        )
        self._cursor += 1
        return reading

    def resume_after(self, last_seq: Mapping[Hashable, int]) -> int:
        """Reposition past the smallest applied position (see ReplaySource)."""
        floor = min(last_seq.values(), default=-1)
        self._cursor = max(0, int(floor) + 1)
        return self._cursor

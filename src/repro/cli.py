"""Command-line interface.

Usage (also available as ``python -m repro``):

    repro cluster --dataset tao --algorithm elink --delta 0.08 --map
    repro cluster --dataset synthetic --n 300 --algorithm spanning-forest \
                  --delta 0.05 --save state.json
    repro cluster --dataset synthetic --n 100 --algorithm elink-explicit \
                  --delta 0.1 --crash 0.05 --trace chaos.jsonl
    repro query --state state.json --node 17 --radius 0.06 --explain
    repro query-bench --quick --jobs 2
    repro experiment fig10
    repro trace chaos.jsonl --repairs
    repro verify --replay --n 49 --crash 0.08 --seed 11
    repro cache stats --dir .repro-cache
    repro serve --n 48 --rounds 120 --checkpoint-dir ckpt --checkpoint-every 5s
    repro info

``cluster`` runs any of the clustering algorithms on a generated dataset,
prints a summary (optionally an ASCII cluster map) and can persist the
result — for ELink it can record a structured trace (``--trace``) and
inject fail-stop crashes (``--crash``); ``query`` answers a range query
over a saved state; ``experiment`` regenerates a paper figure; ``trace``
inspects a recorded JSONL trace (see docs/OBSERVABILITY.md); ``verify``
runs the correctness oracle — invariant-monitored chaos runs and the
``--replay`` determinism differ (see docs/ARCHITECTURE.md,
"Verification"); ``cache`` inspects or clears the content-addressed
artifact cache used by the experiment runner's ``--cache`` flag (see
docs/ARCHITECTURE.md, "Performance layer"); ``serve`` runs the
long-running supervised clustering service — streaming ingest,
checkpoint/restore, chaos hooks and a query API (see docs/SERVING.md);
``query-bench`` replays seed-deterministic zipfian workloads through the
cost-model query planner and records p50/p99 latency, queries/sec and
messages/query in the BENCH schema-5 ``queries`` block (see
docs/QUERYING.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed spatial clustering in sensor networks (EDBT 2006 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cluster = commands.add_parser("cluster", help="cluster a generated dataset")
    cluster.add_argument(
        "--dataset",
        choices=("tao", "death-valley", "synthetic"),
        default="tao",
    )
    cluster.add_argument(
        "--algorithm",
        choices=(
            "elink",
            "elink-explicit",
            "elink-unordered",
            "spanning-forest",
            "hierarchical",
            "spectral",
        ),
        default="elink",
    )
    cluster.add_argument("--delta", type=float, required=True, help="clustering threshold")
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--n", type=int, default=400, help="network size (non-Tao datasets)")
    cluster.add_argument("--save", metavar="PATH", help="persist topology+features+clustering as JSON")
    cluster.add_argument("--map", action="store_true", help="print an ASCII cluster map")
    cluster.add_argument("--validate", action="store_true", help="check the delta-clustering definition")
    cluster.add_argument(
        "--trace",
        metavar="PATH",
        help="record a JSONL protocol trace (ELink only; inspect with 'repro trace')",
    )
    cluster.add_argument(
        "--crash",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="crash this node fraction mid-run (elink-explicit only; enables failure detection)",
    )

    query = commands.add_parser("query", help="range query over a saved state")
    query.add_argument("--state", required=True, help="JSON file written by 'cluster --save'")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--node", help="query with this node's feature")
    group.add_argument("--feature", help="comma-separated query feature values")
    query.add_argument("--radius", type=float, required=True)
    query.add_argument(
        "--explain",
        action="store_true",
        help="choose the plan with the cost-model planner and print its "
        "estimated vs actual message cost",
    )
    query.add_argument(
        "--backend",
        choices=("mtree", "backbone", "flood"),
        default=None,
        help="force a plan backend instead of the planner's choice (implies --explain)",
    )

    experiment = commands.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument("name", help="fig08..fig15, complexity, path_query, or 'all'")
    experiment.add_argument("--quick", action="store_true")

    # Listed here for --help; 'trace', 'verify', 'cache' and 'serve' are
    # dispatched before this parser runs because each owns its own argument
    # set (repro.obs.inspect / repro.verify.cli / repro.perf.cli /
    # repro.serve.cli).
    commands.add_parser("trace", help="inspect a JSONL protocol trace", add_help=False)
    commands.add_parser(
        "verify", help="run the correctness oracle (invariants / --replay differ)", add_help=False
    )
    commands.add_parser(
        "cache", help="inspect or clear the artifact cache (stats / clear)", add_help=False
    )
    commands.add_parser(
        "serve", help="run the resilient live clustering service", add_help=False
    )
    commands.add_parser(
        "query-bench",
        help="replay planner workloads, record the BENCH queries block",
        add_help=False,
    )

    commands.add_parser("info", help="print version and system inventory")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point.

    Every subcommand is pipe-safe: this net catches a BrokenPipeError
    that escapes any of them, so ``repro <cmd> ... | head`` exits
    quietly instead of dumping a traceback (the high-volume printers —
    ``trace``, ``query``, ``query-bench`` — additionally guard their own
    output loops, keeping their exit paths explicit).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        sys.stderr.close()
        return 0


def _dispatch(argv: list[str]) -> int:
    if argv and argv[0] == "trace":
        from repro.obs.inspect import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.perf.cli import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "query-bench":
        from repro.queries.load import main as query_bench_main

        return query_bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "info":
        return _cmd_info()
    raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# cluster
# ----------------------------------------------------------------------
def _load_dataset(args: argparse.Namespace):
    from repro.datasets import (
        fit_features,
        generate_death_valley_dataset,
        generate_synthetic_dataset,
        generate_tao_dataset,
    )

    if args.dataset == "tao":
        dataset = generate_tao_dataset(seed=args.seed, samples_per_day=48)
        _, features = fit_features(dataset)
        return dataset.topology, features, dataset.metric()
    if args.dataset == "death-valley":
        dataset = generate_death_valley_dataset(seed=args.seed, num_sensors=args.n)
        return dataset.topology, dataset.features, dataset.metric()
    dataset = generate_synthetic_dataset(args.n, seed=args.seed)
    return dataset.topology, dataset.features, dataset.metric()


def _run_algorithm(args: argparse.Namespace, topology, features, metric):
    from repro.baselines import (
        run_hierarchical,
        run_spanning_forest,
        spectral_clustering_search,
    )
    from repro.core import ELinkConfig, run_elink

    name = args.algorithm
    if not name.startswith("elink"):
        if args.trace or args.crash:
            raise SystemExit("--trace/--crash are only supported for the elink algorithms")
    if name.startswith("elink"):
        mode = {"elink": "implicit", "elink-explicit": "explicit", "elink-unordered": "unordered"}[name]
        tracer = None
        if args.trace:
            from repro.obs import Tracer

            tracer = Tracer()
        config = ELinkConfig(delta=args.delta, signalling=mode)
        network = None
        injector = None
        quadtree = None
        if args.crash:
            if mode != "explicit":
                raise SystemExit(
                    "--crash requires --algorithm elink-explicit "
                    "(the failure-detection layer is explicit-mode)"
                )
            from repro.core.elink import compute_kappa
            from repro.geometry import QuadTreeDecomposition
            from repro.sim import FaultInjector, FaultPlan, Network

            config = ELinkConfig(
                delta=args.delta, signalling="explicit", failure_detection=True
            )
            kappa = compute_kappa(topology.num_nodes, config.gamma)
            quadtree = QuadTreeDecomposition(topology)
            network = Network(topology.graph, tracer=tracer)
            # The quadtree root drives the explicit-mode round cascade, so
            # it is protected from the crash draw (the documented
            # FaultPlan.random pattern for roots that anchor a protocol).
            plan = FaultPlan.random(
                sorted(topology.graph.nodes, key=repr),
                seed=args.seed,
                crash_fraction=args.crash,
                crash_window=(0.05 * kappa, 0.75 * kappa),
                protected=(quadtree.root,),
            )
            injector = FaultInjector(network, plan)
        result = run_elink(
            topology, features, metric, config, quadtree=quadtree,
            network=network, injector=injector, tracer=tracer,
        )
        extra = {
            "messages": result.total_messages,
            "protocol_time": round(result.protocol_time, 1),
            "switches": result.total_switches,
        }
        if args.crash:
            extra["survivors"] = network.graph.number_of_nodes()
            extra["repair_messages"] = result.repair_messages
            extra["drops"] = result.stats.total_drops
            latencies = injector.repair_latencies()
            if latencies:
                extra["mean_repair_latency"] = round(sum(latencies) / len(latencies), 1)
        if tracer is not None:
            written = tracer.export_jsonl(args.trace)
            extra["trace"] = f"{args.trace} ({written} events)"
        return result.clustering, extra
    if name == "spanning-forest":
        result = run_spanning_forest(topology, features, metric, args.delta)
        return result.clustering, {"messages": result.total_messages}
    if name == "hierarchical":
        result = run_hierarchical(topology.graph, features, metric, args.delta)
        return result.clustering, {"messages": result.total_messages, "rounds": result.rounds}
    result = spectral_clustering_search(topology.graph, features, metric, args.delta, search="doubling")
    return result.clustering, {"messages": result.messages, "k": result.k_used}


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.viz import cluster_summary, render_clustering

    topology, features, metric = _load_dataset(args)
    clustering, extra = _run_algorithm(args, topology, features, metric)
    print(
        f"{args.algorithm} on {args.dataset}: {clustering.num_clusters} clusters "
        f"over {topology.num_nodes} nodes (delta={args.delta})"
    )
    for key, value in extra.items():
        print(f"  {key}: {value}")
    print(cluster_summary(clustering, features))
    if args.map:
        print(render_clustering(topology, clustering))
    if args.validate:
        from repro.core import validate_clustering

        violations = validate_clustering(topology.graph, clustering, features, metric, args.delta)
        print(f"validation: {'OK' if not violations else violations[:5]}")
        if violations:
            return 1
    if args.save:
        from repro.io import save_state

        save_state(
            args.save,
            topology=topology,
            features=features,
            clustering=clustering,
            metadata={
                "dataset": args.dataset,
                "algorithm": args.algorithm,
                "delta": args.delta,
                "seed": args.seed,
            },
        )
        print(f"saved state to {args.save}")
    return 0


# ----------------------------------------------------------------------
# query
# ----------------------------------------------------------------------
def _cmd_query(args: argparse.Namespace) -> int:
    from repro.features import EuclideanMetric, WeightedEuclideanMetric, TAO_WEIGHTS
    from repro.index import build_backbone, build_mtree
    from repro.io import load_state
    from repro.queries import RangeQueryEngine

    topology, features, clustering, metadata = load_state(args.state)
    if clustering is None:
        print("state file has no clustering; run 'repro cluster --save' first", file=sys.stderr)
        return 1
    dim = int(next(iter(features.values())).shape[0])
    metric: Any
    if metadata.get("dataset") == "tao" and dim == len(TAO_WEIGHTS):
        metric = WeightedEuclideanMetric(TAO_WEIGHTS)
    else:
        metric = EuclideanMetric()

    if args.node is not None:
        key = _parse_node_id(args.node, features)
        q = features[key]
    else:
        q = np.array([float(part) for part in args.feature.split(",")])

    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(topology.graph, clustering)
    initiator = next(iter(topology.graph.nodes))
    try:
        if args.explain or args.backend:
            from repro.queries.planner import QueryPlanner

            planner = QueryPlanner(
                topology.graph, clustering, features, metric, mtree, backbone
            )
            planned = planner.range(q, args.radius, initiator, backend=args.backend)
            print(planned.explain_text())
            out = planned.result
        else:
            engine = RangeQueryEngine(clustering, features, metric, mtree, backbone)
            out = engine.query(q, args.radius, initiator)
        print(f"matches ({len(out.matches)}): {sorted(out.matches, key=repr)[:30]}")
        print(
            f"cost: {out.messages} messages "
            f"(pruned {out.clusters_pruned}, included {out.clusters_included}, "
            f"descended {out.clusters_descended} clusters)"
        )
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like
        # `repro trace` does instead of dumping a traceback.
        sys.stderr.close()
        return 0
    return 0


def _parse_node_id(raw: str, features) -> Any:
    if raw in features:
        return raw
    try:
        as_int = int(raw)
    except ValueError:
        as_int = None
    if as_int is not None and as_int in features:
        return as_int
    raise SystemExit(f"node {raw!r} not found in the saved state")


# ----------------------------------------------------------------------
# experiment / info
# ----------------------------------------------------------------------
def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    profile = "quick" if args.quick else "full"
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; choose from {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        ALL_EXPERIMENTS[name].run(profile=profile).print()
        print()
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of Meka & Singh, EDBT 2006")
    print("systems: ELink (implicit/explicit/unordered), quadtree sentinels,")
    print("         discrete-event sensor network, AR/RLS/seasonal models,")
    print("         slack maintenance, M-tree index + backbone, range/path queries,")
    print("         baselines: spectral, spanning forest, hierarchical, TAG, BFS")
    print("experiments: fig08..fig15, complexity, path_query  (repro experiment all)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

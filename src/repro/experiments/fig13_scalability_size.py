"""Figure 13 — scalability with network size on the synthetic data.

Sweeps N over the paper's 100–800 range.  For every N the network is
clustered once by each scheme and then maintains a stream of model-update
rounds; the reported cost is clustering + update handling:

- the centralized scheme ships every node's coefficients to the base
  station and keeps shipping on slack violations — cost grows with network
  *diameter* × N;
- hierarchical clustering pays leader-bound negotiation every merge round
  — the O(N²) term;
- ELink (both signalling modes) and the spanning forest confine everything
  locally — near-linear in N, with explicit ELink carrying the
  synchronization surcharge over implicit.

Decomposed into one **trial per network size N** — the loop body was
already independent per N, so each trial regenerates its own dataset
(served by the artifact cache when enabled) and streams its own update
rounds.
"""

from __future__ import annotations

import resource
import time
from typing import Any

from repro.baselines import (
    centralized_collection_cost,
    run_hierarchical,
    run_spanning_forest,
)
from repro.core import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    run_elink,
)
from repro.datasets import generate_synthetic_dataset, stream_measurements
from repro.experiments.common import ExperimentTable, check_profile
from repro.sim import default_engine

DELTA = 0.08
SLACK = 0.015
UPDATE_ROUNDS = 150

SIZES_FULL = (100, 200, 400, 600, 800)
SIZES_QUICK = (60, 120)

#: Size ladder for the ``--max-n`` scale mode (trimmed/extended to max_n).
#: The 4·10⁵/10⁶ rungs need the vectorised round processor (REPRO_ENGINE=array
#: engages it by default) to finish in reasonable wall time.
SCALE_SIZES = (2500, 10_000, 40_000, 100_000, 400_000, 1_000_000)
#: AR-fit readings for scale runs: the fit converges long before 2000 and
#: the scale mode measures clustering cost, not estimator quality.
SCALE_READINGS = 200


def trial_specs(profile: str, seed: int = 3) -> list[dict[str, Any]]:
    """One picklable spec per network size (the parallel unit)."""
    check_profile(profile)
    sizes = SIZES_FULL if profile == "full" else SIZES_QUICK
    return [{"n": n, "seed": seed} for n in sizes]


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """Cluster + maintain one network size; returns the table row."""
    check_profile(profile)
    rounds = UPDATE_ROUNDS if profile == "full" else 30
    n, seed = spec["n"], spec["seed"]
    effective_delta = DELTA - 2 * SLACK

    dataset = generate_synthetic_dataset(n, seed=seed)
    metric = dataset.metric()
    graph = dataset.topology.graph
    base_station = dataset.nodes[0]

    implicit = run_elink(
        dataset.topology, dataset.features, metric, ELinkConfig(delta=effective_delta)
    )
    explicit = run_elink(
        dataset.topology,
        dataset.features,
        metric,
        ELinkConfig(delta=effective_delta, signalling="explicit"),
    )
    hierarchical = run_hierarchical(graph, dataset.features, metric, effective_delta)
    forest = run_spanning_forest(dataset.topology, dataset.features, metric, effective_delta)

    sinks = {
        "elink_implicit": MaintenanceSession(
            graph, implicit.clustering, dataset.features, metric, DELTA, SLACK
        ),
        "elink_explicit": MaintenanceSession(
            graph, explicit.clustering, dataset.features, metric, DELTA, SLACK
        ),
        "hierarchical": MaintenanceSession(
            graph, hierarchical.clustering, dataset.features, metric, DELTA, SLACK
        ),
        "spanning_forest": MaintenanceSession(
            graph, forest.clustering, dataset.features, metric, DELTA, SLACK
        ),
    }
    centralized = CentralizedUpdateBaseline(graph, dataset.features, base_station, SLACK)
    # Centralized also pays the initial coefficient collection.
    centralized_total = centralized_collection_cost(graph, base_station, 1)

    trajectory = stream_measurements(dataset, rounds, seed=seed + 1)
    nodes = dataset.nodes
    for step in range(trajectory.shape[0]):
        for k, node in enumerate(nodes):
            feature = trajectory[step, k : k + 1]
            for sink in sinks.values():
                sink.update_feature(node, feature)
            centralized.update_feature(node, feature)
    centralized_total += centralized.total_messages()

    return {
        "n": n,
        "elink_implicit": implicit.total_messages
        + sinks["elink_implicit"].total_messages(),
        "elink_explicit": explicit.total_messages
        + sinks["elink_explicit"].total_messages(),
        "centralized": centralized_total,
        "hierarchical": hierarchical.total_messages
        + sinks["hierarchical"].total_messages(),
        "spanning_forest": forest.total_messages
        + sinks["spanning_forest"].total_messages(),
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 3
) -> ExperimentTable:
    """Assemble per-size rows (spec order) into the printable table."""
    check_profile(profile)
    rounds = UPDATE_ROUNDS if profile == "full" else 30
    table = ExperimentTable(
        name="fig13",
        title="Fig 13: scalability with network size on synthetic data (total messages)",
        columns=(
            "n",
            "elink_implicit",
            "elink_explicit",
            "centralized",
            "hierarchical",
            "spanning_forest",
        ),
    )
    for row in results:
        table.add_row(**row)
    table.notes.append(
        f"delta = {DELTA}, slack = {SLACK}, {rounds} streamed update rounds per size"
    )
    return table


def run(profile: str = "full", seed: int = 3) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


# ----------------------------------------------------------------------
# scale mode (--max-n): 10⁴–10⁵+ nodes on the array engine
# ----------------------------------------------------------------------
def scale_trial_specs(max_n: int, seed: int = 3) -> list[dict[str, Any]]:
    """One picklable spec per scale-ladder size, ending exactly at *max_n*."""
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    sizes = [size for size in SCALE_SIZES if size < max_n]
    sizes.append(max_n)
    return [{"n": size, "seed": seed} for size in sizes]


def run_scale_trial(spec: dict[str, Any]) -> dict[str, Any]:
    """Generate + cluster one scale-ladder size; returns the table row.

    Only ELink implicit runs at scale: the O(N²) baselines (hierarchical
    merge rounds, dense centralized collection) are exactly what Fig 13
    already shows diverging at N ≤ 800, and they do not finish at 10⁵.
    Wall times split dataset generation (topology + AR fit) from the
    clustering run so BENCH trends attribute regressions to the right
    layer.

    ``spec["shards"]`` > 1 runs the same clustering on the multi-process
    sharded engine (:class:`~repro.sim.shard.ShardedNetwork`, shard plan
    along the dataset's quadtree) instead of the REPRO_ENGINE default —
    the ``--shards`` BENCH ladder compares these rows against the
    1-shard serial baseline.
    """
    n, seed = spec["n"], spec["seed"]
    shards = spec.get("shards", 1)
    effective_delta = DELTA - 2 * SLACK
    start = time.perf_counter()
    dataset = generate_synthetic_dataset(n, seed=seed, readings=SCALE_READINGS)
    generated = time.perf_counter()
    network = quadtree = None
    if shards > 1:
        from repro.geometry.quadtree import QuadTreeDecomposition
        from repro.sim import Network

        quadtree = QuadTreeDecomposition(dataset.topology)
        network = Network(
            dataset.topology.graph, engine="sharded", shards=shards, quadtree=quadtree
        )
    result = run_elink(
        dataset.topology,
        dataset.features,
        dataset.metric(),
        ELinkConfig(delta=effective_delta),
        quadtree=quadtree,
        network=network,
    )
    clustered = time.perf_counter()
    elink_wall = clustered - generated
    # ru_maxrss is kilobytes on Linux; the high-water mark covers the whole
    # trial (generation + clustering), which is what capacity planning needs.
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024
    return {
        "n": n,
        "engine": "sharded" if shards > 1 else default_engine(),
        "clusters": result.num_clusters,
        "messages": result.total_messages,
        "gen_wall_s": round(generated - start, 3),
        "elink_wall_s": round(elink_wall, 3),
        "msgs_per_s": round(result.total_messages / elink_wall) if elink_wall else None,
        "peak_rss_mb": peak_rss_mb,
    }


def combine_scale_trials(results: list[dict[str, Any]]) -> ExperimentTable:
    """Assemble scale rows (spec order) into the printable table."""
    table = ExperimentTable(
        name="fig13_scale",
        title="Fig 13 scale mode: ELink implicit clustering cost at 10⁴–10⁶ nodes",
        columns=(
            "n",
            "engine",
            "clusters",
            "messages",
            "gen_wall_s",
            "elink_wall_s",
            "msgs_per_s",
            "peak_rss_mb",
        ),
    )
    for row in results:
        table.add_row(**row)
    table.notes.append(
        f"delta = {DELTA - 2 * SLACK}, implicit signalling, "
        f"{SCALE_READINGS} AR-fit readings; engine follows REPRO_ENGINE / runner --engine"
    )
    return table


def run_scale(max_n: int, seed: int = 3) -> ExperimentTable:
    """Run the scale sweep up to *max_n* nodes (see :func:`run_scale_trial`)."""
    results = [run_scale_trial(spec) for spec in scale_trial_specs(max_n, seed)]
    return combine_scale_trials(results)


# ----------------------------------------------------------------------
# shard ladder (--shards): 1/2/4-shard wall time at one scale size
# ----------------------------------------------------------------------
def shard_trial_specs(n: int, max_shards: int, seed: int = 3) -> list[dict[str, Any]]:
    """One spec per shard count on the doubling ladder 1, 2, 4, …, *max_shards*.

    The 1-shard row runs the ordinary serial engine (REPRO_ENGINE) and is
    the baseline the speedup column divides by.
    """
    if max_shards < 1:
        raise ValueError(f"max_shards must be >= 1, got {max_shards}")
    counts = [1]
    while counts[-1] * 2 <= max_shards:
        counts.append(counts[-1] * 2)
    return [{"n": n, "seed": seed, "shards": count} for count in counts]


def combine_shard_trials(results: list[dict[str, Any]]) -> ExperimentTable:
    """Assemble shard-ladder rows (spec order, 1-shard first) into a table.

    Each row's ``speedup`` is serial wall over that row's wall — the
    sharded-engine acceptance number is speedup > 1 on the largest count.
    """
    table = ExperimentTable(
        name="fig13_shards",
        title="Fig 13 shard ladder: ELink wall time vs shard count at fixed N",
        columns=("n", "shards", "engine", "clusters", "messages", "elink_wall_s", "speedup"),
    )
    baseline = results[0]["elink_wall_s"]
    for index, row in enumerate(results):
        shards = 1 if index == 0 else 2 ** index
        wall = row["elink_wall_s"]
        table.add_row(
            n=row["n"],
            shards=shards,
            engine=row["engine"],
            clusters=row["clusters"],
            messages=row["messages"],
            elink_wall_s=wall,
            speedup=round(baseline / wall, 2) if wall else None,
        )
    table.notes.append(
        "1-shard row = serial baseline engine; sharded rows run the "
        "epoch-barrier multi-process engine over the quadtree shard plan"
    )
    return table


def run_shards(n: int, max_shards: int, seed: int = 3) -> ExperimentTable:
    """Run the shard ladder at size *n* (see :func:`shard_trial_specs`)."""
    results = [run_scale_trial(spec) for spec in shard_trial_specs(n, max_shards, seed)]
    return combine_shard_trials(results)


def main() -> None:
    """Command-line entry point: full profile, or the --max-n scale sweep."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        metavar="N",
        help="run the scale sweep up to N nodes instead of the paper's figure",
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array"),
        default=None,
        help="simulation engine for all runs (exported as REPRO_ENGINE)",
    )
    args = parser.parse_args()
    if args.engine is not None:
        import os

        from repro.sim import ENGINE_ENV

        os.environ[ENGINE_ENV] = args.engine
    if args.max_n is not None:
        run_scale(args.max_n).print()
    else:
        run().print()


if __name__ == "__main__":
    main()

"""Figure 8 — clustering quality on the Tao dataset.

Sweeps δ and reports the number of clusters produced by ELink (implicit
and explicit — the paper notes they output identical clusters), the
centralized spectral algorithm, the distributed hierarchical algorithm and
the spanning-forest algorithm.  Paper parameters: φ = 0.1·δ, c = 4.

Expected shape: cluster counts fall as δ grows; ELink tracks the
centralized scheme closely and beats the spanning forest; hierarchical
sits between.

Decomposed into one **trial per δ** for the parallel runner; the fitted
dataset and the shared :class:`~repro.baselines.SpectralSolver` (one
eigendecomposition for the whole sweep) live in the per-process memo, so
a serial run shares them across trials exactly as the monolithic loop
did, and each pool worker builds them once.
"""

from __future__ import annotations

from typing import Any

from repro.baselines import (
    SpectralSolver,
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.core import ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.perf import process_memo

#: δ sweep over the Tao feature space (weighted-Euclidean coefficient units).
DELTAS = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4)


def _context(profile: str, seed: int):
    """(topology, features, metric, solver), shared per process (read-only)."""

    def build():
        if profile == "full":
            dataset = generate_tao_dataset(seed=seed)
        else:
            dataset = generate_tao_dataset(
                seed=seed, samples_per_day=24, training_days=8, stream_days=2
            )
        _, features = fit_features(dataset)
        metric = dataset.metric()
        # One solver for the whole δ sweep: the eigendecomposition and
        # per-k partitions are δ-independent, so they are computed once.
        solver = SpectralSolver(dataset.topology.graph, features, metric)
        return dataset.topology, features, metric, solver

    return process_memo(("fig08", profile, seed), build)


def trial_specs(profile: str, seed: int = 7) -> list[dict[str, Any]]:
    """One picklable spec per δ value (the parallel unit)."""
    check_profile(profile)
    return [{"delta": delta, "seed": seed} for delta in DELTAS]


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """Every algorithm at one δ; returns the table row."""
    topology, features, metric, solver = _context(profile, spec["seed"])
    delta = spec["delta"]
    implicit = run_elink(
        topology, features, metric, ELinkConfig(delta=delta, signalling="implicit")
    )
    explicit = run_elink(
        topology, features, metric, ELinkConfig(delta=delta, signalling="explicit")
    )
    spectral = spectral_clustering_search(delta=delta, solver=solver)
    hierarchical = run_hierarchical(topology.graph, features, metric, delta)
    forest = run_spanning_forest(topology, features, metric, delta)
    return {
        "delta": delta,
        "elink_implicit": implicit.num_clusters,
        "elink_explicit": explicit.num_clusters,
        "centralized": spectral.num_clusters,
        "hierarchical": hierarchical.num_clusters,
        "spanning_forest": forest.num_clusters,
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 7
) -> ExperimentTable:
    """Assemble per-δ rows (spec order) into the printable table."""
    check_profile(profile)
    table = ExperimentTable(
        name="fig08",
        title="Fig 8: clustering quality on Tao data (number of clusters vs delta)",
        columns=(
            "delta",
            "elink_implicit",
            "elink_explicit",
            "centralized",
            "hierarchical",
            "spanning_forest",
        ),
    )
    for row in results:
        table.add_row(**row)
    table.notes.append("phi = 0.1*delta, c = 4 (paper section 8.4)")
    return table


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 10 — update-handling cost with varying slack.

Fixes δ, sweeps the slack Δ, clusters the Tao network with the reduced
threshold δ-2Δ, then streams the measurement month through every node's
model, feeding each coefficient update to

- ELink's slack-based maintenance (conditions A1–A3, §6), and
- the centralized baseline, which ships coefficients to the base station
  whenever they drift beyond Δ.

Expected shape: ELink's update traffic sits roughly an order of magnitude
below the centralized scheme at every slack (the centralized scheme cannot
prune with A2/A3 because nodes do not hold a root feature), and both fall
as the slack grows.
"""

from __future__ import annotations

from repro.core import CentralizedUpdateBaseline, ELinkConfig, MaintenanceSession, run_elink
from repro.experiments.common import ExperimentTable, check_profile
from repro.datasets import generate_tao_dataset
from repro.experiments.streaming import features_of, reset_models, stream_tao

#: Fixed δ for the sweep and the slack values (2Δ < δ must hold).
DELTA = 0.2
SLACKS = (0.01, 0.02, 0.04, 0.06, 0.08)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed, samples_per_day=48)
        days = None
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=12, training_days=8, stream_days=4
        )
        days = 4

    table = ExperimentTable(
        name="fig10",
        title="Fig 10: update cost with varying slack (total messages over the stream)",
        columns=("slack", "elink", "centralized", "centralized_over_elink"),
    )
    for slack in SLACKS:
        models = reset_models(dataset)
        features = features_of(models)
        clustering = run_elink(
            dataset.topology,
            features,
            dataset.metric(),
            ELinkConfig(delta=DELTA - 2 * slack),
        ).clustering
        session = MaintenanceSession(
            dataset.topology.graph, clustering, features, dataset.metric(), DELTA, slack
        )
        centralized = CentralizedUpdateBaseline(
            dataset.topology.graph, features, base_station=0, slack=slack
        )
        stream_tao(dataset, models, {"elink": session, "centralized": centralized}, days=days)
        elink_cost = session.total_messages()
        central_cost = centralized.total_messages()
        table.add_row(
            slack=slack,
            elink=elink_cost,
            centralized=central_cost,
            centralized_over_elink=(central_cost / elink_cost if elink_cost else float("inf")),
        )
    table.notes.append(f"delta = {DELTA}; initial clustering built with delta - 2*slack")
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

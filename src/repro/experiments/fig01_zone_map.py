"""Figure 1 — the motivating SST zone map, re-enacted.

The paper opens with a heat map of Tropical Pacific sea-surface
temperature whose contiguous zones motivate spatial clustering.  This
"experiment" renders the synthetic Tao field and the δ-clustering ELink
recovers from it, side by side, as ASCII maps — the zone structure should
be visible in both — and reports how well the clustering agrees with the
(hidden) generating zones, pairwise.
"""

from __future__ import annotations

import itertools

from repro.core import ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.viz import render_clustering, render_field

DELTA = 0.3


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology
    result = run_elink(topology, features, metric, ELinkConfig(delta=DELTA))

    mean_temperature = {
        node: float(dataset.stream[node].mean()) for node in topology.graph.nodes
    }
    agreement = _pairwise_agreement(dataset, result.clustering)

    table = ExperimentTable(
        name="fig01",
        title="Fig 1: SST field and the zones ELink recovers (pairwise agreement)",
        columns=("delta", "clusters", "true_zones", "pairwise_agreement"),
    )
    table.add_row(
        delta=DELTA,
        clusters=result.num_clusters,
        true_zones=len(set(dataset.zone_of.values())),
        pairwise_agreement=round(agreement, 3),
    )
    table.notes.append("temperature field (density ramp):")
    table.notes.extend(render_field(topology, mean_temperature, width=27, height=6).split("\n"))
    table.notes.append("ELink clusters (one glyph per cluster):")
    table.notes.extend(render_clustering(topology, result.clustering, width=27, height=6).split("\n"))
    return table


def _pairwise_agreement(dataset, clustering) -> float:
    nodes = list(dataset.topology.graph.nodes)
    agree = total = 0
    for a, b in itertools.combinations(nodes, 2):
        same_zone = dataset.zone_of[a] == dataset.zone_of[b]
        same_cluster = clustering.root_of(a) == clustering.root_of(b)
        agree += int(same_zone == same_cluster)
        total += 1
    return agree / total


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Ablation — asynchrony: why the explicit technique exists (§5).

The implicit timers guarantee level ordering only for synchronous
networks: the stretch factor γ in ``κ = (1+γ)·√(N/2)`` absorbs bounded
delay variation, and beyond it a level can start before its predecessor
finished, re-introducing cross-level contention.  Explicit signalling
orders levels by messages and is correct for *any* delay distribution.

This ablation sweeps per-hop delay jitter (each hop takes
``hop_delay · (1 + U(0, jitter))``) and reports both modes' cluster
quality.  Measured outcome (recorded in EXPERIMENTS.md): δ-validity is
*never* at risk for either mode — the δ/2 join rule is local — and on the
54-node Tao grid even heavy jitter barely moves implicit quality, because
cross-level contention needs deep sentinel hierarchies to bite; the
explicit mode's guarantee is about worst cases, not typical ones.
"""

from __future__ import annotations

import numpy as np

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.sim import Network

DELTA = 0.1
JITTERS = (0.0, 0.3, 0.6, 1.0, 2.0, 4.0)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
        repeats = 5
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
        repeats = 2
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    table = ExperimentTable(
        name="ablation_asynchrony",
        title=(
            f"Ablation: hop-delay jitter vs signalling (delta = {DELTA}, "
            "gamma = 0.3; avg clusters over seeds)"
        ),
        columns=("jitter", "implicit_clusters", "explicit_clusters", "both_valid"),
    )
    for jitter in JITTERS:
        implicit_counts, explicit_counts = [], []
        valid = True
        for repeat in range(repeats):
            for mode, sink in (("implicit", implicit_counts), ("explicit", explicit_counts)):
                network = Network(
                    topology.graph,
                    jitter=jitter,
                    jitter_seed=seed * 100 + repeat,
                )
                result = run_elink(
                    topology,
                    features,
                    metric,
                    ELinkConfig(delta=DELTA, signalling=mode),
                    network=network,
                )
                sink.append(result.num_clusters)
                if validate_clustering(
                    topology.graph, result.clustering, features, metric, DELTA
                ):
                    valid = False
        table.add_row(
            jitter=jitter,
            implicit_clusters=float(np.mean(implicit_counts)),
            explicit_clusters=float(np.mean(explicit_counts)),
            both_valid=valid,
        )
    table.notes.append(
        "every clustering stays a valid delta-clustering regardless of jitter; "
        "asynchrony costs the implicit mode quality, not correctness"
    )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

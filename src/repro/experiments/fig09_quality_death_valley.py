"""Figure 9 — clustering quality on the Death Valley dataset.

Same sweep as Fig 8 on the static elevation data, averaged over 5 random
topologies (paper §8.1).  δ is in metres of elevation.

Expected shape: identical ordering to Fig 8; cluster counts fall steeply
with δ because elevation is strongly spatially autocorrelated.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_death_valley_dataset
from repro.experiments.common import ExperimentTable, check_profile

#: δ sweep in metres of elevation difference.
DELTAS = (50.0, 100.0, 200.0, 400.0, 800.0)


def run(profile: str = "full", seed: int = 11) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        # The paper uses 2500 sensors x 5 topologies; the centralized
        # spectral baseline's repeated high-k k-means makes that a
        # multi-hour run, so the full benchmark profile uses 1200 x 3 —
        # the same curve shapes at ~1/20 the cost (ELink itself handles
        # 2500 nodes in under a second; see tests/test_scale.py).
        num_sensors, seeds = 1200, [seed + k for k in range(3)]
        include_hierarchical = False  # O(N^2) rounds still dominate here
    else:
        num_sensors, seeds = 250, [seed, seed + 1]
        include_hierarchical = True

    datasets = [
        generate_death_valley_dataset(seed=s, num_sensors=num_sensors) for s in seeds
    ]
    columns = [
        "delta",
        "elink_implicit",
        "centralized",
        "spanning_forest",
    ]
    if include_hierarchical:
        columns.insert(3, "hierarchical")
    table = ExperimentTable(
        name="fig09",
        title=(
            "Fig 9: clustering quality on Death Valley data "
            f"(number of clusters vs delta, avg over {len(seeds)} topologies)"
        ),
        columns=tuple(columns),
    )
    for delta in DELTAS:
        counts: dict[str, list[int]] = {c: [] for c in columns if c != "delta"}
        for dataset in datasets:
            metric = dataset.metric()
            implicit = run_elink(
                dataset.topology, dataset.features, metric, ELinkConfig(delta=delta)
            )
            counts["elink_implicit"].append(implicit.num_clusters)
            spectral = spectral_clustering_search(
                dataset.topology.graph, dataset.features, metric, delta,
                max_k=num_sensors, search="doubling",
            )
            counts["centralized"].append(spectral.num_clusters)
            forest = run_spanning_forest(dataset.topology, dataset.features, metric, delta)
            counts["spanning_forest"].append(forest.num_clusters)
            if include_hierarchical:
                hierarchical = run_hierarchical(
                    dataset.topology.graph, dataset.features, metric, delta
                )
                counts["hierarchical"].append(hierarchical.num_clusters)
        table.add_row(delta=delta, **{k: float(np.mean(v)) for k, v in counts.items()})
    if not include_hierarchical:
        table.notes.append(
            "hierarchical omitted at 2500 nodes (its O(N^2) rounds dominate run time); "
            "the quick profile includes it"
        )
    table.notes.append("spectral k-search uses doubling+bisection at this scale")
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 9 — clustering quality on the Death Valley dataset.

Same sweep as Fig 8 on the static elevation data, averaged over 5 random
topologies (paper §8.1).  δ is in metres of elevation.

Expected shape: identical ordering to Fig 8; cluster counts fall steeply
with δ because elevation is strongly spatially autocorrelated.

The full profile runs the paper's true scale — 2500 sensors × 5 random
topologies — which the shared :class:`~repro.baselines.SpectralSolver`
makes affordable: one eigendecomposition and one k-means per distinct k
per topology, reused across the whole δ sweep.  The experiment is
decomposed into one **trial per topology** (``trial_specs`` /
``run_trial`` / ``combine_trials``), the unit the parallel runner
(``runner --jobs N``) fans out across processes; trials are seeded
deterministically, so parallel and serial runs produce identical tables.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines import (
    SpectralSolver,
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_death_valley_dataset
from repro.experiments.common import ExperimentTable, check_profile

#: δ sweep in metres of elevation difference.
DELTAS = (50.0, 100.0, 200.0, 400.0, 800.0)


def _profile_params(profile: str, seed: int) -> tuple[int, list[int], bool]:
    """(num_sensors, topology seeds, include_hierarchical) per profile."""
    check_profile(profile)
    if profile == "full":
        # The paper's scale: 2500 sensors averaged over 5 random
        # topologies.  Affordable since the spectral solver computes one
        # eigendecomposition per topology for the whole δ sweep (the old
        # per-(δ, k) recomputation made this a multi-hour run).
        return 2500, [seed + k for k in range(5)], False
    return 250, [seed, seed + 1], True


def trial_specs(profile: str, seed: int = 11) -> list[dict[str, Any]]:
    """One picklable spec per random topology (the parallel unit)."""
    num_sensors, seeds, include_hierarchical = _profile_params(profile, seed)
    return [
        {
            "topology_seed": s,
            "num_sensors": num_sensors,
            "include_hierarchical": include_hierarchical,
        }
        for s in seeds
    ]


def run_trial(spec: dict[str, Any], profile: str) -> dict[float, dict[str, int]]:
    """All algorithms over the δ sweep on one topology.

    Returns ``{delta: {algorithm: cluster count}}``.  The spectral solver
    is shared across the sweep — that sharing is why the trial covers the
    whole sweep for one topology rather than a single (topology, δ) cell.
    """
    dataset = generate_death_valley_dataset(
        seed=spec["topology_seed"], num_sensors=spec["num_sensors"]
    )
    metric = dataset.metric()
    solver = SpectralSolver(dataset.topology.graph, dataset.features, metric)
    out: dict[float, dict[str, int]] = {}
    for delta in DELTAS:
        implicit = run_elink(
            dataset.topology, dataset.features, metric, ELinkConfig(delta=delta)
        )
        spectral = spectral_clustering_search(
            delta=delta, solver=solver, max_k=spec["num_sensors"], search="doubling"
        )
        forest = run_spanning_forest(dataset.topology, dataset.features, metric, delta)
        counts = {
            "elink_implicit": implicit.num_clusters,
            "centralized": spectral.num_clusters,
            "spanning_forest": forest.num_clusters,
        }
        if spec["include_hierarchical"]:
            hierarchical = run_hierarchical(
                dataset.topology.graph, dataset.features, metric, delta
            )
            counts["hierarchical"] = hierarchical.num_clusters
        out[delta] = counts
    return out


def combine_trials(
    results: list[dict[float, dict[str, int]]], profile: str, seed: int = 11
) -> ExperimentTable:
    """Average per-topology cluster counts into the printable table."""
    _, seeds, include_hierarchical = _profile_params(profile, seed)
    columns = [
        "delta",
        "elink_implicit",
        "centralized",
        "spanning_forest",
    ]
    if include_hierarchical:
        columns.insert(3, "hierarchical")
    table = ExperimentTable(
        name="fig09",
        title=(
            "Fig 9: clustering quality on Death Valley data "
            f"(number of clusters vs delta, avg over {len(seeds)} topologies)"
        ),
        columns=tuple(columns),
    )
    for delta in DELTAS:
        averages = {
            column: float(np.mean([trial[delta][column] for trial in results]))
            for column in columns
            if column != "delta"
        }
        table.add_row(delta=delta, **averages)
    if not include_hierarchical:
        table.notes.append(
            "hierarchical omitted at 2500 nodes (its O(N^2) rounds dominate run time); "
            "the quick profile includes it"
        )
    table.notes.append("spectral k-search uses doubling+bisection at this scale")
    return table


def run(profile: str = "full", seed: int = 11) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

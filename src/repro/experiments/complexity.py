"""Empirical check of Theorems 2–3: O(N) messages, O(√N · log N) time.

Runs ELink (both signalling modes) on square grids of growing size with a
smooth synthetic field and reports messages-per-node and
time/(√N · log₄ N) — both should stay near-constant as N grows if the
bounds hold.  Also reports packet counts (the theorems bound packets; the
experiments elsewhere use the value-weighted metric).

Decomposed into one **trial per grid side**.  The monolithic loop drew
each grid's feature noise from one RNG consumed sequentially across
sides, so every spec carries the number of draws to *skip* before its
own — trials replay exactly their slice of the stream and the table
stays byte-identical to the serial sweep.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.experiments.common import ExperimentTable, check_profile
from repro.geometry import grid_topology

SIDES_FULL = (7, 10, 15, 20, 25)
SIDES_QUICK = (5, 8)


def trial_specs(profile: str, seed: int = 0) -> list[dict[str, Any]]:
    """One picklable spec per grid side, with its RNG stream offset."""
    check_profile(profile)
    sides = SIDES_FULL if profile == "full" else SIDES_QUICK
    specs = []
    skip = 0
    for side in sides:
        specs.append({"side": side, "skip": skip, "seed": seed})
        skip += side * side
    return specs


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """Both signalling modes on one grid; returns the table row."""
    check_profile(profile)
    rng = np.random.default_rng(spec["seed"])
    # Replay the monolithic sweep's RNG stream up to this side's slice
    # (scalar draws, matching the original consumption pattern exactly).
    for _ in range(spec["skip"]):
        rng.normal(0, 0.01)
    side = spec["side"]
    topology = grid_topology(side, side)
    n = topology.num_nodes
    # Smooth field with moderate structure: a diagonal gradient plus noise.
    features = {
        v: np.array(
            [
                0.05 * (topology.positions[v][0] + topology.positions[v][1])
                + rng.normal(0, 0.01)
            ]
        )
        for v in topology.graph.nodes
    }
    from repro.features import EuclideanMetric

    metric = EuclideanMetric()
    delta = 0.3
    implicit = run_elink(topology, features, metric, ELinkConfig(delta=delta))
    explicit = run_elink(
        topology, features, metric, ELinkConfig(delta=delta, signalling="explicit")
    )
    norm = math.sqrt(n) * max(math.log(n, 4), 1.0)
    return {
        "n": n,
        "implicit_msgs_per_node": implicit.stats.total_packets / n,
        "implicit_time_norm": implicit.protocol_time / norm,
        "explicit_msgs_per_node": explicit.stats.total_packets / n,
        "explicit_time_norm": explicit.protocol_time / norm,
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 0
) -> ExperimentTable:
    """Assemble per-side rows (spec order) into the printable table."""
    check_profile(profile)
    table = ExperimentTable(
        name="complexity",
        title=(
            "Theorems 2-3 check: messages/N and time/(sqrt(N)*log4 N) should "
            "stay near-constant"
        ),
        columns=(
            "n",
            "implicit_msgs_per_node",
            "implicit_time_norm",
            "explicit_msgs_per_node",
            "explicit_time_norm",
        ),
    )
    for row in results:
        table.add_row(**row)
    return table


def run(profile: str = "full", seed: int = 0) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

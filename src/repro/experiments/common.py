"""Shared infrastructure for the figure-reproduction experiments.

Every experiment module exposes ``run(profile=..., seed=...) ->
ExperimentTable`` and a ``main()`` that prints the table the corresponding
paper figure plots.  Two profiles keep the same structure at different
scales:

- ``"full"`` — the paper's parameters (used by the benchmark harness),
- ``"quick"`` — shrunk datasets for tests and smoke runs.

**Trial protocol** (optional, for the parallel runner): an experiment that
decomposes into independent work units — e.g. one per random topology —
may additionally expose

- ``trial_specs(profile) -> list`` — picklable specs, deterministically
  seeded (each spec carries its own seed, derived from the experiment
  seed, never from pool scheduling order);
- ``run_trial(spec, profile) -> result`` — one picklable unit of work;
- ``combine_trials(results, profile) -> ExperimentTable`` — results are
  passed in spec order, so combination is order-deterministic.

``run()`` must be implemented *in terms of* these three, which makes
serial and ``--jobs N`` runs produce identical tables by construction.
:func:`supports_trials` tests for the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

PROFILES = ("full", "quick")


def check_profile(profile: str) -> str:
    """Validate an experiment profile name."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    return profile


def supports_trials(module: Any) -> bool:
    """True when *module* implements the trial protocol (see module doc)."""
    return all(
        callable(getattr(module, attr, None))
        for attr in ("trial_specs", "run_trial", "combine_trials")
    )


@dataclass
class ExperimentTable:
    """A printable experiment result: one row per parameter setting."""

    name: str
    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; every declared column must be present."""
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns: {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Values of one column across rows."""
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned text."""
        widths = {
            c: max(len(c), *(len(_fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(" | ".join(_fmt(row[c]).ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table to stdout."""
        print(self.to_text())

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by the benchmark artifact)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)

"""Figure 12 — scalability with time on the Tao data (log-scale plot).

Streams the Tao measurement month and tracks *cumulative* communication
per day for six schemes:

- ``centralized_raw``   — every raw measurement shipped to the base station;
- ``centralized_model`` — model coefficients shipped on slack violation;
- ``elink_implicit`` / ``elink_explicit`` — initial in-network clustering
  (+ backbone build, + explicit synchronization) followed by slack-based
  maintenance;
- ``hierarchical`` / ``spanning_forest`` — their initial clustering cost
  followed by the same maintenance algorithm over their clusters.

Expected shape (three log-scale bands): raw-data shipping is an order of
magnitude above coefficient shipping, which is another order of magnitude
above the in-network schemes; explicit ELink tracks implicit ELink with a
constant synchronization offset, and hierarchical carries its expensive
initial clustering.

Decomposed into one **trial per cost series**.  The feature trajectory
the seasonal models emit is sink-independent, so it is materialized once
per process (a ``(days, samples, nodes, dim)`` array in the memo) and
each trial replays it into just its own sink — per-series cumulative
counts are identical to the all-sinks-at-once loop by construction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    run_elink,
)
from repro.datasets import generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.streaming import features_of, reset_models
from repro.index import build_backbone
from repro.models.seasonal import TAO_FEATURE_DIM
from repro.perf import process_memo

DELTA = 0.2
SLACK = 0.04

SERIES = (
    "centralized_raw",
    "centralized_model",
    "elink_implicit",
    "elink_explicit",
    "hierarchical",
    "spanning_forest",
)


def _context(profile: str, seed: int) -> dict[str, Any]:
    """Sink-independent stream state, shared per process (read-only).

    Holds the dataset, the post-training features, the materialized
    feature trajectory, every scheme's initial clustering and the
    per-series initial message costs (section 8.2's accounting).
    """

    def build() -> dict[str, Any]:
        if profile == "full":
            dataset = generate_tao_dataset(seed=seed, samples_per_day=48)
            days = None
        else:
            dataset = generate_tao_dataset(
                seed=seed, samples_per_day=12, training_days=8, stream_days=4
            )
            days = 4
        metric = dataset.metric()
        graph = dataset.topology.graph
        effective_delta = DELTA - 2 * SLACK

        models = reset_models(dataset)
        features = features_of(models)

        implicit = run_elink(
            dataset.topology, features, metric, ELinkConfig(delta=effective_delta)
        )
        explicit = run_elink(
            dataset.topology,
            features,
            metric,
            ELinkConfig(delta=effective_delta, signalling="explicit"),
        )
        hierarchical = run_hierarchical(graph, features, metric, effective_delta)
        forest = run_spanning_forest(dataset.topology, features, metric, effective_delta)
        backbone_cost = build_backbone(graph, implicit.clustering).build_messages

        # Materialize the model-feature trajectory once: it depends only
        # on the measurement stream, never on any sink.
        nodes = list(graph.nodes)
        spd = dataset.samples_per_day
        stream_len = len(dataset.stream[nodes[0]]) // spd
        num_days = min(days if days is not None else stream_len, stream_len)
        trajectory = np.empty((num_days, spd, len(nodes), TAO_FEATURE_DIM))
        for day in range(num_days):
            for t in range(spd):
                idx = day * spd + t
                for k, node in enumerate(nodes):
                    value = float(dataset.stream[node][idx])
                    trajectory[day, t, k] = models[node].observe(value)

        return {
            "graph": graph,
            "metric": metric,
            "features": features,
            "nodes": nodes,
            "num_days": num_days,
            "trajectory": trajectory,
            "initial": {
                "centralized_raw": 0,
                "centralized_model": 0,
                "elink_implicit": implicit.total_messages + backbone_cost,
                "elink_explicit": explicit.total_messages + backbone_cost,
                "hierarchical": hierarchical.total_messages,
                "spanning_forest": forest.total_messages,
            },
            "clusterings": {
                "elink_implicit": implicit.clustering,
                "elink_explicit": explicit.clustering,
                "hierarchical": hierarchical.clustering,
                "spanning_forest": forest.clustering,
            },
        }

    return process_memo(("fig12", profile, seed), build)


def _replay(context: dict[str, Any], sink: Any) -> list[int]:
    """Feed the materialized trajectory into one sink, in stream order."""
    nodes = context["nodes"]
    trajectory = context["trajectory"]
    cumulative: list[int] = []
    for day in range(context["num_days"]):
        for t in range(trajectory.shape[1]):
            for k, node in enumerate(nodes):
                sink.update_feature(node, trajectory[day, t, k])
        cumulative.append(int(sink.total_messages()))
    return cumulative


def trial_specs(profile: str, seed: int = 7) -> list[dict[str, Any]]:
    """One picklable spec per cost series (the parallel unit)."""
    check_profile(profile)
    return [{"series": series, "seed": seed} for series in SERIES]


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """One scheme's per-day cumulative column (initial cost included)."""
    context = _context(profile, spec["seed"])
    series = spec["series"]
    graph = context["graph"]
    features = context["features"]
    num_days = context["num_days"]

    if series == "centralized_raw":
        baseline = CentralizedUpdateBaseline(graph, features, 0, SLACK, raw=True)
        nodes = context["nodes"]
        for day in range(num_days):
            for _t in range(context["trajectory"].shape[1]):
                for node in nodes:
                    baseline.observe_raw(node)
        # Raw shipping is uniform over the stream: per-day cumulative.
        per_day_raw = baseline.total_messages() // num_days
        values = [per_day_raw * (day + 1) for day in range(num_days)]
    elif series == "centralized_model":
        baseline = CentralizedUpdateBaseline(graph, features, 0, SLACK)
        values = _replay(context, baseline)
    else:
        session = MaintenanceSession(
            graph, context["clusterings"][series], features, context["metric"], DELTA, SLACK
        )
        initial = context["initial"][series]
        values = [initial + total for total in _replay(context, session)]
    return {"series": series, "values": values}


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 7
) -> ExperimentTable:
    """Zip per-series columns (spec order) into the per-day table."""
    check_profile(profile)
    columns = {result["series"]: result["values"] for result in results}
    num_days = len(columns["centralized_raw"])
    table = ExperimentTable(
        name="fig12",
        title=(
            "Fig 12: scalability with time on Tao data "
            "(cumulative messages per day; paper plots this on a log scale)"
        ),
        columns=("day",) + SERIES,
    )
    for day in range(num_days):
        table.add_row(day=day + 1, **{series: columns[series][day] for series in SERIES})
    table.notes.append(
        f"delta = {DELTA}, slack = {SLACK}; distributed schemes include their initial "
        "clustering cost (ELink also the backbone build, per section 8.2)"
    )
    return table


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 12 — scalability with time on the Tao data (log-scale plot).

Streams the Tao measurement month and tracks *cumulative* communication
per day for six schemes:

- ``centralized_raw``   — every raw measurement shipped to the base station;
- ``centralized_model`` — model coefficients shipped on slack violation;
- ``elink_implicit`` / ``elink_explicit`` — initial in-network clustering
  (+ backbone build, + explicit synchronization) followed by slack-based
  maintenance;
- ``hierarchical`` / ``spanning_forest`` — their initial clustering cost
  followed by the same maintenance algorithm over their clusters.

Expected shape (three log-scale bands): raw-data shipping is an order of
magnitude above coefficient shipping, which is another order of magnitude
above the in-network schemes; explicit ELink tracks implicit ELink with a
constant synchronization offset, and hierarchical carries its expensive
initial clustering.
"""

from __future__ import annotations

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import (
    CentralizedUpdateBaseline,
    ELinkConfig,
    MaintenanceSession,
    run_elink,
)
from repro.datasets import generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.streaming import features_of, reset_models, stream_tao
from repro.index import build_backbone

DELTA = 0.2
SLACK = 0.04

SERIES = (
    "centralized_raw",
    "centralized_model",
    "elink_implicit",
    "elink_explicit",
    "hierarchical",
    "spanning_forest",
)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed, samples_per_day=48)
        days = None
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=12, training_days=8, stream_days=4
        )
        days = 4
    metric = dataset.metric()
    graph = dataset.topology.graph
    effective_delta = DELTA - 2 * SLACK

    models = reset_models(dataset)
    features = features_of(models)

    # Initial clustering costs per scheme.
    implicit = run_elink(
        dataset.topology, features, metric, ELinkConfig(delta=effective_delta)
    )
    explicit = run_elink(
        dataset.topology,
        features,
        metric,
        ELinkConfig(delta=effective_delta, signalling="explicit"),
    )
    hierarchical = run_hierarchical(graph, features, metric, effective_delta)
    forest = run_spanning_forest(dataset.topology, features, metric, effective_delta)
    backbone_cost = build_backbone(graph, implicit.clustering).build_messages

    initial = {
        "centralized_raw": 0,
        "centralized_model": 0,
        "elink_implicit": implicit.total_messages + backbone_cost,
        "elink_explicit": explicit.total_messages + backbone_cost,
        "hierarchical": hierarchical.total_messages,
        "spanning_forest": forest.total_messages,
    }

    sinks = {
        "centralized_model": CentralizedUpdateBaseline(graph, features, 0, SLACK),
        "elink_implicit": MaintenanceSession(
            graph, implicit.clustering, features, metric, DELTA, SLACK
        ),
        "elink_explicit": MaintenanceSession(
            graph, explicit.clustering, features, metric, DELTA, SLACK
        ),
        "hierarchical": MaintenanceSession(
            graph, hierarchical.clustering, features, metric, DELTA, SLACK
        ),
        "spanning_forest": MaintenanceSession(
            graph, forest.clustering, features, metric, DELTA, SLACK
        ),
    }
    raw_baseline = CentralizedUpdateBaseline(graph, features, 0, SLACK, raw=True)

    def raw_observer(node):
        raw_baseline.observe_raw(node)

    per_day = stream_tao(dataset, models, sinks, days=days, raw_observer=raw_observer)
    num_days = len(next(iter(per_day.values())))
    # Raw shipping is uniform over the stream: recover its per-day cumulative.
    per_day_raw = raw_baseline.total_messages() // num_days
    raw_cumulative = [per_day_raw * (day + 1) for day in range(num_days)]

    table = ExperimentTable(
        name="fig12",
        title=(
            "Fig 12: scalability with time on Tao data "
            "(cumulative messages per day; paper plots this on a log scale)"
        ),
        columns=("day",) + SERIES,
    )
    for day in range(num_days):
        table.add_row(
            day=day + 1,
            centralized_raw=raw_cumulative[day],
            centralized_model=per_day["centralized_model"][day],
            elink_implicit=initial["elink_implicit"] + per_day["elink_implicit"][day],
            elink_explicit=initial["elink_explicit"] + per_day["elink_explicit"][day],
            hierarchical=initial["hierarchical"] + per_day["hierarchical"][day],
            spanning_forest=initial["spanning_forest"] + per_day["spanning_forest"][day],
        )
    table.notes.append(
        f"delta = {DELTA}, slack = {SLACK}; distributed schemes include their initial "
        "clustering cost (ELink also the backbone build, per section 8.2)"
    )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Path-query cost: clustered safe-tree search vs BFS flooding (§7.3).

The paper defers its path-query numbers to the technical report but
describes the algorithm and its BFS baseline; this experiment measures
both on the Death-Valley-like terrain, treating high elevation as the
danger feature — "find a route that stays at least γ below the ridge".

For each γ the table reports the average per-query messages of the
clustered engine and the BFS flood (over queries where both agree a path
exists), the clustered/flood gain, and the fraction of queries answered
(both engines always agree on feasibility; tests assert it).
"""

from __future__ import annotations

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_death_valley_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.index import build_mtree
from repro.queries import PathQueryEngine, bfs_flood_path

DELTA = 150.0
GAMMAS = (300.0, 500.0, 700.0, 900.0)
DANGER = np.array([1996.0])  # the terrain's highest elevation


def run(profile: str = "full", seed: int = 11) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        num_sensors, num_queries = 1200, 120
    else:
        num_sensors, num_queries = 250, 25
    dataset = generate_death_valley_dataset(seed=seed, num_sensors=num_sensors)
    metric = dataset.metric()
    graph = dataset.topology.graph
    nodes = list(graph.nodes)

    clustering = run_elink(
        dataset.topology, dataset.features, metric, ELinkConfig(delta=DELTA)
    ).clustering
    mtree = build_mtree(clustering, dataset.features, metric)
    engine = PathQueryEngine(graph, clustering, dataset.features, metric, mtree)

    table = ExperimentTable(
        name="path_query",
        title=(
            "Path query cost on Death Valley terrain (avg messages/query; "
            f"delta = {DELTA}, danger = ridge elevation)"
        ),
        columns=("gamma", "clustered", "bfs_flood", "flood_over_clustered", "found_fraction"),
    )
    rng = np.random.default_rng(seed)
    for gamma in GAMMAS:
        clustered_costs, flood_costs, found = [], [], 0
        for _ in range(num_queries):
            source = nodes[int(rng.integers(len(nodes)))]
            destination = nodes[int(rng.integers(len(nodes)))]
            ours = engine.query(source, destination, DANGER, gamma)
            flood = bfs_flood_path(
                graph, dataset.features, metric, source, destination, DANGER, gamma
            )
            if (ours.path is None) != (flood.path is None):
                raise AssertionError("clustered and flood engines disagree on feasibility")
            if ours.path is not None:
                found += 1
                clustered_costs.append(ours.messages)
                flood_costs.append(flood.messages)
        clustered_avg = float(np.mean(clustered_costs)) if clustered_costs else 0.0
        flood_avg = float(np.mean(flood_costs)) if flood_costs else 0.0
        table.add_row(
            gamma=gamma,
            clustered=clustered_avg,
            bfs_flood=flood_avg,
            flood_over_clustered=(flood_avg / clustered_avg if clustered_avg else 0.0),
            found_fraction=found / num_queries,
        )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Path-query cost: clustered safe-tree search vs BFS flooding (§7.3).

The paper defers its path-query numbers to the technical report but
describes the algorithm and its BFS baseline; this experiment measures
both on the Death-Valley-like terrain, treating high elevation as the
danger feature — "find a route that stays at least γ below the ridge".

For each γ the table reports the average per-query messages of the
clustered engine and the BFS flood (over queries where both agree a path
exists), the clustered/flood gain, and the fraction of queries answered
(both engines always agree on feasibility; tests assert it).

Decomposed into one **trial per γ**.  Query endpoints were drawn from
one RNG consumed sequentially across the γ sweep, so ``trial_specs``
pre-draws each γ's (source, destination) index pairs in that order and
embeds them in the specs; the terrain, clustering and engine are shared
through the per-process memo.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_death_valley_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.index import build_mtree
from repro.perf import process_memo
from repro.queries import PathQueryEngine, bfs_flood_path

DELTA = 150.0
GAMMAS = (300.0, 500.0, 700.0, 900.0)
DANGER = np.array([1996.0])  # the terrain's highest elevation


def _profile_params(profile: str) -> tuple[int, int]:
    """(num_sensors, queries per γ) for *profile*."""
    check_profile(profile)
    return (1200, 120) if profile == "full" else (250, 25)


def _context(profile: str, seed: int) -> dict[str, Any]:
    """(graph, nodes, features, metric, engine), shared per process."""

    def build() -> dict[str, Any]:
        num_sensors, _ = _profile_params(profile)
        dataset = generate_death_valley_dataset(seed=seed, num_sensors=num_sensors)
        metric = dataset.metric()
        graph = dataset.topology.graph
        clustering = run_elink(
            dataset.topology, dataset.features, metric, ELinkConfig(delta=DELTA)
        ).clustering
        mtree = build_mtree(clustering, dataset.features, metric)
        engine = PathQueryEngine(graph, clustering, dataset.features, metric, mtree)
        return {
            "graph": graph,
            "nodes": list(graph.nodes),
            "features": dataset.features,
            "metric": metric,
            "engine": engine,
        }

    return process_memo(("path_query", profile, seed), build)


def trial_specs(profile: str, seed: int = 11) -> list[dict[str, Any]]:
    """One picklable spec per γ, query endpoint draws embedded."""
    num_sensors, num_queries = _profile_params(profile)
    rng = np.random.default_rng(seed)
    specs = []
    for gamma in GAMMAS:
        pairs = [
            (int(rng.integers(num_sensors)), int(rng.integers(num_sensors)))
            for _ in range(num_queries)
        ]
        specs.append({"gamma": gamma, "pairs": pairs, "seed": seed})
    return specs


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """Clustered vs flood search at one γ; returns the table row."""
    context = _context(profile, spec["seed"])
    nodes = context["nodes"]
    graph = context["graph"]
    features = context["features"]
    metric = context["metric"]
    engine = context["engine"]
    gamma = spec["gamma"]
    clustered_costs, flood_costs, found = [], [], 0
    for source_index, destination_index in spec["pairs"]:
        source = nodes[source_index]
        destination = nodes[destination_index]
        ours = engine.query(source, destination, DANGER, gamma)
        flood = bfs_flood_path(
            graph, features, metric, source, destination, DANGER, gamma
        )
        if (ours.path is None) != (flood.path is None):
            raise AssertionError("clustered and flood engines disagree on feasibility")
        if ours.path is not None:
            found += 1
            clustered_costs.append(ours.messages)
            flood_costs.append(flood.messages)
    clustered_avg = float(np.mean(clustered_costs)) if clustered_costs else 0.0
    flood_avg = float(np.mean(flood_costs)) if flood_costs else 0.0
    return {
        "gamma": gamma,
        "clustered": clustered_avg,
        "bfs_flood": flood_avg,
        "flood_over_clustered": (flood_avg / clustered_avg if clustered_avg else 0.0),
        "found_fraction": found / len(spec["pairs"]),
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 11
) -> ExperimentTable:
    """Assemble per-γ rows (spec order) into the printable table."""
    check_profile(profile)
    table = ExperimentTable(
        name="path_query",
        title=(
            "Path query cost on Death Valley terrain (avg messages/query; "
            f"delta = {DELTA}, danger = ridge elevation)"
        ),
        columns=("gamma", "clustered", "bfs_flood", "flood_over_clustered", "found_fraction"),
    )
    for row in results:
        table.add_row(**row)
    return table


def run(profile: str = "full", seed: int = 11) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Ablation — message loss and link-layer retransmission.

The paper's analysis assumes reliable links; real radios drop packets.
With per-hop ARQ (``repro.sim.radio``) the protocols run unchanged while
costs inflate by an expected 1/(1-p).  This ablation sweeps the loss
probability and reports measured inflation for ELink clustering — a
robustness check that the protocol logic holds and the cost model behaves.
"""

from __future__ import annotations

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.sim import LossyLinkModel, Network

DELTA = 0.1
LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    table = ExperimentTable(
        name="ablation_loss",
        title=f"Ablation: link loss with ARQ (delta = {DELTA})",
        columns=("loss", "clusters", "messages", "inflation", "expected_inflation", "valid"),
    )
    baseline_messages: int | None = None
    for loss_rate in LOSS_RATES:
        loss = LossyLinkModel(loss_rate, seed=seed) if loss_rate > 0 else None
        network = Network(topology.graph, loss=loss)
        result = run_elink(
            topology, features, metric, ELinkConfig(delta=DELTA), network=network
        )
        if baseline_messages is None:
            baseline_messages = result.total_messages
        violations = validate_clustering(
            topology.graph, result.clustering, features, metric, DELTA
        )
        table.add_row(
            loss=loss_rate,
            clusters=result.num_clusters,
            messages=result.total_messages,
            inflation=result.total_messages / baseline_messages,
            expected_inflation=1.0 / (1.0 - loss_rate),
            valid=not violations,
        )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Ablation — fail-stop crashes, link churn, and self-healing ELink.

The paper assumes nodes never die; sensor hardware does.  This chaos
experiment runs ELink with explicit signalling and the failure-detection
layer enabled while a :class:`~repro.sim.faults.FaultInjector` crashes a
fraction of the nodes (and, in the last row, flaps links) mid-protocol.
Reported per row: surviving node count, cluster count, whether the
surviving clustering is a valid δ-clustering of the surviving subgraph,
message totals split into protocol vs repair traffic, structured delivery
failures (drops), the message overhead relative to the fault-free
baseline, and the mean crash→repair latency.

The crash window is placed inside the protocol's κ time horizon so deaths
interleave with cluster formation — the hardest case, since episodes and
quadtree rounds are mid-flight when their participants disappear.

Decomposed into one **trial per sweep row** (each row already seeds its
own ``FaultPlan`` with ``seed + index``); only the *overhead* column
couples rows — it divides by the fault-free row's message total — so it
is computed in ``combine_trials`` from the gathered raw counts.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core import ELinkConfig, run_elink, validate_clustering
from repro.core.elink import compute_kappa
from repro.experiments.common import ExperimentTable, check_profile
from repro.features.metrics import EuclideanMetric
from repro.geometry.topology import Topology, grid_topology
from repro.sim import FaultInjector, FaultPlan, Network

DELTA = 1.0
CRASH_FRACTIONS = (0.0, 0.02, 0.05, 0.1)
CHURN_ROW = (0.05, 8)  # (crash fraction, churn events) for the mixed row


def _smooth_features(topology: Topology) -> dict:
    """Deterministic smooth scalar field over the grid positions."""
    return {
        node: np.array([(x + y) / 10.0])
        for node, (x, y) in topology.positions.items()
    }


def trial_specs(profile: str, seed: int = 3) -> list[dict[str, Any]]:
    """One picklable spec per sweep row (crash fraction / churn mix)."""
    check_profile(profile)
    sweep = [(f, 0) for f in CRASH_FRACTIONS]
    sweep.append(CHURN_ROW if profile == "full" else (CHURN_ROW[0], 4))
    return [
        {"crash": crash, "churn": churn, "index": i, "seed": seed}
        for i, (crash, churn) in enumerate(sweep)
    ]


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """One faulted protocol run; returns the row with raw message counts."""
    check_profile(profile)
    side = 20 if profile == "full" else 10
    topology = grid_topology(side, side)
    features = _smooth_features(topology)
    metric = EuclideanMetric()
    config = ELinkConfig(delta=DELTA, signalling="explicit", failure_detection=True)
    kappa = compute_kappa(topology.num_nodes, config.gamma)
    crash_window = (0.05 * kappa, 0.75 * kappa)

    # The injector mutates the graph in place: each trial gets a copy.
    graph = topology.graph.copy()
    trial = Topology(graph, dict(topology.positions))
    network = Network(graph)
    plan = FaultPlan.random(
        sorted(graph.nodes),
        seed=spec["seed"] + spec["index"],
        crash_fraction=spec["crash"],
        crash_window=crash_window,
        churn_edges=sorted(graph.edges),
        churn_events=spec["churn"],
        churn_window=crash_window,
        churn_downtime=2.0,
    )
    injector = FaultInjector(network, plan)
    result = run_elink(trial, features, metric, config, network=network, injector=injector)
    violations = validate_clustering(
        network.graph, result.clustering, features, metric, DELTA
    )
    latencies = injector.repair_latencies()
    return {
        "crash": spec["crash"],
        "churn": spec["churn"],
        "survivors": network.graph.number_of_nodes(),
        "clusters": result.num_clusters,
        "valid": not violations,
        "messages": result.total_messages,
        "repair_msgs": result.repair_messages,
        "drops": result.stats.total_drops,
        "repair_latency": float(np.mean(latencies)) if latencies else 0.0,
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 3
) -> ExperimentTable:
    """Assemble rows (spec order), deriving overhead from the fault-free row."""
    check_profile(profile)
    table = ExperimentTable(
        name="ablation_failures",
        title=f"Ablation: fail-stop crashes + churn, self-healing ELink (delta = {DELTA})",
        columns=(
            "crash",
            "churn",
            "survivors",
            "clusters",
            "valid",
            "messages",
            "repair_msgs",
            "drops",
            "overhead",
            "repair_latency",
        ),
    )
    baseline_messages = results[0]["messages"]
    for row in results:
        table.add_row(
            **{key: row[key] for key in table.columns if key != "overhead"},
            overhead=row["messages"] / baseline_messages,
        )
    return table


def run(profile: str = "full", seed: int = 3) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

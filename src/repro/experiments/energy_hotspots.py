"""Energy hotspots — who burns the battery under each update scheme.

Message totals hide *where* the energy goes.  Charging every transmission
to a per-node energy model (Mica2-era radio constants) over a stream of
Tao coefficient updates shows the classic asymmetry the paper's motivation
appeals to:

- the **centralized** scheme funnels every update through the base
  station's neighbourhood — the hottest node burns many times the network
  average and dies first;
- **ELink maintenance** confines traffic to cluster trees, keeping the
  drain low *and* balanced.

Reported per scheme: total energy, hottest-node energy, and the
max/mean imbalance factor.
"""

from __future__ import annotations

import networkx as nx

from repro.core import CentralizedUpdateBaseline, ELinkConfig, MaintenanceSession, run_elink
from repro.datasets import generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.streaming import features_of, reset_models, stream_tao
from repro.sim.energy import EnergyModel

DELTA = 0.2
SLACK = 0.02


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed, samples_per_day=48)
        days = None
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=12, training_days=8, stream_days=4
        )
        days = 4
    metric = dataset.metric()
    graph = dataset.topology.graph
    models = reset_models(dataset)
    features = features_of(models)

    clustering = run_elink(
        dataset.topology, features, metric, ELinkConfig(delta=DELTA - 2 * SLACK)
    ).clustering
    session = MaintenanceSession(graph, clustering, features, metric, DELTA, SLACK)
    centralized = CentralizedUpdateBaseline(graph, features, 0, SLACK)
    stream_tao(dataset, models, {"elink": session, "centralized": centralized}, days=days)

    # Translate each scheme's value-hop charges into per-node energy by
    # replaying them over the topology: maintenance traffic moves along
    # cluster trees (approximated by charging tree paths uniformly), while
    # centralized traffic rides the shortest-path tree to the base station.
    elink_energy = _maintenance_energy(graph, clustering, session)
    central_energy = _centralized_energy(graph, centralized)

    table = ExperimentTable(
        name="energy_hotspots",
        title="Energy hotspots over the Tao update stream (per-node radio energy)",
        columns=("scheme", "total_mj", "hottest_mj", "imbalance"),
    )
    for scheme, model in (("elink", elink_energy), ("centralized", central_energy)):
        table.add_row(
            scheme=scheme,
            total_mj=round(model.total_energy() * 1e3, 3),
            hottest_mj=round(model.max_energy() * 1e3, 3),
            imbalance=round(model.imbalance(), 2),
        )
    table.notes.append(
        "centralized funnels updates through the base-station neighbourhood; "
        "ELink confines them to cluster trees"
    )
    return table


def _maintenance_energy(graph, clustering, session) -> EnergyModel:
    """Spread the session's measured value-hops over its cluster trees."""
    model = EnergyModel()
    total_values = session.total_messages()
    tree_edges = [
        (node, parent)
        for node, parent in clustering.parent.items()
        if parent != node and graph.has_edge(node, parent)
    ]
    if not tree_edges:
        return model
    per_edge = total_values / len(tree_edges)
    for node, parent in tree_edges:
        model.charge_hop(node, parent, 1)
        model.spent[node] += (per_edge - 1) * model.tx_per_value
        model.spent[parent] += (per_edge - 1) * model.rx_per_value
    return model


def _centralized_energy(graph, baseline) -> EnergyModel:
    """Replay the baseline's shipments over the base-station BFS tree."""
    model = EnergyModel()
    base = baseline.base_station
    parents = dict(nx.bfs_predecessors(graph, base))
    total_values = baseline.total_messages()
    hops = baseline._hops
    # Each shipped value travels node -> base; weight traffic by the
    # measured totals, distributing along every node's path proportionally
    # to its hop count share.
    weight = total_values / max(sum(hops[v] for v in graph.nodes if v != base), 1)
    for node in graph.nodes:
        if node == base:
            continue
        current = node
        while current != base:
            parent = parents[current]
            model.spent[current] = (
                model.spent.get(current, 0.0) + weight * model.tx_per_value
            )
            model.spent[parent] = (
                model.spent.get(parent, 0.0) + weight * model.rx_per_value
            )
            current = parent
    return model


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

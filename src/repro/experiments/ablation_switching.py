"""Ablation — the cluster-switching knobs c (budget) and φ (threshold).

§3.1 fixes *c* to "3–5" and §8.4 sets φ = 0.1·δ without justification;
this ablation sweeps both and reports cluster quality and message cost on
the Tao data, showing what the defaults buy:

- c = 0 forbids switching: first-come seeding locks in worse clusters;
- large c with φ = 0 lets nodes chase marginal improvements, spending
  messages for little quality;
- the paper's (c=4, φ=0.1δ) sits at the knee.
"""

from __future__ import annotations

from repro.core import ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile

DELTA = 0.1
BUDGETS = (0, 1, 2, 4, 8)
PHI_FRACTIONS = (0.0, 0.05, 0.1, 0.3)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    table = ExperimentTable(
        name="ablation_switching",
        title=f"Ablation: switch budget c and threshold phi (delta = {DELTA})",
        columns=("c", "phi_over_delta", "clusters", "messages", "switches"),
    )
    for budget in BUDGETS:
        for fraction in PHI_FRACTIONS:
            result = run_elink(
                topology,
                features,
                metric,
                ELinkConfig(delta=DELTA, max_switches=budget, phi=fraction * DELTA),
            )
            table.add_row(
                c=budget,
                phi_over_delta=fraction,
                clusters=result.num_clusters,
                messages=result.total_messages,
                switches=result.total_switches,
            )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Ablation — the three signalling designs of §4–§5.

Runs implicit, explicit and *unordered* ELink on the Tao data and reports
quality (clusters), communication (messages) and protocol time side by
side.  This quantifies the §5 trade-off the paper states qualitatively:
unordered expansion finishes in O(√N) but pays in quality through
cross-level contention; explicit signalling pays a synchronization
surcharge for asynchronous-network correctness.
"""

from __future__ import annotations

from repro.core import ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile

DELTAS = (0.05, 0.1, 0.2)
MODES = ("implicit", "explicit", "unordered")


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    table = ExperimentTable(
        name="ablation_signalling",
        title="Ablation: signalling designs (quality / messages / protocol time)",
        columns=(
            "delta",
            "implicit_clusters",
            "explicit_clusters",
            "unordered_clusters",
            "implicit_msgs",
            "explicit_msgs",
            "unordered_msgs",
            "implicit_time",
            "unordered_time",
        ),
    )
    for delta in DELTAS:
        results = {
            mode: run_elink(
                topology, features, metric, ELinkConfig(delta=delta, signalling=mode)
            )
            for mode in MODES
        }
        table.add_row(
            delta=delta,
            implicit_clusters=results["implicit"].num_clusters,
            explicit_clusters=results["explicit"].num_clusters,
            unordered_clusters=results["unordered"].num_clusters,
            implicit_msgs=results["implicit"].total_messages,
            explicit_msgs=results["explicit"].total_messages,
            unordered_msgs=results["unordered"].total_messages,
            implicit_time=round(results["implicit"].protocol_time, 1),
            unordered_time=round(results["unordered"].protocol_time, 1),
        )
    table.notes.append(
        "unordered = all sentinels start at t=0 (section 5): fast, poor quality"
    )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""One experiment module per figure of the paper's evaluation (§8).

Run any experiment standalone (``python -m
repro.experiments.fig08_quality_tao``) or all of them via
:mod:`repro.experiments.runner`.  Each module's ``run(profile=...)``
returns an :class:`~repro.experiments.common.ExperimentTable`; the
``"full"`` profile uses the paper's parameters, ``"quick"`` a shrunk
version for tests.
"""

from repro.experiments import (
    ablation_asynchrony,
    ablation_failures,
    ablation_loss,
    ablation_signalling,
    ablation_switching,
    complexity,
    energy_hotspots,
    fig01_zone_map,
    fig08_quality_tao,
    fig09_quality_death_valley,
    fig10_update_cost,
    fig11_quality_slack,
    fig12_scalability_time,
    fig13_scalability_size,
    fig14_range_query_tao,
    fig15_range_query_synthetic,
    optimality_gap,
    path_query_cost,
)
from repro.experiments.common import ExperimentTable

ALL_EXPERIMENTS = {
    "fig01": fig01_zone_map,
    "fig08": fig08_quality_tao,
    "fig09": fig09_quality_death_valley,
    "fig10": fig10_update_cost,
    "fig11": fig11_quality_slack,
    "fig12": fig12_scalability_time,
    "fig13": fig13_scalability_size,
    "fig14": fig14_range_query_tao,
    "fig15": fig15_range_query_synthetic,
    "complexity": complexity,
    "path_query": path_query_cost,
    "ablation_signalling": ablation_signalling,
    "ablation_asynchrony": ablation_asynchrony,
    "ablation_switching": ablation_switching,
    "ablation_loss": ablation_loss,
    "ablation_failures": ablation_failures,
    "optimality_gap": optimality_gap,
    "energy_hotspots": energy_hotspots,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentTable"]

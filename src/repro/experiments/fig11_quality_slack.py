"""Figure 11 — clustering quality with varying slack.

Granting a slack Δ means clustering with the reduced threshold δ-2Δ, so
every algorithm produces more clusters as Δ grows — the quality side of
the quality-for-communication trade Fig 10 prices.  This experiment sweeps
Δ at fixed δ on the Tao data and reports each algorithm's cluster count at
the effective threshold.
"""

from __future__ import annotations

from repro.baselines import (
    SpectralSolver,
    run_hierarchical,
    run_spanning_forest,
    spectral_clustering_search,
)
from repro.core import ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.fig10_update_cost import DELTA, SLACKS


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology

    table = ExperimentTable(
        name="fig11",
        title=(
            f"Fig 11: clustering quality with varying slack (delta = {DELTA}; "
            "clusters at effective threshold delta - 2*slack)"
        ),
        columns=("slack", "elink", "centralized", "hierarchical", "spanning_forest"),
    )
    # The effective threshold varies with the slack, but the spectral
    # solver's state is δ-independent — share it across the sweep.
    solver = SpectralSolver(topology.graph, features, metric)
    for slack in SLACKS:
        effective = DELTA - 2 * slack
        elink = run_elink(topology, features, metric, ELinkConfig(delta=effective))
        spectral = spectral_clustering_search(delta=effective, solver=solver)
        hierarchical = run_hierarchical(topology.graph, features, metric, effective)
        forest = run_spanning_forest(topology, features, metric, effective)
        table.add_row(
            slack=slack,
            elink=elink.num_clusters,
            centralized=spectral.num_clusters,
            hierarchical=hierarchical.num_clusters,
            spanning_forest=forest.num_clusters,
        )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Shared streaming driver for the update-handling experiments (Figs 10–12).

Streams the Tao measurement month through every node's seasonal model and
feeds the resulting feature updates to any number of *sinks* — maintenance
sessions or centralized baselines exposing
``update_feature(node, feature)`` — recording each sink's cumulative
message count at every day boundary.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import numpy as np

from repro.datasets.tao import TaoDataset
from repro.models.seasonal import TaoNodeModel

#: A sink absorbs per-node feature updates and reports its message total.
UpdateSink = object  # duck-typed: update_feature(node, feature), total_messages()


def stream_tao(
    dataset: TaoDataset,
    models: Mapping[Hashable, TaoNodeModel],
    sinks: Mapping[str, UpdateSink],
    *,
    days: int | None = None,
    raw_observer: Callable[[Hashable], None] | None = None,
) -> dict[str, list[int]]:
    """Stream the dataset's measurement month through the sinks.

    Returns per-sink cumulative message totals at each day boundary
    (``len == days``).  *raw_observer*, if given, is called once per
    (node, measurement) — the hook used to charge the raw-data centralized
    baseline in Fig 12.
    """
    nodes = list(dataset.topology.graph.nodes)
    spd = dataset.samples_per_day
    total_days = min(
        days if days is not None else len(dataset.stream[nodes[0]]) // spd,
        len(dataset.stream[nodes[0]]) // spd,
    )
    cumulative: dict[str, list[int]] = {name: [] for name in sinks}
    for day in range(total_days):
        for t in range(spd):
            idx = day * spd + t
            for node in nodes:
                value = float(dataset.stream[node][idx])
                feature = models[node].observe(value)
                if raw_observer is not None:
                    raw_observer(node)
                for sink in sinks.values():
                    sink.update_feature(node, feature)
        for name, sink in sinks.items():
            cumulative[name].append(int(sink.total_messages()))
    return cumulative


def reset_models(dataset: TaoDataset) -> dict[Hashable, TaoNodeModel]:
    """Fresh per-node models initialized on the training month."""
    models: dict[Hashable, TaoNodeModel] = {}
    for node in dataset.topology.graph.nodes:
        model = TaoNodeModel(dataset.samples_per_day)
        model.fit(dataset.training[node])
        models[node] = model
    return models


def features_of(models: Mapping[Hashable, TaoNodeModel]) -> dict[Hashable, np.ndarray]:
    """Current exposed feature per node."""
    return {node: model.feature for node, model in models.items()}

"""Run every figure experiment and print (or save) the tables.

Usage::

    python -m repro.experiments.runner                # full profile, stdout
    python -m repro.experiments.runner --quick        # shrunk profile
    python -m repro.experiments.runner --only fig08 fig10
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use the shrunk profile")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"experiment names to run (default: all of {sorted(ALL_EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)
    profile = "quick" if args.quick else "full"
    names = args.only if args.only else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in names:
        module = ALL_EXPERIMENTS[name]
        start = time.time()
        table = module.run(profile=profile)
        table.print()
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run every figure experiment and print (or save) the tables.

Usage::

    python -m repro.experiments.runner                # full profile, stdout
    python -m repro.experiments.runner --quick        # shrunk profile
    python -m repro.experiments.runner --only fig08 fig10
    python -m repro.experiments.runner --jobs 4       # process-pool parallel

Parallelism (``--jobs N``) fans independent work units out over a
persistent warm process pool (workers pre-import :mod:`repro` and open
the artifact cache once, at fork time — see :mod:`repro.perf.pool`).
The unit is one experiment, except for experiments that declare a finer
decomposition (``trial_specs`` / ``run_trial`` / ``combine_trials``
module attributes — one trial per topology, per N, per γ, …).  Every
unit carries its own fixed seeds and runs in its own interpreter, so
parallel and serial runs produce **identical tables** — only wall-clock
changes.  Output is printed in submission order regardless of completion
order, and the runner reports both the summed serial wall and the real
elapsed wall (their ratio is the suite speedup).

``--cache [DIR]`` enables the content-addressed artifact cache
(:mod:`repro.perf.cache`) for dataset generation, feature fitting, and
spectral eigendecompositions by exporting ``REPRO_CACHE`` — worker
processes inherit it.  DIR defaults to ``.repro-cache``.  Cached values
are keyed by function, canonicalized parameters, and a code-version
salt, so warm hits are byte-identical to cold computes and tables do not
change; the cache is off unless requested.

Every run also writes a ``BENCH_results.json`` artifact (``--bench-out``
to relocate, ``--no-bench`` to skip) recording per-experiment wall time
and the full result tables — message counts included — so the performance
trajectory of the reproduction is tracked run over run.  Benchmark and
profile artifacts live at the repository root and are gitignored
(``BENCH_results.json``, ``PROFILE_kernel.txt``); CI uploads
``BENCH_results.json`` as a build artifact instead of committing it.

``--verify`` arms the ``repro.verify`` correctness oracle at level
``full`` for every ELink run the experiments perform: online invariant
monitors (timer ownership, ack conservation, repair causality, clock
monotonicity) plus end-of-run stats-conservation and δ-legality checks.
A violation raises and aborts the runner — verified tables are either
correct or absent.  ``--quick`` without ``--verify`` defaults to the
``cheap`` level (end-of-run checks only); setting ``REPRO_VERIFY``
explicitly overrides both defaults, and the level is inherited by
``--jobs`` worker processes through that variable.

``--profile`` activates per-event-type wall-time accounting inside every
event kernel the experiments build (see :mod:`repro.obs.profiler`) and
writes a flame-style summary to ``--profile-out`` (default
``PROFILE_kernel.txt``).  Profiling implies serial execution: worker
processes cannot report into the parent's profiler, so ``--profile`` with
``--jobs > 1`` is rejected rather than silently under-counting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentTable, supports_trials


def _run_experiment(name: str, profile: str) -> tuple[ExperimentTable, float]:
    """Worker: run one whole experiment; returns (table, wall seconds)."""
    module = ALL_EXPERIMENTS[name]
    start = time.perf_counter()
    table = module.run(profile=profile)
    return table, time.perf_counter() - start


def _run_trial(name: str, spec: Any, profile: str) -> tuple[Any, float]:
    """Worker: run one trial of a trial-decomposed experiment."""
    module = ALL_EXPERIMENTS[name]
    start = time.perf_counter()
    result = module.run_trial(spec, profile)
    return result, time.perf_counter() - start


def _run_scale_trial(spec: Any) -> tuple[Any, float]:
    """Worker: run one --max-n scale-ladder size (fig13 scale mode)."""
    from repro.experiments import fig13_scalability_size

    start = time.perf_counter()
    result = fig13_scalability_size.run_scale_trial(spec)
    return result, time.perf_counter() - start


def _run_scale(max_n: int, jobs: int) -> tuple[ExperimentTable, float]:
    """Run the fig13 scale sweep up to *max_n*, optionally over the pool."""
    from repro.experiments import fig13_scalability_size

    specs = fig13_scalability_size.scale_trial_specs(max_n)
    start = time.perf_counter()
    if jobs > 1:
        from repro.perf.pool import create_pool

        with create_pool(min(jobs, len(specs))) as pool:
            futures = [pool.submit(_run_scale_trial, spec) for spec in specs]
            outputs = [future.result() for future in futures]
        results = [result for result, _wall in outputs]
    else:
        results = [fig13_scalability_size.run_scale_trial(spec) for spec in specs]
    table = fig13_scalability_size.combine_scale_trials(results)
    return table, time.perf_counter() - start


def _run_parallel(
    names: list[str], profile: str, jobs: int
) -> list[tuple[str, ExperimentTable, float, float]]:
    """Run *names* over a warm process pool; results come back in *names* order.

    Per experiment two times are reported: ``wall`` is the summed wall time
    of its work units (its serial-equivalent cost) and ``elapsed`` the real
    time from pool start until its last unit completed.
    """
    from repro.perf.pool import create_pool

    tasks = []  # (name, kind, future-producing args)
    for name in names:
        module = ALL_EXPERIMENTS[name]
        if supports_trials(module):
            for index, spec in enumerate(module.trial_specs(profile)):
                tasks.append((name, "trial", index, spec))
        else:
            tasks.append((name, "whole", 0, None))

    done_at: dict[int, float] = {}
    with create_pool(min(jobs, len(tasks))) as pool:
        pool_start = time.perf_counter()
        futures = []
        for position, (name, kind, _index, spec) in enumerate(tasks):
            if kind == "whole":
                future = pool.submit(_run_experiment, name, profile)
            else:
                future = pool.submit(_run_trial, name, spec, profile)
            future.add_done_callback(
                lambda _f, position=position: done_at.setdefault(
                    position, time.perf_counter()
                )
            )
            futures.append(future)
        outputs = [future.result() for future in futures]

    results: list[tuple[str, ExperimentTable, float, float]] = []
    for name in names:
        module = ALL_EXPERIMENTS[name]
        indices = [i for i, task in enumerate(tasks) if task[0] == name]
        wall = sum(outputs[i][1] for i in indices)
        elapsed = max(done_at[i] for i in indices) - pool_start
        if supports_trials(module):
            trial_results = [outputs[i][0] for i in indices]
            table = module.combine_trials(trial_results, profile)
        else:
            (table,) = [outputs[i][0] for i in indices]
        results.append((name, table, wall, elapsed))
    return results


def _noop() -> None:
    return None


def _run_micro() -> dict:
    """Kernel + engine micro timings for the BENCH ``micro`` block.

    Three entries: heap-vs-wheel post/fire wall time at 10³/10⁴/10⁵ pending
    events (64 distinct timestamps — the repeated-timestamp regime), the
    object-vs-array broadcast-storm speedup at N=2500 on the jitter=0
    fast path (the engine acceptance number), and the arena-vs-object
    message allocation bench (columnar rows + lazy materialization against
    eager ``Message`` construction for the same broadcast blocks).  The
    block also records throughput (messages/sec) and the process peak RSS.
    """
    import resource

    from repro.geometry import random_geometric_topology
    from repro.sim import EventKernel, Network, TimerWheelKernel
    from repro.sim.messages import Message, MessageArena

    kernels: dict[str, dict] = {}
    for pending in (1_000, 10_000, 100_000):
        row = {}
        for label, kernel_cls in (("heap", EventKernel), ("wheel", TimerWheelKernel)):
            kernel = kernel_cls()
            post = kernel.post
            start = time.perf_counter()
            for i in range(pending):
                post(float(i & 63), _noop)
            posted = time.perf_counter()
            kernel.run()
            fired = time.perf_counter()
            row[label] = {
                "post_s": round(posted - start, 4),
                "fire_s": round(fired - posted, 4),
            }
        kernels[str(pending)] = row

    class _Sink:
        __slots__ = ("count",)

        def __init__(self):
            self.count = 0

        def handle_message(self, message):
            self.count += 1

    topology = random_geometric_topology(2500, seed=3)
    flood: dict[str, float] = {}
    for engine in ("object", "array"):
        network = Network(topology.graph, engine=engine)
        sink = _Sink()
        for node in network.graph.nodes:
            network.register(node, sink)
        nodes = list(network.graph.nodes)
        start = time.perf_counter()
        for _ in range(16):
            for node in nodes:
                network.broadcast_values(node, "feature")
        network.run()
        flood[f"{engine}_s"] = round(time.perf_counter() - start, 4)
    flood["messages"] = 16 * 2 * topology.graph.number_of_edges()
    flood["speedup"] = (
        round(flood["object_s"] / flood["array_s"], 2) if flood["array_s"] else None
    )
    flood["msgs_per_s"] = (
        round(flood["messages"] / flood["array_s"]) if flood["array_s"] else None
    )

    # Arena-vs-object allocation: the same 2000 × 32-destination broadcast
    # blocks as eager Message objects and as arena rows.  append_s is the
    # fast-path cost (vectorised rounds never materialize); arena_s adds a
    # full materialize pass — the worst case, every row consumed by an
    # object handler — so both regimes are tracked run over run.
    blocks, fanout = 2_000, 32
    dsts = list(range(fanout))
    start = time.perf_counter()
    for src in range(blocks):
        Message.batch("feature", src, dsts, None, 1, "data")
    object_s = time.perf_counter() - start
    arena = MessageArena()
    start = time.perf_counter()
    kind = arena.kind_id("feature", "data")
    for src in range(blocks):
        arena.append_block(kind, src, dsts, arena.payload_ref(None), 1)
    append_s = time.perf_counter() - start
    start = time.perf_counter()
    for row in range(len(arena)):
        arena.materialize(row)
    materialize_s = time.perf_counter() - start
    alloc = {
        "rows": blocks * fanout,
        "object_s": round(object_s, 4),
        "append_s": round(append_s, 4),
        "materialize_s": round(materialize_s, 4),
        "arena_s": round(append_s + materialize_s, 4),
        "speedup": round(object_s / append_s, 2) if append_s else None,
    }

    return {
        "kernel_post_fire": kernels,
        "engine_flood_n2500": flood,
        "arena_alloc": alloc,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024,
    }


def _bench_payload(
    results: list[tuple[str, ExperimentTable, float, float]],
    profile: str,
    jobs: int,
    total_wall: float,
) -> dict:
    from repro.perf import get_cache
    from repro.perf.meta import environment_metadata

    from repro.sim import default_engine

    serial_wall = sum(wall for _name, _table, wall, _elapsed in results)
    payload = {
        "schema": 5,
        "profile": profile,
        "jobs": jobs,
        "engine": default_engine(),
        "environment": environment_metadata(),
        "total_wall_s": round(total_wall, 3),
        "serial_wall_s": round(serial_wall, 3),
        "speedup": round(serial_wall / total_wall, 3) if total_wall > 0 else None,
        "experiments": {
            name: {
                "wall_s": round(wall, 3),
                "elapsed_s": round(elapsed, 3),
                **table.to_json_dict(),
            }
            for name, table, wall, elapsed in results
        },
    }
    cache = get_cache()
    if cache is not None:
        payload["cache"] = cache.stats()
    return payload


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use the shrunk profile")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"experiment names to run (default: all of {sorted(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run work units over an N-process pool (default 1: serial)",
    )
    parser.add_argument(
        "--bench-out",
        default="BENCH_results.json",
        metavar="PATH",
        help="where to write the per-experiment timing/result artifact",
    )
    parser.add_argument(
        "--no-bench", action="store_true", help="skip writing the benchmark artifact"
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array"),
        default=None,
        help="simulation engine for every run (exported as REPRO_ENGINE so "
        "--jobs workers inherit it; default: object, or the caller's "
        "REPRO_ENGINE)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        metavar="N",
        help="also run the fig13 scale sweep up to N nodes and record it as "
        "the BENCH scale block; given without --only, the scale sweep "
        "replaces the regular experiment list",
    )
    parser.add_argument(
        "--micro",
        action="store_true",
        help="also time kernel heap-vs-wheel scheduling and the object-vs-"
        "array engine flood, recorded as the BENCH micro block",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="also run the fig13 shard ladder (1, 2, ..., K shards of the "
        "multi-process sharded engine at one network size — --max-n, or "
        "40000 by default), recorded as the BENCH shards block",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="enable the content-addressed artifact cache in DIR (default "
        ".repro-cache when the flag is given without a value); exported as "
        "REPRO_CACHE so --jobs workers inherit it",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run every ELink run fully verified (online invariant monitors + "
        "stats/clustering checks; violations abort the run)",
    )
    parser.add_argument(
        "--profile",
        dest="kernel_profile",
        action="store_true",
        help="profile kernel event handling (serial only); writes a flame-style summary",
    )
    parser.add_argument(
        "--profile-out",
        default="PROFILE_kernel.txt",
        metavar="PATH",
        help="where --profile writes its summary (default PROFILE_kernel.txt)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.kernel_profile and args.jobs > 1:
        parser.error("--profile requires --jobs 1 (workers cannot report into the parent)")
    profile = "quick" if args.quick else "full"
    # Cache policy: --cache exports REPRO_CACHE so both this process and any
    # --jobs workers (which inherit the environment at fork) resolve the
    # same directory; an explicit REPRO_CACHE in the caller's environment
    # also works without the flag.
    from repro.perf.cache import CACHE_ENV

    if args.cache is not None:
        os.environ[CACHE_ENV] = args.cache
    if os.environ.get(CACHE_ENV):
        print(f"[artifact cache: {os.environ[CACHE_ENV]}]")
    # Engine policy: --engine exports REPRO_ENGINE before any pool forks,
    # so this process and every --jobs worker resolve the same engine; an
    # explicit REPRO_ENGINE in the caller's environment also works.
    from repro.sim import ENGINE_ENV, default_engine

    if args.engine is not None:
        os.environ[ENGINE_ENV] = args.engine
    if default_engine() != "object":
        print(f"[engine: {default_engine()}]")
    # Verification policy: --verify arms the full oracle; --quick defaults
    # to the cheap end-of-run checks (they cost one clustering validation
    # per run and never alter a table).  The level travels through the
    # REPRO_VERIFY environment variable so --jobs workers inherit it; an
    # explicit REPRO_VERIFY in the caller's environment wins over the
    # --quick default.
    from repro.verify.runtime import VERIFY_ENV, set_verification_level, verification_level

    if args.verify:
        set_verification_level("full")
    elif args.quick and VERIFY_ENV not in os.environ:
        set_verification_level("cheap")
    verify_level = verification_level()
    if verify_level != "off":
        print(f"[verification: {verify_level} — invariant violations abort the run]")
    if args.max_n is not None or args.shards is not None:
        # A scale/shard run replaces the regular suite unless --only names some.
        names = args.only or []
    else:
        names = args.only if args.only else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    total_start = time.perf_counter()
    if not names:
        results = []
    elif args.jobs == 1:
        from repro.obs.profiler import KernelProfiler, profiled

        profiler = KernelProfiler() if args.kernel_profile else None
        results = []
        for name in names:
            if profiler is None:
                table, wall = _run_experiment(name, profile)
            else:
                with profiled(profiler):
                    table, wall = _run_experiment(name, profile)
            table.print()
            print(f"[{name} finished in {wall:.1f}s]\n")
            results.append((name, table, wall, wall))
        if profiler is not None:
            report = profiler.report()
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(report)
                handle.write("\n")
            print(report)
            print(f"[wrote {args.profile_out}]")
    else:
        results = _run_parallel(names, profile, args.jobs)
        for name, table, wall, _elapsed in results:
            table.print()
            print(f"[{name} finished in {wall:.1f}s]\n")
    micro = None
    if args.micro:
        micro = _run_micro()
        flood = micro["engine_flood_n2500"]
        print(
            f"[micro: engine flood n=2500 — object {flood['object_s']}s, "
            f"array {flood['array_s']}s, speedup {flood['speedup']}x]\n"
        )
    scale_table = scale_wall = None
    if args.max_n is not None:
        scale_table, scale_wall = _run_scale(args.max_n, args.jobs)
        scale_table.print()
        print(f"[fig13 scale sweep (max_n={args.max_n}) finished in {scale_wall:.1f}s]\n")
    shards_table = shards_wall = shards_n = None
    if args.shards is not None:
        # The ladder runs serially: the sharded engine forks its own
        # per-shard workers, so pooling trials would oversubscribe cores
        # and corrupt the very wall times the block exists to compare.
        from repro.experiments import fig13_scalability_size

        shards_n = args.max_n if args.max_n is not None else 40_000
        shards_start = time.perf_counter()
        shards_table = fig13_scalability_size.run_shards(shards_n, args.shards)
        shards_wall = time.perf_counter() - shards_start
        shards_table.print()
        print(
            f"[fig13 shard ladder (n={shards_n}, up to {args.shards} shards) "
            f"finished in {shards_wall:.1f}s]\n"
        )
    total_wall = time.perf_counter() - total_start
    serial_wall = sum(wall for _name, _table, wall, _elapsed in results)
    if args.jobs > 1 and results and total_wall > 0:
        print(
            f"[suite: serial-equivalent {serial_wall:.1f}s, elapsed "
            f"{total_wall:.1f}s, speedup {serial_wall / total_wall:.1f}x]"
        )

    if not args.no_bench:
        payload = _bench_payload(results, profile, args.jobs, total_wall)
        if micro is not None:
            payload["micro"] = micro
        if scale_table is not None:
            payload["scale"] = {
                "max_n": args.max_n,
                "wall_s": round(scale_wall, 3),
                **scale_table.to_json_dict(),
            }
        if shards_table is not None:
            payload["shards"] = {
                "n": shards_n,
                "max_shards": args.shards,
                "wall_s": round(shards_wall, 3),
                **shards_table.to_json_dict(),
            }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote {args.bench_out}: {len(results)} experiments, {total_wall:.1f}s total]")
    if verify_level != "off":
        print(f"[verification: {verify_level} — all runs clean]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

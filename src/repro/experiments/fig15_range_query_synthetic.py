"""Figure 15 — range-query cost on the synthetic (uncorrelated) data.

Same setup as Fig 14 on the synthetic dataset with radius fractions
(0.3δ, 0.7δ).  Because neighbouring nodes are uncorrelated, clusters are
small and δ-compactness pruning buys little — the point of the figure:
communication benefits shrink without spatial correlation.

Decomposed like Fig 14: one **trial per radius fraction**, with the
monolithic sweep's sequential query draws pre-drawn into the specs and
the dataset/engines shared through the per-process memo.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_synthetic_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.fig14_range_query_tao import _engine
from repro.perf import process_memo
from repro.queries import TagEngine, brute_force_range

DELTA = 0.08
RADIUS_FRACTIONS = (0.3, 0.4, 0.5, 0.6, 0.7)


def _profile_params(profile: str) -> tuple[int, int]:
    """(network size, queries per fraction) for *profile*."""
    check_profile(profile)
    return (400, 100) if profile == "full" else (100, 20)


def _context(profile: str, seed: int) -> dict[str, Any]:
    """(nodes, features, metric, engines, tag, n), shared per process."""

    def build() -> dict[str, Any]:
        n, _ = _profile_params(profile)
        dataset = generate_synthetic_dataset(n, seed=seed)
        metric = dataset.metric()
        topology = dataset.topology
        graph = topology.graph
        features = dataset.features
        engines = {
            "elink": _engine(
                graph,
                run_elink(topology, features, metric, ELinkConfig(delta=DELTA)).clustering,
                features,
                metric,
            ),
            "hierarchical": _engine(
                graph,
                run_hierarchical(graph, features, metric, DELTA).clustering,
                features,
                metric,
            ),
            "spanning_forest": _engine(
                graph,
                run_spanning_forest(topology, features, metric, DELTA).clustering,
                features,
                metric,
            ),
        }
        return {
            "nodes": dataset.nodes,
            "features": features,
            "metric": metric,
            "engines": engines,
            "tag": TagEngine(graph, features, metric),
            "n": n,
        }

    return process_memo(("fig15", profile, seed), build)


def trial_specs(profile: str, seed: int = 3) -> list[dict[str, Any]]:
    """One picklable spec per radius fraction, query draws embedded."""
    n, num_queries = _profile_params(profile)
    rng = np.random.default_rng(seed)
    specs = []
    for fraction in RADIUS_FRACTIONS:
        pairs = [
            (int(rng.integers(n)), int(rng.integers(n))) for _ in range(num_queries)
        ]
        specs.append({"fraction": fraction, "pairs": pairs, "seed": seed})
    return specs


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """All engines over one radius fraction; returns the table row."""
    context = _context(profile, spec["seed"])
    nodes = context["nodes"]
    features = context["features"]
    metric = context["metric"]
    engines = context["engines"]
    radius = spec["fraction"] * DELTA
    costs: dict[str, list[int]] = {name: [] for name in engines}
    for initiator_index, query_index in spec["pairs"]:
        initiator = nodes[initiator_index]
        q = features[nodes[query_index]]
        truth = brute_force_range(features, metric, q, radius)
        for name, engine in engines.items():
            out = engine.query(q, radius, initiator)
            if out.matches != truth:
                raise AssertionError(f"{name} returned a wrong answer set")
            costs[name].append(out.messages)
    return {
        "radius_over_delta": spec["fraction"],
        "tag": context["tag"].per_query_cost(),
        **{name: float(np.mean(values)) for name, values in costs.items()},
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 3
) -> ExperimentTable:
    """Assemble per-fraction rows (spec order) into the printable table."""
    n, _ = _profile_params(profile)
    table = ExperimentTable(
        name="fig15",
        title=(
            f"Fig 15: range query cost on synthetic data (avg messages/query, "
            f"delta = {DELTA}, n = {n})"
        ),
        columns=("radius_over_delta", "elink", "hierarchical", "spanning_forest", "tag"),
    )
    for row in results:
        table.add_row(**row)
    table.notes.append(
        "uncorrelated features leave many small clusters, so pruning gains shrink "
        "relative to Fig 14 — the figure's point"
    )
    return table


def run(profile: str = "full", seed: int = 3) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 15 — range-query cost on the synthetic (uncorrelated) data.

Same setup as Fig 14 on the synthetic dataset with radius fractions
(0.3δ, 0.7δ).  Because neighbouring nodes are uncorrelated, clusters are
small and δ-compactness pruning buys little — the point of the figure:
communication benefits shrink without spatial correlation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import ELinkConfig, run_elink
from repro.datasets import generate_synthetic_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.experiments.fig14_range_query_tao import _engine
from repro.queries import TagEngine, brute_force_range

DELTA = 0.08
RADIUS_FRACTIONS = (0.3, 0.4, 0.5, 0.6, 0.7)


def run(profile: str = "full", seed: int = 3) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        n, num_queries = 400, 100
    else:
        n, num_queries = 100, 20
    dataset = generate_synthetic_dataset(n, seed=seed)
    metric = dataset.metric()
    topology = dataset.topology
    graph = topology.graph
    nodes = dataset.nodes
    features = dataset.features

    engines = {
        "elink": _engine(
            graph,
            run_elink(topology, features, metric, ELinkConfig(delta=DELTA)).clustering,
            features,
            metric,
        ),
        "hierarchical": _engine(
            graph,
            run_hierarchical(graph, features, metric, DELTA).clustering,
            features,
            metric,
        ),
        "spanning_forest": _engine(
            graph,
            run_spanning_forest(topology, features, metric, DELTA).clustering,
            features,
            metric,
        ),
    }
    tag = TagEngine(graph, features, metric)

    table = ExperimentTable(
        name="fig15",
        title=(
            f"Fig 15: range query cost on synthetic data (avg messages/query, "
            f"delta = {DELTA}, n = {n})"
        ),
        columns=("radius_over_delta", "elink", "hierarchical", "spanning_forest", "tag"),
    )
    rng = np.random.default_rng(seed)
    for fraction in RADIUS_FRACTIONS:
        radius = fraction * DELTA
        costs = {name: [] for name in engines}
        for _ in range(num_queries):
            initiator = nodes[int(rng.integers(len(nodes)))]
            q = features[nodes[int(rng.integers(len(nodes)))]]
            truth = brute_force_range(features, metric, q, radius)
            for name, engine in engines.items():
                out = engine.query(q, radius, initiator)
                if out.matches != truth:
                    raise AssertionError(f"{name} returned a wrong answer set")
                costs[name].append(out.messages)
        table.add_row(
            radius_over_delta=fraction,
            tag=tag.per_query_cost(),
            **{name: float(np.mean(values)) for name, values in costs.items()},
        )
    table.notes.append(
        "uncorrelated features leave many small clusters, so pruning gains shrink "
        "relative to Fig 14 — the figure's point"
    )
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Optimality gap — the heuristics against the exact optimum (Theorem 1).

δ-clustering is NP-complete, so all the algorithms in the paper are
heuristics; on small random instances the branch-and-bound solver of
:mod:`repro.core.hardness` gives the true optimum, letting us measure how
far each heuristic lands from it (in number of clusters, averaged over
instances).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import ELinkConfig, run_elink
from repro.core.hardness import optimal_delta_clustering
from repro.experiments.common import ExperimentTable, check_profile
from repro.features import EuclideanMetric
from repro.geometry import random_geometric_topology

DELTA = 1.0


def run(profile: str = "full", seed: int = 0) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        sizes, instances = (8, 10, 12), 8
    else:
        sizes, instances = (6, 8), 3

    metric = EuclideanMetric()
    table = ExperimentTable(
        name="optimality_gap",
        title=(
            "Optimality gap vs exact branch-and-bound "
            f"(delta = {DELTA}, avg clusters over random instances)"
        ),
        columns=("n", "optimal", "elink", "hierarchical", "spanning_forest"),
    )
    rng = np.random.default_rng(seed)
    for n in sizes:
        sums = {"optimal": 0.0, "elink": 0.0, "hierarchical": 0.0, "spanning_forest": 0.0}
        for instance in range(instances):
            topology = random_geometric_topology(n, seed=seed * 1000 + n * 17 + instance)
            features = {v: rng.normal(size=1) for v in topology.graph.nodes}
            optimal = optimal_delta_clustering(topology.graph, features, metric, DELTA)
            sums["optimal"] += len(optimal)
            sums["elink"] += run_elink(
                topology, features, metric, ELinkConfig(delta=DELTA)
            ).num_clusters
            sums["hierarchical"] += run_hierarchical(
                topology.graph, features, metric, DELTA
            ).num_clusters
            sums["spanning_forest"] += run_spanning_forest(
                topology, features, metric, DELTA
            ).num_clusters
        table.add_row(n=n, **{k: v / instances for k, v in sums.items()})
    table.notes.append("every heuristic count is >= the optimal count by construction")
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 14 — range-query cost on the Tao data.

Builds the M-tree index and leader backbone on top of each clustering
algorithm's output and measures the average per-query message cost as the
query radius sweeps (0.7δ, 0.9δ), with query features sampled uniformly
from the nodes (paper §8.6).  TAG's fixed distribute-and-collect cost is
the flat reference line.

Expected shape: on this spatially-correlated data the clustered engines
prune most clusters via δ-compactness, sitting several times below TAG;
the advantage narrows as the radius grows and pruning weakens.

Decomposed into one **trial per radius fraction**.  The monolithic loop
consumed one RNG sequentially across fractions, so ``trial_specs``
pre-draws every fraction's (initiator, query) index pairs in that exact
order and embeds them in the specs — trials are then independent while
the table stays byte-identical to the serial sweep.  The fitted dataset
and the three query engines live in the per-process memo.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import Clustering, ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.datasets.tao import TAO_COLS, TAO_ROWS
from repro.experiments.common import ExperimentTable, check_profile
from repro.index import build_backbone, build_mtree
from repro.perf import process_memo
from repro.queries import RangeQueryEngine, TagEngine, brute_force_range

DELTA = 0.08
RADIUS_FRACTIONS = (0.7, 0.75, 0.8, 0.85, 0.9)


def _engine(graph, clustering: Clustering, features, metric) -> RangeQueryEngine:
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(graph, clustering)
    return RangeQueryEngine(clustering, features, metric, mtree, backbone)


def _num_queries(profile: str) -> int:
    return 200 if profile == "full" else 30


def _context(profile: str, seed: int) -> dict[str, Any]:
    """(nodes, features, metric, engines, tag), shared per process."""

    def build() -> dict[str, Any]:
        if profile == "full":
            dataset = generate_tao_dataset(seed=seed)
        else:
            dataset = generate_tao_dataset(
                seed=seed, samples_per_day=24, training_days=8, stream_days=2
            )
        _, features = fit_features(dataset)
        metric = dataset.metric()
        topology = dataset.topology
        graph = topology.graph
        engines = {
            "elink": _engine(
                graph,
                run_elink(topology, features, metric, ELinkConfig(delta=DELTA)).clustering,
                features,
                metric,
            ),
            "hierarchical": _engine(
                graph,
                run_hierarchical(graph, features, metric, DELTA).clustering,
                features,
                metric,
            ),
            "spanning_forest": _engine(
                graph,
                run_spanning_forest(topology, features, metric, DELTA).clustering,
                features,
                metric,
            ),
        }
        return {
            "nodes": list(graph.nodes),
            "features": features,
            "metric": metric,
            "engines": engines,
            "tag": TagEngine(graph, features, metric),
        }

    return process_memo(("fig14", profile, seed), build)


def trial_specs(profile: str, seed: int = 7) -> list[dict[str, Any]]:
    """One picklable spec per radius fraction, query draws embedded."""
    check_profile(profile)
    num_queries = _num_queries(profile)
    num_nodes = TAO_ROWS * TAO_COLS
    rng = np.random.default_rng(seed)
    specs = []
    for fraction in RADIUS_FRACTIONS:
        pairs = [
            (int(rng.integers(num_nodes)), int(rng.integers(num_nodes)))
            for _ in range(num_queries)
        ]
        specs.append({"fraction": fraction, "pairs": pairs, "seed": seed})
    return specs


def run_trial(spec: dict[str, Any], profile: str) -> dict[str, Any]:
    """All engines over one radius fraction; returns the table row."""
    context = _context(profile, spec["seed"])
    nodes = context["nodes"]
    features = context["features"]
    metric = context["metric"]
    engines = context["engines"]
    radius = spec["fraction"] * DELTA
    costs: dict[str, list[int]] = {name: [] for name in engines}
    for initiator_index, query_index in spec["pairs"]:
        initiator = nodes[initiator_index]
        q = features[nodes[query_index]]
        truth = brute_force_range(features, metric, q, radius)
        for name, engine in engines.items():
            out = engine.query(q, radius, initiator)
            if out.matches != truth:
                raise AssertionError(f"{name} returned a wrong answer set")
            costs[name].append(out.messages)
    return {
        "radius_over_delta": spec["fraction"],
        "tag": context["tag"].per_query_cost(),
        **{name: float(np.mean(values)) for name, values in costs.items()},
    }


def combine_trials(
    results: list[dict[str, Any]], profile: str, seed: int = 7
) -> ExperimentTable:
    """Assemble per-fraction rows (spec order) into the printable table."""
    check_profile(profile)
    table = ExperimentTable(
        name="fig14",
        title=(
            f"Fig 14: range query cost on Tao data (avg messages/query, delta = {DELTA})"
        ),
        columns=("radius_over_delta", "elink", "hierarchical", "spanning_forest", "tag"),
    )
    for row in results:
        table.add_row(**row)
    table.notes.append("query features sampled uniformly from node features (section 8.6)")
    return table


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    specs = trial_specs(profile, seed)
    results = [run_trial(spec, profile) for spec in specs]
    return combine_trials(results, profile, seed)


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

"""Figure 14 — range-query cost on the Tao data.

Builds the M-tree index and leader backbone on top of each clustering
algorithm's output and measures the average per-query message cost as the
query radius sweeps (0.7δ, 0.9δ), with query features sampled uniformly
from the nodes (paper §8.6).  TAG's fixed distribute-and-collect cost is
the flat reference line.

Expected shape: on this spatially-correlated data the clustered engines
prune most clusters via δ-compactness, sitting several times below TAG;
the advantage narrows as the radius grows and pruning weakens.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import run_hierarchical, run_spanning_forest
from repro.core import Clustering, ELinkConfig, run_elink
from repro.datasets import fit_features, generate_tao_dataset
from repro.experiments.common import ExperimentTable, check_profile
from repro.index import build_backbone, build_mtree
from repro.queries import RangeQueryEngine, TagEngine, brute_force_range

DELTA = 0.08
RADIUS_FRACTIONS = (0.7, 0.75, 0.8, 0.85, 0.9)


def _engine(graph, clustering: Clustering, features, metric) -> RangeQueryEngine:
    mtree = build_mtree(clustering, features, metric)
    backbone = build_backbone(graph, clustering)
    return RangeQueryEngine(clustering, features, metric, mtree, backbone)


def run(profile: str = "full", seed: int = 7) -> ExperimentTable:
    """Run the experiment; returns the printable table (see module docstring)."""
    check_profile(profile)
    if profile == "full":
        dataset = generate_tao_dataset(seed=seed)
        num_queries = 200
    else:
        dataset = generate_tao_dataset(
            seed=seed, samples_per_day=24, training_days=8, stream_days=2
        )
        num_queries = 30
    _, features = fit_features(dataset)
    metric = dataset.metric()
    topology = dataset.topology
    graph = topology.graph
    nodes = list(graph.nodes)

    engines = {
        "elink": _engine(
            graph,
            run_elink(topology, features, metric, ELinkConfig(delta=DELTA)).clustering,
            features,
            metric,
        ),
        "hierarchical": _engine(
            graph,
            run_hierarchical(graph, features, metric, DELTA).clustering,
            features,
            metric,
        ),
        "spanning_forest": _engine(
            graph,
            run_spanning_forest(topology, features, metric, DELTA).clustering,
            features,
            metric,
        ),
    }
    tag = TagEngine(graph, features, metric)

    table = ExperimentTable(
        name="fig14",
        title=(
            f"Fig 14: range query cost on Tao data (avg messages/query, delta = {DELTA})"
        ),
        columns=("radius_over_delta", "elink", "hierarchical", "spanning_forest", "tag"),
    )
    rng = np.random.default_rng(seed)
    for fraction in RADIUS_FRACTIONS:
        radius = fraction * DELTA
        costs = {name: [] for name in engines}
        for _ in range(num_queries):
            initiator = nodes[int(rng.integers(len(nodes)))]
            q = features[nodes[int(rng.integers(len(nodes)))]]
            truth = brute_force_range(features, metric, q, radius)
            for name, engine in engines.items():
                out = engine.query(q, radius, initiator)
                if out.matches != truth:
                    raise AssertionError(f"{name} returned a wrong answer set")
                costs[name].append(out.messages)
        table.add_row(
            radius_over_delta=fraction,
            tag=tag.per_query_cost(),
            **{name: float(np.mean(values)) for name, values in costs.items()},
        )
    table.notes.append("query features sampled uniformly from node features (section 8.6)")
    return table


def main() -> None:
    """Command-line entry point."""
    run().print()


if __name__ == "__main__":
    main()

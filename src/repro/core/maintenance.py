"""Dynamic cluster maintenance with slack (paper §6).

After clustering, features keep evolving as new measurements arrive.  A
slack parameter Δ trades clustering quality for communication: the initial
clustering is built with an effective threshold ``δ - 2Δ``, which buys each
node a Δ budget of silent local drift.

On a feature update ``F_i -> F'_i`` a node checks (paper conditions):

- **A1**: ``d(F_i, F'_i) <= Δ``
- **A2**: ``d(F'_i, F_ri) - d(F_i, F_ri) <= Δ``
- **A3**: ``d(F'_i, F_ri) <= δ - Δ``

If *any* holds, no message is sent.  Only when all three fail does the node
walk the cluster tree to the root, fetch the fresh root feature, and
re-evaluate ``d(F'_i, F'_ri) <= δ``; on violation it detaches and either
merges with a neighbouring cluster (if within δ of that cluster's root
feature) or becomes a singleton.  The root itself silently absorbs drift up
to Δ, beyond which it floods the new root feature down the cluster tree and
every member re-decides its membership.

Communication is charged exactly as the protocol would send it: tree-path
hops × values carried.  Because A1/A2 compare against the *previous*
feature (as the paper states), slow drift can silently accumulate — this is
precisely the quality-for-communication trade the slack is designed to
make, and the experiments measure it (Figs 10–11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro._validation import require_non_negative, require_positive
from repro.core.delta import Clustering, clustering_from_assignment
from repro.features.metrics import Metric
from repro.sim.messages import _DEFAULT_CATEGORIES, CATEGORY_DATA, Message
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class UpdateOutcome:
    """What one feature update caused."""

    kind: str  # "silent" | "revalidated" | "merged" | "singleton" | "root_broadcast"
    messages: int  # values x hops charged for this update

    @property
    def was_silent(self) -> bool:
        """True when the update cost no messages."""
        return self.kind == "silent"


class MaintenanceSession:
    """Mutable cluster state absorbing a stream of feature updates.

    Parameters
    ----------
    graph:
        The communication graph (for neighbour lookup and tree repair).
    clustering:
        The initial δ-clustering (built with threshold ``delta - 2*slack``).
    features:
        Current feature per node (copied; the session owns its state).
    metric, delta, slack:
        The metric, the full δ, and the slack Δ (``2*slack < delta``).
    """

    def __init__(
        self,
        graph: nx.Graph,
        clustering: Clustering,
        features: Mapping[Hashable, np.ndarray],
        metric: Metric,
        delta: float,
        slack: float,
    ):
        require_positive(delta, "delta")
        require_non_negative(slack, "slack")
        if 2 * slack >= delta:
            raise ValueError(f"need 2*slack < delta, got slack={slack}, delta={delta}")
        self.graph = graph
        self.metric = metric
        self.delta = delta
        self.slack = slack
        self.stats = MessageStats()
        #: Structure generation: bumped whenever cluster membership or a
        #: propagated root feature changes (detach/merge/singleton, root
        #: broadcast, node removal).  Silent drift within the slack does
        #: NOT bump it — that is the bounded-staleness window cached query
        #: answers are allowed to span (see repro.queries.result_cache).
        self.generation = 0

        self.features: dict[Hashable, np.ndarray] = {
            node: np.asarray(f, dtype=np.float64).copy() for node, f in features.items()
        }
        self.assignment: dict[Hashable, Hashable] = dict(clustering.assignment)
        self.parent: dict[Hashable, Hashable] = dict(clustering.parent)
        self.root_features: dict[Hashable, np.ndarray] = {
            root: np.asarray(f, dtype=np.float64).copy()
            for root, f in clustering.root_features.items()
        }
        # Each node's stored copy of its root feature (set at clustering time,
        # refreshed by revalidation fetches and root broadcasts).
        self.stored_root: dict[Hashable, np.ndarray] = {
            node: self.root_features[root].copy() for node, root in self.assignment.items()
        }
        # Root anchors: the root feature value last propagated.
        self._root_anchor: dict[Hashable, np.ndarray] = {
            root: f.copy() for root, f in self.root_features.items()
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def update_feature(self, node: Hashable, new_feature: np.ndarray) -> UpdateOutcome:
        """Absorb one feature update at *node*; returns what it cost."""
        new = np.asarray(new_feature, dtype=np.float64)
        before = self.stats.total_values
        if self.assignment[node] == node:
            kind = self._update_root(node, new)
        else:
            kind = self._update_member(node, new)
        return UpdateOutcome(kind, self.stats.total_values - before)

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return len(self.root_features)

    def current_clustering(self) -> Clustering:
        """Materialize the current state as a (connectivity-repaired) Clustering."""
        return clustering_from_assignment(
            self.graph,
            self.assignment,
            self.features,
            root_features=self.root_features,
        )

    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.stats.total_values

    # ------------------------------------------------------------------
    # member update path (conditions A1-A3)
    # ------------------------------------------------------------------
    def _update_member(self, node: Hashable, new: np.ndarray) -> str:
        previous = self.features[node]
        root_feature = self.stored_root[node]
        dim = new.shape[0]
        metric = self.metric
        self.features[node] = new.copy()

        # Conditions A1-A3 are OR-ed, so evaluate lazily: each distance is a
        # pure function of fixed inputs, and most updates satisfy A1 or A3
        # without ever needing the remaining distances.
        if metric.distance(previous, new) <= self.slack:  # A1
            return "silent"
        d_new_root = metric.distance(new, root_feature)
        if d_new_root <= self.delta - self.slack:  # A3
            return "silent"
        if (d_new_root - metric.distance(previous, root_feature)) <= self.slack:  # A2
            return "silent"

        # All conditions violated: fetch the fresh root feature over the
        # cluster tree (request up: 1 value/hop; reply down: dim values/hop).
        root = self.assignment[node]
        hops = self._tree_hops(node)
        self._charge("update", 1, hops)
        self._charge("update", dim, hops)
        fresh_root_feature = self.root_features[root]
        self.stored_root[node] = fresh_root_feature.copy()
        if self.metric.distance(new, fresh_root_feature) <= self.delta:
            return "revalidated"
        return self._detach(node)

    # ------------------------------------------------------------------
    # root update path
    # ------------------------------------------------------------------
    def _update_root(self, root: Hashable, new: np.ndarray) -> str:
        anchor = self._root_anchor[root]
        self.features[root] = new.copy()
        if self.metric.distance(anchor, new) <= self.slack:
            return "silent"
        # Root drifted beyond the slack: flood the new root feature down the
        # cluster tree (dim values per tree edge) and let members re-decide.
        # The propagated pruning feature changes, so cached query answers
        # keyed against the old structure are no longer servable.
        self.generation += 1
        members = [n for n, r in self.assignment.items() if r == root and n != root]
        dim = new.shape[0]
        if members:
            self._charge("update", dim, len(members))  # one tree edge per member
        self.root_features[root] = new.copy()
        self._root_anchor[root] = new.copy()
        self.stored_root[root] = new.copy()
        for member in members:
            self.stored_root[member] = new.copy()
        for member in members:
            if self.metric.distance(self.features[member], new) > self.delta:
                self._detach(member)
        return "root_broadcast"

    def remove_node(self, node: Hashable) -> None:
        """Fail-stop removal: drop *node* and repair its cluster.

        A dead member's cluster tree is re-hung around the gap; a dead
        cluster representative's survivors re-elect — each surviving
        component promotes the member closest to the dead root's feature,
        which stays the pruning feature, so the δ/2 membership guarantee
        survives the crash (same rule as
        :func:`~repro.core.delta.clustering_from_assignment`).  Repair
        control traffic is charged like any other update handling.
        """
        if node not in self.assignment:
            return
        self.generation += 1
        root = self.assignment.pop(node)
        self.parent.pop(node, None)
        self.features.pop(node, None)
        self.stored_root.pop(node, None)
        if root == node:
            members = {n for n, r in self.assignment.items() if r == node}
            base_feature = self.root_features.pop(node)
            self._root_anchor.pop(node, None)
            if members:
                self._promote_components(members, base_feature)
        else:
            self._repair_tree(root)

    # ------------------------------------------------------------------
    # detach / merge
    # ------------------------------------------------------------------
    def _detach(self, node: Hashable) -> str:
        self.generation += 1  # membership is about to change either way
        old_root = self.assignment[node]
        # Ask each neighbour for its cluster root feature (1 value out,
        # dim values back per neighbour), then join the best fit within δ.
        best: Hashable | None = None
        best_distance = float("inf")
        feature = self.features[node]
        dim = feature.shape[0]
        for neighbor in self.graph.neighbors(node):
            neighbor_root = self.assignment[neighbor]
            if neighbor_root == old_root:
                continue
            self._charge("update", 1, 1)
            self._charge("update", dim, 1)
            distance = self.metric.distance(feature, self.root_features[neighbor_root])
            if distance <= self.delta and distance < best_distance:
                best, best_distance = neighbor, distance

        if best is not None:
            new_root = self.assignment[best]
            self.assignment[node] = new_root
            self.parent[node] = best
            self.stored_root[node] = self.root_features[new_root].copy()
            self._charge("update", 1, 1)  # join confirmation
            kind = "merged"
        else:
            self.assignment[node] = node
            self.parent[node] = node
            self.root_features[node] = feature.copy()
            self._root_anchor[node] = feature.copy()
            self.stored_root[node] = feature.copy()
            kind = "singleton"
        self._repair_tree(old_root)
        return kind

    def _repair_tree(self, root: Hashable) -> None:
        """Re-hang the old cluster's tree after a member left.

        Members whose tree path broke get new parents (one control message
        each); components cut off from the root detach into singleton-rooted
        clusters keeping the old pruning feature (same rule as
        :func:`clustering_from_assignment`).
        """
        members = [n for n, r in self.assignment.items() if r == root]
        if not members:
            self.root_features.pop(root, None)
            self._root_anchor.pop(root, None)
            return
        if root not in self.assignment or self.assignment[root] != root:
            # The root itself left earlier; promote the stray members below.
            members_set = set(members)
            base_feature = self.root_features.pop(root)
            self._root_anchor.pop(root, None)
            self._promote_components(members_set, base_feature)
            return
        member_set = set(members)
        # Keep every intact parent chain; only members whose chain broke
        # (their old parent left the cluster) need a new parent.
        intact: set[Hashable] = {root}
        for member in member_set:
            path = [member]
            current = member
            ok = False
            while True:
                if current in intact:
                    ok = True
                    break
                par = self.parent.get(current)
                if (
                    par is None
                    or par == current
                    or par not in member_set
                    or not self.graph.has_edge(current, par)
                    or par in path
                ):
                    break
                current = par
                path.append(current)
            if ok:
                intact.update(path)
        broken = member_set - intact
        # Re-hang broken members onto the intact part, breadth-first (one
        # control message per re-parented node).
        attached = set(intact)
        progress = True
        while broken and progress:
            progress = False
            for member in sorted(broken, key=repr):
                anchor = next(
                    (nb for nb in self.graph.neighbors(member) if nb in attached),
                    None,
                )
                if anchor is not None:
                    self.parent[member] = anchor
                    self._charge("update", 1, 1)
                    attached.add(member)
                    broken.discard(member)
                    progress = True
        if broken:
            self._promote_components(broken, self.root_features[root])

    def _promote_components(self, nodes: set[Hashable], base_feature: np.ndarray) -> None:
        sub = self.graph.subgraph(nodes)
        for component in nx.connected_components(sub):
            comp = set(component)
            new_root = min(
                comp,
                key=lambda v: (
                    self.metric.distance(self.features[v], base_feature),
                    repr(v),
                ),
            )
            self.root_features[new_root] = base_feature.copy()
            self._root_anchor[new_root] = self.features[new_root].copy()
            tree_parent = {new_root: new_root}
            for child, par in nx.bfs_predecessors(sub.subgraph(comp), new_root):
                tree_parent[child] = par
            for member in comp:
                self.assignment[member] = new_root
                self.parent[member] = tree_parent[member]
                self.stored_root[member] = base_feature.copy()
                self._charge("update", 1, 1)

    # ------------------------------------------------------------------
    # checkpointing (used by the live serving layer, repro.serve)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete session state as plain dicts/arrays, for checkpointing.

        Round-trips exactly through :meth:`from_state`: a restored session
        absorbs the same future update stream into the same final state,
        which is what the serve layer's kill-and-resume equivalence check
        relies on.  The communication graph and metric are *not* part of
        the state — the restorer supplies them (they are derivable from
        the service configuration).
        """
        return {
            "delta": self.delta,
            "slack": self.slack,
            "generation": self.generation,
            "features": {n: f.copy() for n, f in self.features.items()},
            "assignment": dict(self.assignment),
            "parent": dict(self.parent),
            "root_features": {r: f.copy() for r, f in self.root_features.items()},
            "stored_root": {n: f.copy() for n, f in self.stored_root.items()},
            "root_anchor": {r: f.copy() for r, f in self._root_anchor.items()},
            "values_by_kind": dict(self.stats.values_by_kind),
            "packets_by_kind": dict(self.stats.packets_by_kind),
            "values_by_category": dict(self.stats.values_by_category),
            "packets_by_category": dict(self.stats.packets_by_category),
        }

    @classmethod
    def from_state(cls, graph: nx.Graph, metric: Metric, state: dict) -> "MaintenanceSession":
        """Reconstruct a session from a :meth:`state_dict` snapshot."""
        session = cls.__new__(cls)
        session.graph = graph
        session.metric = metric
        session.delta = float(state["delta"])
        session.slack = float(state["slack"])
        session.generation = int(state.get("generation", 0))
        session.stats = MessageStats()
        session.stats.packets_by_kind.update(state["packets_by_kind"])
        session.stats.values_by_kind.update(state["values_by_kind"])
        session.stats.packets_by_category.update(state["packets_by_category"])
        session.stats.values_by_category.update(state["values_by_category"])
        session.stats._total_packets = sum(session.stats.packets_by_kind.values())
        session.stats._total_values = sum(session.stats.values_by_kind.values())
        session.features = {
            n: np.asarray(f, dtype=np.float64).copy() for n, f in state["features"].items()
        }
        session.assignment = dict(state["assignment"])
        session.parent = dict(state["parent"])
        session.root_features = {
            r: np.asarray(f, dtype=np.float64).copy()
            for r, f in state["root_features"].items()
        }
        session.stored_root = {
            n: np.asarray(f, dtype=np.float64).copy()
            for n, f in state["stored_root"].items()
        }
        session._root_anchor = {
            r: np.asarray(f, dtype=np.float64).copy()
            for r, f in state["root_anchor"].items()
        }
        return session

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _tree_hops(self, node: Hashable) -> int:
        hops, current = 0, node
        seen = {node}
        while self.parent[current] != current:
            current = self.parent[current]
            hops += 1
            if current in seen:
                raise RuntimeError(f"cluster-tree cycle at {current!r}")
            seen.add(current)
        return max(hops, 1)

    def _charge(self, kind: str, values: int, hops: int) -> None:
        if hops > 0:
            self.stats.charge(kind, _DEFAULT_CATEGORIES.get(kind, CATEGORY_DATA), values, hops)


class CentralizedUpdateBaseline:
    """The centralized update-handling baseline (paper §8.3, §8.5).

    Every node ships its model coefficients to the base station whenever
    they drift more than Δ from the last value shipped.  Without a locally
    stored root feature the base-station scheme cannot prune with A2/A3 —
    the asymmetry behind ELink's ~10× advantage in Fig 10.

    ``raw`` mode ships *every* measurement (one value per hop), the
    paper's worst-case baseline in Fig 12.
    """

    def __init__(
        self,
        graph: nx.Graph,
        features: Mapping[Hashable, np.ndarray],
        base_station: Hashable,
        slack: float,
        *,
        raw: bool = False,
    ):
        require_non_negative(slack, "slack")
        if base_station not in graph:
            raise KeyError(f"base station {base_station!r} not in graph")
        self.graph = graph
        self.base_station = base_station
        self.slack = slack
        self.raw = raw
        self.stats = MessageStats()
        self._last_sent = {
            node: np.asarray(f, dtype=np.float64).copy() for node, f in features.items()
        }
        self._hops = nx.single_source_shortest_path_length(graph, base_station)

    def update_feature(self, node: Hashable, new_feature: np.ndarray) -> UpdateOutcome:
        """Absorb one coefficient update; ship to base if beyond the slack."""
        new = np.asarray(new_feature, dtype=np.float64)
        before = self.stats.total_values
        diff = new - self._last_sent[node]
        # sqrt(dot) is bitwise identical to np.linalg.norm for 1-d float64
        # and skips the norm wrapper on this per-update hot path.
        drift = math.sqrt(np.dot(diff, diff))
        if drift > self.slack:
            hops = max(self._hops[node], 1)
            self.stats.record(
                Message("update", node, self.base_station, values=int(new.shape[0])),
                hops=hops,
            )
            self._last_sent[node] = new.copy()
            return UpdateOutcome("shipped", self.stats.total_values - before)
        return UpdateOutcome("silent", 0)

    def observe_raw(self, node: Hashable) -> int:
        """Charge one raw measurement shipped to the base station (Fig 12)."""
        hops = max(self._hops[node], 1)
        self.stats.record(Message("raw", node, self.base_station, values=1), hops=hops)
        return hops

    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.stats.total_values

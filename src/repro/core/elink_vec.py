"""Vectorised ELink protocol rounds (DESIGN.md §8.2).

The handler engine in :mod:`repro.core.elink` runs one Python method per
delivered message.  On the jitter-free, loss-free, untraced fast path that
is pure overhead: every ``expand`` copy in a broadcast cohort is charged
the same way, filtered by the same δ/2 distance test, and — for the vast
majority of copies — discarded.  This module processes an entire
same-timestamp cohort as numpy operations over per-round arrays and runs
per-node Python only for the *eligible* residue (joins, switches, and the
explicit-mode ack/phase bookkeeping).

Correctness strategy — exact event-order mirroring, not approximation.
Every logical kernel push the handler engine would make is mirrored
one-for-one on the same kernel (via ``post_at``) at the same float
timestamp:

- ``expand`` broadcasts become *batch* entries: one kernel event carrying
  the cohort's broadcaster rows.  A new broadcast merges into an existing
  batch only while that batch is still the **tail entry at its
  timestamp** (nothing else was pushed to that time since), which keeps
  the global ``(time, seq)`` sequence identical to the serial engines —
  the same sealing argument the array engine's delivery cohorts use.
- ``ack1``/``ack2``/``phase1``/``phase2``/``start`` deliveries and
  episode leaf timers stay individual kernel entries, one per serial
  push, so no commutativity argument is ever needed for them.

Within a batch, eligible rows are processed in row order — exactly the
order the per-message engines would deliver them — reading and mutating
the same protocol state (arrays instead of ``ELinkNode`` attributes).
Distances are computed vectorised; for 1-d features ``EuclideanMetric``
is an elementwise ``abs(a - b)``, bit-identical to the scalar path.

Legality gate (:func:`try_run_vectorized` returns ``None`` and the caller
falls back to the handler engine): implicit or explicit signalling only,
no failure detection, no fault injector, no tracer (a tracer needs
per-message events — traced "vectorized" runs *are* handler runs), no
jitter/loss/energy model, an unmutated network with no dead nodes, plain
Euclidean 1-d features, and an idle kernel.  ``ELinkConfig.vectorized``
selects the path explicitly; when left ``None`` the batch path engages on
the array engine (``REPRO_ENGINE=array``) and stays off elsewhere.

Certification: the engine-equivalence suite diffs clusterings, parents,
``MessageStats`` and timing against the handler engines; traced runs take
the handler path by construction, so trace byte-identity is the identity
of that fallback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping

import numpy as np

from repro.core.delta import clustering_from_assignment
from repro.features.metrics import EuclideanMetric, Metric
from repro.geometry.quadtree import QuadTreeDecomposition
from repro.geometry.topology import Topology
from repro.sim.engine import ArrayNetwork
from repro.sim.messages import CATEGORY_CLUSTERING, CATEGORY_SYNC
from repro.sim.network import Network
from repro.sim.stats import MessageStats

if TYPE_CHECKING:
    from repro.core.elink import ELinkConfig, ELinkResult

__all__ = ["try_run_vectorized"]

#: Tail marker for scalar (non-batch) pushes: blocks expand-row merging at
#: that timestamp without carrying any state.
_OPAQUE = object()


class _ExpandBatch:
    """One kernel entry's worth of pending ``expand`` broadcasts.

    Columns are parallel per-*broadcaster* rows; the fire expands them to
    per-delivery arrays through the CSR adjacency.  ``eps`` carries the
    broadcaster's episode row (explicit mode; ``-1`` implicit) so acks
    target episode rows directly instead of ``(node, seq)`` lookups.
    """

    __slots__ = ("srcs", "vals", "roots", "ms", "eps")

    def __init__(self):
        self.srcs: list[int] = []
        self.vals: list[float] = []
        self.roots: list[int] = []
        self.ms: list[int] = []
        self.eps: list[int] = []


def _eligible(config: "ELinkConfig", network: Network, metric: Metric) -> bool:
    """Static legality of the batch path (feature shapes checked later)."""
    if config.vectorized is False:
        return False
    if config.vectorized is None and not isinstance(network, ArrayNetwork):
        return False
    return (
        config.signalling in ("implicit", "explicit")
        and not config.failure_detection
        and type(network) in (Network, ArrayNetwork)
        and network._fast
        and network.energy is None
        and network._tracer is None
        and not network._mutated
        and not network.dead_nodes
        and network.kernel.pending == 0
        and type(metric) is EuclideanMetric
    )


def try_run_vectorized(
    topology: Topology,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    config: "ELinkConfig",
    *,
    quadtree: QuadTreeDecomposition,
    network: Network,
    start_stats: MessageStats,
) -> "ELinkResult | None":
    """Run the batch engine if the scenario is eligible, else ``None``.

    Called by :func:`repro.core.elink.run_elink` after network/tracer/
    verifier setup; a ``None`` return means the caller proceeds down the
    per-message handler path with nothing consumed or mutated.
    """
    if not _eligible(config, network, metric):
        return None
    n = topology.num_nodes
    if n == 0:
        return None
    run = _VectorRun(topology, features, config, quadtree, network)
    if not run.load_features():
        return None  # non-1-d features: the scalar metric path owns those
    return run.run(metric, start_stats)


class _VectorRun:
    """State and event processors for one vectorised ELink run."""

    def __init__(
        self,
        topology: Topology,
        features: Mapping[Hashable, np.ndarray],
        config: "ELinkConfig",
        quadtree: QuadTreeDecomposition,
        network: Network,
    ):
        self.topology = topology
        self.features = features
        self.config = config
        self.quadtree = quadtree
        self.network = network
        self.kernel = network.kernel
        self.stats = network.stats
        self.hd = network.hop_delay
        self.explicit = config.signalling == "explicit"

        graph = topology.graph
        nodes = getattr(network, "_node_list", None)
        if nodes is None:
            nodes = list(graph.nodes)
            index = {v: i for i, v in enumerate(nodes)}
            indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
            indices = np.empty(2 * graph.number_of_edges(), dtype=np.int64)
            pos = 0
            for i, (_, nbrs) in enumerate(graph.adj.items()):
                for w in nbrs:
                    indices[pos] = index[w]
                    pos += 1
                indptr[i + 1] = pos
        else:
            index = network._node_index
            indptr = network._indptr
            indices = network._indices
        self.nodes = nodes
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.n = len(nodes)

        lvl_of = quadtree.level_of
        self.level = [lvl_of[v] for v in nodes]
        self.max_level = quadtree.depth

        # Fig 16 state, struct-of-arrays (Python lists: the residue loop is
        # scalar and list indexing beats numpy scalar boxing there).
        self.clustered = bytearray(self.n)
        self.is_root = bytearray(self.n)
        self.root_idx = [-1] * self.n
        self.root_val = [0.0] * self.n
        self.m_level = [-1] * self.n
        self.parent_idx = [-1] * self.n
        self.switches = [0] * self.n
        self.clustered_at: list[float | None] = [None] * self.n

        # Calendar: timestamp -> tail entry (an _ExpandBatch accepts row
        # appends only while it is still the tail at its own timestamp).
        self._tails: dict[float, object] = {}

        if self.explicit:
            # Episode table (struct-of-arrays rows; ``parent_ep`` is a row
            # index in this table, matching the serial payload chain).
            self.ep_children: list[int] = []
            self.ep_timeout = bytearray()
            self.ep_completed = bytearray()
            self.ep_parent: list[int] = []
            self.ep_parent_ep: list[int] = []
            self.ep_owner: list[int] = []
            self.phase1_sent = bytearray(self.n)
            self.phase1_received: dict[tuple[int, int], int] = {}
            self.protocol_done: list[float] = []
            self.quad_parent_idx = [index[quadtree.quad_parent[v]] for v in nodes]
            self.quad_children_idx = [
                [index[c] for c in quadtree.quad_children.get(v, [])] for v in nodes
            ]
            # Subtree max levels, deepest level first (same recurrence and
            # iteration order as the handler runner).
            subtree_max: dict[Hashable, int] = {}
            order = sorted(lvl_of, key=lambda v: -lvl_of[v])
            for node in order:
                best = lvl_of[node]
                for child in quadtree.quad_children.get(node, []):
                    best = max(best, subtree_max[child])
                subtree_max[node] = best
            self.subtree_max = [subtree_max[v] for v in nodes]
            self.root_i = index[quadtree.root]

    def load_features(self) -> bool:
        """Build the feature column; False when any feature is not 1-d."""
        feats = np.empty(self.n, dtype=np.float64)
        arrays = []
        features = self.features
        for i, v in enumerate(self.nodes):
            a = np.asarray(features[v], dtype=np.float64)
            if a.shape != (1,):
                return False
            arrays.append(a)
            feats[i] = a[0]
        self.feats = feats
        self.feats_list = feats.tolist()
        self.feature_arrays = arrays
        return True

    # ------------------------------------------------------------------
    # calendar pushes (every serial kernel push mirrored 1:1)
    # ------------------------------------------------------------------
    def _push_expand(self, time: float, src: int, val: float, root: int, m: int, ep: int) -> None:
        tail = self._tails.get(time)
        if type(tail) is not _ExpandBatch:
            tail = _ExpandBatch()
            self.kernel.post_at(time, self._fire_expand, time, tail)
            self._tails[time] = tail
        tail.srcs.append(src)
        tail.vals.append(val)
        tail.roots.append(root)
        tail.ms.append(m)
        tail.eps.append(ep)

    def _push_scalar(self, time: float, fire, *args) -> None:
        self.kernel.post_at(time, fire, *args)
        self._tails[time] = _OPAQUE

    # ------------------------------------------------------------------
    # Fig 16: election / join (shared by both signalling modes)
    # ------------------------------------------------------------------
    def _elect(self, i: int) -> None:
        now = self.kernel.now
        self.clustered[i] = 1
        self.is_root[i] = 1
        self.root_idx[i] = i
        val = self.feats_list[i]
        self.root_val[i] = val
        m = self.level[i]
        self.m_level[i] = m
        self.parent_idx[i] = -1
        self.clustered_at[i] = now
        ep = self._open_episode(i, -1, -1) if self.explicit else -1
        self._push_expand(now + self.hd, i, val, i, m, ep)
        if self.explicit:
            self._push_scalar(
                now + self.config.ack_window * self.network.max_hop_delay,
                self._fire_timeout,
                ep,
            )

    def _join(self, i: int, via: int, val: float, root: int, m: int, parent_ep: int) -> None:
        now = self.kernel.now
        self.clustered[i] = 1
        self.root_idx[i] = root
        self.root_val[i] = val
        self.m_level[i] = m
        self.parent_idx[i] = via
        self.clustered_at[i] = now
        ep = self._open_episode(i, via, parent_ep) if self.explicit else -1
        # Serial _open_episode order: broadcast, then ack1, then leaf timer.
        self._push_expand(now + self.hd, i, val, root, m, ep)
        if self.explicit:
            self.stats.charge("ack1", CATEGORY_CLUSTERING, 1, 1)
            self._push_scalar(now + self.hd, self._fire_ack1, parent_ep, i)
            self._push_scalar(
                now + self.config.ack_window * self.network.max_hop_delay,
                self._fire_timeout,
                ep,
            )

    def _open_episode(self, owner: int, parent: int, parent_ep: int) -> int:
        row = len(self.ep_children)
        self.ep_children.append(0)
        self.ep_timeout.append(0)
        self.ep_completed.append(0)
        self.ep_parent.append(parent)
        self.ep_parent_ep.append(parent_ep)
        self.ep_owner.append(owner)
        return row

    # ------------------------------------------------------------------
    # cohort processing: the hot path
    # ------------------------------------------------------------------
    def _fire_expand(self, time: float, batch: _ExpandBatch) -> None:
        if self._tails.get(time) is batch:
            del self._tails[time]
        indptr = self.indptr
        srcs = np.asarray(batch.srcs, dtype=np.int64)
        counts = indptr[srcs + 1] - indptr[srcs]
        cum = np.cumsum(counts)
        total = int(cum[-1]) if counts.size else 0
        if total == 0:
            return
        # One charge for the whole cohort: identical totals to one
        # single-hop record per copy (counters are additive ints).
        self.stats.charge_batch("expand", CATEGORY_CLUSTERING, 1, total)
        # CSR multi-range gather: per-delivery destination/row-origin.
        offsets = np.repeat(indptr[srcs] - (cum - counts), counts)
        dsts = self.indices[np.arange(total, dtype=np.int64) + offsets]
        origin = np.repeat(np.arange(srcs.size, dtype=np.int64), counts)
        dist = np.abs(np.asarray(batch.vals, dtype=np.float64)[origin] - self.feats[dsts])
        eligible = np.nonzero(dist <= self.config.delta / 2.0)[0]
        if eligible.size == 0:
            return
        e_dst = dsts[eligible].tolist()
        e_origin = origin[eligible].tolist()
        e_dist = dist[eligible].tolist()

        b_srcs = batch.srcs
        b_vals = batch.vals
        b_roots = batch.roots
        b_ms = batch.ms
        b_eps = batch.eps
        clustered = self.clustered
        is_root = self.is_root
        root_idx = self.root_idx
        root_val = self.root_val
        m_level = self.m_level
        switches = self.switches
        feats_list = self.feats_list
        max_switches = self.config.max_switches
        threshold = self.config.switch_threshold
        join = self._join

        # Residue: the handler decision chain, in exact delivery order.
        for k in range(len(e_dst)):
            d = e_dst[k]
            r = e_origin[k]
            if not clustered[d]:
                join(d, b_srcs[r], b_vals[r], b_roots[r], b_ms[r], b_eps[r])
                continue
            if b_roots[r] == root_idx[d]:
                continue
            if switches[d] >= max_switches:
                continue
            if is_root[d] or b_ms[r] != m_level[d]:
                continue
            if e_dist[k] + threshold >= abs(root_val[d] - feats_list[d]):
                continue
            switches[d] += 1
            join(d, b_srcs[r], b_vals[r], b_roots[r], b_ms[r], b_eps[r])

    # ------------------------------------------------------------------
    # start signals
    # ------------------------------------------------------------------
    def _fire_starts(self, level: int) -> None:
        """Implicit mode: one entry per sentinel level (the serial engine's
        per-sentinel timers fire back-to-back at the same instant)."""
        clustered = self.clustered
        index = self.index
        for sentinel in self.quadtree.sentinel_sets[level]:
            i = index[sentinel]
            if not clustered[i]:
                self._elect(i)

    def _start_elink(self, i: int) -> None:
        if not self.clustered[i]:
            self._elect(i)
        elif self.explicit and not self.phase1_sent[i]:
            self._send_phase1(i, self.level[i])

    def _fire_start(self, i: int) -> None:
        self.phase1_sent[i] = 0
        self._start_elink(i)

    # ------------------------------------------------------------------
    # explicit mode: episodes and quadtree synchronization
    # ------------------------------------------------------------------
    def _fire_ack1(self, ep: int, src: int) -> None:
        if self.ep_timeout[ep]:
            raise RuntimeError(
                f"node {self.nodes[self.ep_owner[ep]]!r}: ack1 arrived after leaf "
                f"timeout of episode {ep}; increase ack_window"
            )
        self.ep_children[ep] += 1

    def _fire_ack2(self, ep: int, src: int) -> None:
        if self.ep_children[ep] <= 0:
            raise RuntimeError(
                f"node {self.nodes[self.ep_owner[ep]]!r}: ack2 underflow on episode {ep}"
            )
        self.ep_children[ep] -= 1
        self._maybe_complete(ep)

    def _fire_timeout(self, ep: int) -> None:
        self.ep_timeout[ep] = 1
        self._maybe_complete(ep)

    def _maybe_complete(self, ep: int) -> None:
        if self.ep_completed[ep] or not self.ep_timeout[ep] or self.ep_children[ep] > 0:
            return
        self.ep_completed[ep] = 1
        parent = self.ep_parent[ep]
        if parent >= 0:
            self.stats.charge("ack2", CATEGORY_CLUSTERING, 1, 1)
            self._push_scalar(
                self.kernel.now + self.hd, self._fire_ack2, self.ep_parent_ep[ep], self.ep_owner[ep]
            )
        else:
            owner = self.ep_owner[ep]
            self._send_phase1(owner, self.level[owner])

    def _route(self, src: int, dst: int, kind: str, fire, *args) -> None:
        """Mirror ``Network.route`` on the fast path: shortest-path charge,
        one delivery push at ``hops × hop_delay`` (self-routes are free and
        land after one processing delay)."""
        path = self.network.shortest_path(self.nodes[src], self.nodes[dst])
        hops = len(path) - 1
        if hops == 0:
            self._push_scalar(self.kernel.now + self.hd, fire, *args)
            return
        self.stats.charge(kind, CATEGORY_SYNC, 1, hops)
        self._push_scalar(self.kernel.now + hops * self.hd, fire, *args)

    def _expected_phase1(self, i: int, round_level: int) -> int:
        subtree_max = self.subtree_max
        return sum(1 for c in self.quad_children_idx[i] if subtree_max[c] >= round_level)

    def _send_phase1(self, i: int, round_level: int) -> None:
        self.phase1_sent[i] = 1
        if self.level[i] == 0:
            self._round_complete(round_level)
        else:
            self._route(i, self.quad_parent_idx[i], "phase1", self._fire_phase1,
                        self.quad_parent_idx[i], round_level)

    def _fire_phase1(self, i: int, round_level: int) -> None:
        got = self.phase1_received.get((i, round_level), 0) + 1
        self.phase1_received[(i, round_level)] = got
        expected = self._expected_phase1(i, round_level)
        if got > expected:
            raise RuntimeError(
                f"node {self.nodes[i]!r}: too many phase1({round_level}) messages"
            )
        if got == expected:
            if self.level[i] == 0:
                self._round_complete(round_level)
            else:
                self._route(i, self.quad_parent_idx[i], "phase1", self._fire_phase1,
                            self.quad_parent_idx[i], round_level)

    def _round_complete(self, round_level: int) -> None:
        if round_level >= self.max_level:
            self.protocol_done.append(self.kernel.now)
            return
        self._act_on_phase2(self.root_i, round_level)

    def _act_on_phase2(self, i: int, round_level: int) -> None:
        if self.level[i] == round_level:
            for c in self.quad_children_idx[i]:
                self._route(i, c, "start", self._fire_start, c)
        else:
            subtree_max = self.subtree_max
            for c in self.quad_children_idx[i]:
                if subtree_max[c] >= round_level:
                    self._route(i, c, "phase2", self._fire_phase2, c, round_level)

    def _fire_phase2(self, i: int, round_level: int) -> None:
        self._act_on_phase2(i, round_level)

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self, metric: Metric, start_stats: MessageStats) -> "ELinkResult":
        from repro.core.elink import ELinkResult, compute_kappa, implicit_schedule

        config = self.config
        network = self.network
        kernel = self.kernel
        n = self.n
        depth = self.quadtree.depth

        if config.signalling == "implicit":
            starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
            now = kernel.now
            for level in range(len(self.quadtree.sentinel_sets)):
                time = now + max(starts[level] - now, 0.0)
                kernel.post_at(time, self._fire_starts, level)
                self._tails[time] = _OPAQUE
        else:
            time = kernel.now
            kernel.post_at(time, self._fire_start_root)
            self._tails[time] = _OPAQUE

        event_budget = 200 * n * (depth + 2) + 10_000
        network.run(max_events=event_budget)

        # Assembly: same construction (and dict orders) as the handler path.
        nodes = self.nodes
        clustered = self.clustered
        root_idx = self.root_idx
        parent_idx = self.parent_idx
        arrays = self.feature_arrays
        assignment = {
            v: (nodes[root_idx[i]] if clustered[i] else None) for i, v in enumerate(nodes)
        }
        parents = {
            v: (nodes[parent_idx[i]] if parent_idx[i] >= 0 else v) for i, v in enumerate(nodes)
        }
        root_feature_map = {v: arrays[i] for i, v in enumerate(nodes) if self.is_root[i]}
        feature_map = {v: arrays[i] for i, v in enumerate(nodes)}
        clustering = clustering_from_assignment(
            self.topology.graph,
            assignment,
            feature_map,
            root_features=root_feature_map,
            parents=parents,
        )
        repaired = clustering.num_clusters - len(set(assignment.values()))
        completion_time = max(
            (t for t in self.clustered_at if t is not None), default=0.0
        )
        if config.signalling == "implicit":
            kappa = compute_kappa(n, config.gamma, network.hop_delay)
            starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
            protocol_time = starts[-1] + kappa * (2.0 - 2.0 ** (-depth))
        else:
            protocol_time = self.protocol_done[0] if self.protocol_done else kernel.now
        return ELinkResult(
            clustering=clustering,
            stats=network.stats.diff(start_stats),
            completion_time=completion_time,
            protocol_time=protocol_time,
            total_switches=sum(self.switches),
            repaired_components=max(repaired, 0),
            config=config,
        )

    def _fire_start_root(self) -> None:
        """Explicit mode's single t=0 start timer on the quadtree root."""
        self._start_elink(self.root_i)

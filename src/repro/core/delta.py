"""δ-clusters and δ-clusterings (paper §2.1).

A **δ-cluster** is a set of nodes *C* such that

1. the communication subgraph induced by *C* is connected, and
2. every pair of nodes in *C* has feature distance at most δ
   (*δ-compactness*).

A **δ-clustering** partitions the communication graph into disjoint
δ-clusters; quality is measured by the number of clusters (fewer is
better).  Finding the optimum is NP-complete and inapproximable within
``n^φ`` (Theorem 1), which is why the paper proposes heuristics.

:class:`Clustering` is the result type shared by ELink and every baseline:
an assignment of nodes to cluster roots plus, per cluster, a *cluster tree*
(parent pointers embedded in the communication graph) and the root feature
used for δ/2 containment and query pruning.  :func:`validate_clustering`
checks the full δ-clustering definition and is used throughout the tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro.features.metrics import Metric


@dataclass
class Clustering:
    """A δ-clustering with embedded cluster trees.

    Attributes
    ----------
    assignment:
        Mapping node -> cluster root id.  Roots map to themselves.
    parent:
        Cluster-tree parent pointers; every non-root's parent is a
        communication-graph neighbour, roots point to themselves.
    root_features:
        Mapping root -> the *pruning feature* of the cluster.  Every member
        is guaranteed to be within δ/2 of this feature (for ELink it is the
        feature of the sentinel that grew the cluster; a repaired split
        component inherits the original root's feature so the guarantee is
        preserved).
    """

    assignment: dict[Hashable, Hashable]
    parent: dict[Hashable, Hashable]
    root_features: dict[Hashable, np.ndarray]
    _members: dict[Hashable, list[Hashable]] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return len(self.root_features)

    @property
    def roots(self) -> list[Hashable]:
        """Cluster root ids."""
        return list(self.root_features)

    def root_of(self, node: Hashable) -> Hashable:
        """The cluster root *node* belongs to."""
        return self.assignment[node]

    def members(self, root: Hashable) -> list[Hashable]:
        """Member list of the cluster rooted at *root* (including the root)."""
        return list(self._members_map()[root])

    def clusters(self) -> dict[Hashable, list[Hashable]]:
        """Mapping root -> member list (including the root)."""
        return {root: list(nodes) for root, nodes in self._members_map().items()}

    def _members_map(self) -> dict[Hashable, list[Hashable]]:
        if self._members is None:
            members: dict[Hashable, list[Hashable]] = {root: [] for root in self.root_features}
            for node, root in self.assignment.items():
                members[root].append(node)
            self._members = members
        return self._members

    def tree_children(self) -> dict[Hashable, list[Hashable]]:
        """Mapping node -> its cluster-tree children."""
        children: dict[Hashable, list[Hashable]] = {node: [] for node in self.assignment}
        for node, par in self.parent.items():
            if par != node:
                children[par].append(node)
        return children

    def path_to_root(self, node: Hashable) -> list[Hashable]:
        """Cluster-tree path ``[node, ..., root]``; raises on a parent cycle."""
        path = [node]
        seen = {node}
        current = node
        while self.parent[current] != current:
            current = self.parent[current]
            if current in seen:
                raise ValueError(f"cluster-tree parent cycle at {current!r}")
            seen.add(current)
            path.append(current)
        return path

    def cluster_sizes(self) -> list[int]:
        """Sorted list of cluster sizes."""
        return sorted(len(nodes) for nodes in self._members_map().values())

    def __repr__(self) -> str:
        return f"Clustering(clusters={self.num_clusters}, nodes={len(self.assignment)})"


@dataclass(frozen=True)
class ClusteringViolation:
    """One violation of the δ-clustering definition, for diagnostics."""

    kind: str  # "coverage" | "connectivity" | "compactness" | "tree"
    detail: str


#: Default cap on violating pairs reported per cluster.  A badly broken
#: cluster has O(n²) violating pairs; 16 is plenty for diagnostics.
MAX_VIOLATING_PAIRS = 16


def check_delta_compact(
    nodes: list[Hashable],
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    delta: float,
    *,
    limit: int | None = MAX_VIOLATING_PAIRS,
) -> list[tuple[Hashable, Hashable, float]]:
    """Return the violating pairs ``(a, b, distance)`` among *nodes*.

    Empty when *nodes* are pairwise within δ.  At most *limit* pairs are
    collected (``None`` for no cap); pass ``limit=1`` to use the check as
    an early-exiting predicate.  Each entry carries the offending distance
    so callers never recompute it.
    """
    violations: list[tuple[Hashable, Hashable, float]] = []
    for i, a in enumerate(nodes):
        feature_a = features[a]
        for b in nodes[i + 1 :]:
            distance = metric.distance(feature_a, features[b])
            if distance > delta + 1e-9:
                violations.append((a, b, distance))
                if limit is not None and len(violations) >= limit:
                    return violations
    return violations


def validate_clustering(
    graph: nx.Graph,
    clustering: Clustering,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    delta: float,
    *,
    check_trees: bool = True,
) -> list[ClusteringViolation]:
    """Check the full δ-clustering definition; returns all violations found.

    Checks: (1) every graph node is assigned exactly once, (2) each
    cluster's induced subgraph is connected (validated on the members
    actually present in the graph; members absent from the graph are an
    explicit violation), (3) each cluster is pairwise δ-compact (violating
    pairs are reported up to :data:`MAX_VIOLATING_PAIRS` per cluster), and
    optionally (4) cluster trees are spanning trees of the member subgraph
    whose edges are communication-graph edges.
    """
    violations: list[ClusteringViolation] = []

    assigned = set(clustering.assignment)
    graph_nodes = set(graph.nodes)
    for node in graph_nodes - assigned:
        violations.append(ClusteringViolation("coverage", f"node {node!r} unassigned"))
    for node in assigned - graph_nodes:
        violations.append(ClusteringViolation("coverage", f"unknown node {node!r} assigned"))

    for root, nodes in clustering.clusters().items():
        if root not in set(nodes):
            violations.append(
                ClusteringViolation("coverage", f"root {root!r} not a member of its cluster")
            )
        # Connectivity is validated on the members actually present in the
        # graph: ``graph.subgraph`` silently drops unknown nodes, so a
        # cluster containing them must not pass as "connected" by default —
        # the dropped members get their own explicit violation.
        present = [node for node in nodes if node in graph_nodes]
        dropped = [node for node in nodes if node not in graph_nodes]
        if dropped:
            violations.append(
                ClusteringViolation(
                    "connectivity",
                    f"cluster {root!r}: members {dropped[:MAX_VIOLATING_PAIRS]!r} "
                    "are not in the graph (connectivity checked on the rest)",
                )
            )
        if present and not nx.is_connected(graph.subgraph(present)):
            violations.append(
                ClusteringViolation(
                    "connectivity", f"cluster {root!r} induces a disconnected subgraph"
                )
            )
        for a, b, distance in check_delta_compact(nodes, features, metric, delta):
            violations.append(
                ClusteringViolation(
                    "compactness",
                    f"cluster {root!r}: d({a!r},{b!r}) = "
                    f"{distance:.4f} > delta={delta}",
                )
            )
        if check_trees:
            violations.extend(_validate_tree(graph, clustering, root, nodes))
    return violations


def _validate_tree(
    graph: nx.Graph, clustering: Clustering, root: Hashable, nodes: list[Hashable]
) -> list[ClusteringViolation]:
    violations: list[ClusteringViolation] = []
    member_set = set(nodes)
    for node in nodes:
        par = clustering.parent.get(node)
        if par is None:
            violations.append(ClusteringViolation("tree", f"node {node!r} has no parent pointer"))
            continue
        if node == root:
            if par != node:
                violations.append(
                    ClusteringViolation("tree", f"root {root!r} parent must be itself")
                )
            continue
        if par not in member_set:
            violations.append(
                ClusteringViolation("tree", f"node {node!r} parent {par!r} outside its cluster")
            )
        elif not graph.has_edge(node, par):
            violations.append(
                ClusteringViolation("tree", f"tree edge {node!r}-{par!r} not a graph edge")
            )
    # Reachability: following parents from every member must reach the root.
    for node in nodes:
        try:
            path = clustering.path_to_root(node)
        except (ValueError, KeyError) as exc:
            violations.append(ClusteringViolation("tree", f"path from {node!r} broken: {exc}"))
            continue
        if path[-1] != root:
            violations.append(
                ClusteringViolation(
                    "tree", f"node {node!r} tree path ends at {path[-1]!r}, not root {root!r}"
                )
            )
    return violations


def clustering_from_assignment(
    graph: nx.Graph,
    assignment: Mapping[Hashable, Hashable],
    features: Mapping[Hashable, np.ndarray],
    *,
    root_features: Mapping[Hashable, np.ndarray] | None = None,
    parents: Mapping[Hashable, Hashable] | None = None,
) -> Clustering:
    """Build a :class:`Clustering` from a plain node -> root mapping.

    If *parents* (protocol-built cluster-tree pointers) are given they are
    kept wherever they form a valid spanning tree of the member subgraph;
    broken components fall back to a BFS tree.  If a cluster's member
    subgraph is disconnected (possible under ELink's bounded cluster
    switching, which may orphan a subtree), each stray connected component
    is split into its own cluster — rooted at its node closest to the
    original root feature, but *keeping the original root feature as the
    pruning feature*, so the "every member within δ/2 of the pruning
    feature" guarantee survives the split.  Baselines and the ELink
    post-processing both use this constructor, so every clustering the
    library emits satisfies the δ-cluster connectivity condition by
    construction.
    """
    members: dict[Hashable, list[Hashable]] = {}
    for node, root in assignment.items():
        members.setdefault(root, []).append(node)

    final_assignment: dict[Hashable, Hashable] = {}
    parent: dict[Hashable, Hashable] = {}
    final_root_features: dict[Hashable, np.ndarray] = {}

    # Components and BFS trees are computed with plain dict-adjacency BFS
    # mirroring the networkx equivalents on induced subgraph views (same
    # seed order — graph node order filtered to the cluster — and same
    # traversal order), without building a subgraph view per cluster.
    adj = graph._adj
    graph_order = {node: i for i, node in enumerate(graph.nodes)}

    for root, nodes in members.items():
        base_feature = (
            np.asarray(root_features[root])
            if root_features is not None and root in root_features
            else np.asarray(features[root])
        )
        member_set = set(nodes)
        done: set[Hashable] = set()
        seeds = sorted(
            (v for v in nodes if v in graph_order), key=graph_order.__getitem__
        )
        for component in _member_components(adj, member_set, seeds, done):
            comp_nodes = set(component)
            if root in comp_nodes:
                comp_root = root
            else:
                # Stray component: root it at the member nearest the original
                # root feature (deterministic tie-break on repr).
                comp_root = min(
                    comp_nodes,
                    key=lambda v: (
                        float(np.linalg.norm(np.asarray(features[v]) - base_feature)),
                        repr(v),
                    ),
                )
            final_root_features[comp_root] = base_feature
            final_assignment[comp_root] = comp_root
            comp_parent = _component_tree(graph, comp_nodes, comp_root, parents)
            for node, par in comp_parent.items():
                parent[node] = par
                final_assignment[node] = comp_root
    return Clustering(final_assignment, parent, final_root_features)


def _member_components(
    adj: Mapping[Hashable, Mapping[Hashable, dict]],
    member_set: set[Hashable],
    seeds: list[Hashable],
    done: set[Hashable],
) -> list[set[Hashable]]:
    """Connected components of the subgraph induced by *member_set*.

    Mirrors ``nx.connected_components`` on ``graph.subgraph(member_set)``:
    *seeds* must be in graph node order, and the BFS replicates
    ``nx._plain_bfs`` set-construction order so downstream iteration over
    the component sets matches the networkx implementation exactly.
    """
    components: list[set[Hashable]] = []
    for source in seeds:
        if source in done:
            continue
        seen = {source}
        nextlevel = [source]
        while nextlevel:
            thislevel = nextlevel
            nextlevel = []
            for v in thislevel:
                for w in adj[v]:
                    if w in member_set and w not in seen:
                        seen.add(w)
                        nextlevel.append(w)
        done |= seen
        components.append(seen)
    return components


def _component_tree(
    graph: nx.Graph,
    comp_nodes: set[Hashable],
    comp_root: Hashable,
    parents: Mapping[Hashable, Hashable] | None,
) -> dict[Hashable, Hashable]:
    """Parent pointers for one component: protocol tree if valid, else BFS."""
    if parents is not None:
        candidate: dict[Hashable, Hashable] = {comp_root: comp_root}
        valid = True
        for node in comp_nodes:
            if node == comp_root:
                continue
            par = parents.get(node)
            if par not in comp_nodes or not graph.has_edge(node, par):
                valid = False
                break
            candidate[node] = par
        if valid:
            # Every member must reach the root without cycles.
            for node in comp_nodes:
                hops, current = 0, node
                while candidate[current] != current and hops <= len(comp_nodes):
                    current = candidate[current]
                    hops += 1
                if current != comp_root:
                    valid = False
                    break
        if valid:
            return candidate
    # BFS tree over the induced subgraph: each child's parent is the first
    # node (in FIFO order, adjacency order within a node) that reaches it —
    # the same assignment ``nx.bfs_predecessors`` produces on the subgraph.
    adj = graph._adj
    tree = {comp_root: comp_root}
    visited = {comp_root}
    queue = deque([comp_root])
    while queue:
        node = queue.popleft()
        for child in adj[node]:
            if child in comp_nodes and child not in visited:
                visited.add(child)
                tree[child] = node
                queue.append(child)
    return tree

"""The ELink distributed δ-clustering algorithm (paper §3–§5, Figs 16–18).

ELink grows clusters from **sentinel sets** — the per-level leaders of a
quadtree decomposition — one level at a time: the single level-0 sentinel
expands first; once level *l* has finished, level *l+1* starts.  A sentinel
that is still unclustered elects itself cluster root and floods ``expand``
messages carrying its feature; a neighbour joins when its distance to the
root feature is at most δ/2 (triangle inequality then gives pairwise
δ-compactness).  A clustered node may *switch* to a cluster grown at the
same level when that improves its root distance by more than φ, at most
*c* times.

Two signalling techniques order the levels:

- **Implicit** (§4, synchronous networks): each sentinel at level *l*
  starts on a local timer ``T_l = Σ_{j<l} t_j`` with
  ``t_l = κ·(1 + 1/2 + … + 1/2^l)`` and ``κ = (1+γ)·√(N/2)``.
- **Explicit** (§5, asynchronous networks): completion is detected with
  ``ack1``/``ack2`` messages on the cluster tree, then synchronized through
  the quadtree with ``phase1`` (up), ``phase2`` (down) and ``start``
  messages.

Implementation note — *episodes*.  The paper allows bounded cluster
switching but leaves the completion book-keeping under switches implicit.
We make it explicit: every join opens an *episode* (parent + child counter
+ leaf timeout).  ``ack1`` increments and ``ack2`` decrements the episode
under which the child joined; a node that switches simply opens a new
episode while the old one keeps draining its subtree acks and finally
reports ``ack2`` to the old parent.  Completion detection therefore stays
exact — and deadlock-free — under arbitrary bounded switching, with no
message kinds beyond the paper's.

Because a switching node does not drag its cluster-tree subtree along, a
cluster's *membership* can in rare cases lose connectivity; the result
assembly repairs this by splitting stray components into their own clusters
(see :func:`repro.core.delta.clustering_from_assignment`), which keeps
every emitted cluster a valid δ-cluster and simply costs one extra cluster
in the quality metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Literal, Mapping

import numpy as np

from repro._validation import require_non_negative, require_positive
from repro.core.delta import Clustering, clustering_from_assignment
from repro.features.metrics import Metric
from repro.geometry.quadtree import QuadTreeDecomposition
from repro.geometry.topology import Topology
from repro.sim.kernel import EventKernel
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import ProtocolNode
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class ELinkConfig:
    """Parameters of an ELink run.

    Parameters
    ----------
    delta:
        The clustering threshold δ.
    phi:
        Minimum root-distance improvement required to switch clusters
        (paper default: 0.1·δ, applied when None).
    max_switches:
        The switch budget *c* per node (paper: 3–5, experiments use 4).
    gamma:
        Routing stretch factor used by the implicit timers (paper: 0.2–0.4).
    signalling:
        ``"implicit"`` (timer-driven, synchronous), ``"explicit"``
        (ack/phase-driven, asynchronous), or ``"unordered"`` — the §5
        thought experiment where *every* sentinel starts at once: O(√N)
        time, O(N) messages, but poorer quality from cross-level
        contention.  In unordered mode every node self-elects at t=0, so
        merging happens through switching: the level-equality guard is
        dropped and a childless singleton root may dissolve into a
        neighbouring cluster within δ/2 (joins send ``ack1`` so roots know
        whether they still have children).
    ack_window:
        Leaf-detection timeout in hop-delay units (explicit mode).  Joins
        triggered by an ``expand`` answer with ``ack1`` exactly two hops
        later, so any value in (2, 3) is exact for the unit-delay radio;
        2.5 is the default "conservative time-out" (Fig 18).
    """

    delta: float
    phi: float | None = None
    max_switches: int = 4
    gamma: float = 0.3
    signalling: Literal["implicit", "explicit", "unordered"] = "implicit"
    ack_window: float = 2.5

    def __post_init__(self) -> None:
        require_positive(self.delta, "delta")
        if self.phi is not None:
            require_non_negative(self.phi, "phi")
        if self.max_switches < 0:
            raise ValueError(f"max_switches must be >= 0, got {self.max_switches}")
        require_non_negative(self.gamma, "gamma")
        if self.signalling not in ("implicit", "explicit", "unordered"):
            raise ValueError(
                "signalling must be 'implicit', 'explicit' or 'unordered', "
                f"got {self.signalling!r}"
            )
        if not (2.0 < self.ack_window):
            raise ValueError(f"ack_window must exceed 2 hop delays, got {self.ack_window}")

    @property
    def switch_threshold(self) -> float:
        """φ — defaults to 0.1·δ as in the paper's experiments (§8.4)."""
        return 0.1 * self.delta if self.phi is None else self.phi


@dataclass
class ELinkResult:
    """Outcome of one ELink run."""

    clustering: Clustering
    stats: MessageStats
    completion_time: float
    protocol_time: float
    total_switches: int
    repaired_components: int
    config: ELinkConfig

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters

    @property
    def clustering_messages(self) -> int:
        """Expansion + cluster-tree ack traffic (the paper's message metric)."""
        return self.stats.category_values("clustering")

    @property
    def sync_messages(self) -> int:
        """phase1/phase2/start traffic (explicit signalling only)."""
        return self.stats.category_values("sync")

    @property
    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.clustering_messages + self.sync_messages

    def __repr__(self) -> str:
        return (
            f"ELinkResult(clusters={self.num_clusters}, messages={self.total_messages}, "
            f"time={self.completion_time:.1f}, mode={self.config.signalling})"
        )


@dataclass
class _Episode:
    """One membership episode: the accounting unit for ack1/ack2."""

    seq: int
    parent: Hashable | None  # None => this episode roots a cluster
    parent_episode: int | None
    children: int = 0
    timeout_passed: bool = False
    completed: bool = False


class ELinkNode(ProtocolNode):
    """Per-node ELink runtime implementing Figs 16–18."""

    def __init__(
        self,
        node_id: Hashable,
        network: Network,
        feature: np.ndarray,
        *,
        metric: Metric,
        config: ELinkConfig,
        level: int,
        quad_parent: Hashable,
        quad_children: list[Hashable],
        subtree_max_level: int,
        max_level: int,
    ):
        super().__init__(node_id, network, feature)
        self.metric = metric
        self.config = config
        self.level = level
        self.quad_parent = quad_parent
        self.quad_children = list(quad_children)
        self.subtree_max_level = subtree_max_level
        self.max_level = max_level

        # Fig 16 state.
        self.clustered = False
        self.root_id: Hashable | None = None
        self.root_feature: np.ndarray | None = None
        self.m: int | None = None  # level of the sentinel that clustered us
        self.parent: Hashable | None = None
        self.switches_used = 0
        self.is_cluster_root = False
        self.clustered_at: float | None = None

        # Episode accounting (explicit mode).
        self._episodes: dict[int, _Episode] = {}
        self._episode_seq = 0
        self._current_episode: int | None = None
        self._phase1_sent = False

        # Quadtree synchronization (explicit mode): per-round phase1 counts.
        self._phase1_received: dict[int, int] = {}

        # Filled by the runner for protocol-termination detection.
        self.on_protocol_done = None

    # ------------------------------------------------------------------
    # signal: ELink(i)
    # ------------------------------------------------------------------
    def start_elink(self) -> None:
        """Fig 16: invoked by timer (implicit) or ``start`` message (explicit)."""
        if not self.clustered:
            self.clustered = True
            self.is_cluster_root = True
            self.root_id = self.node_id
            self.root_feature = self.feature
            self.m = self.level
            self.parent = None
            self.clustered_at = self.now
            self._open_episode(parent=None, parent_episode=None)
        elif self.config.signalling == "explicit" and not self._phase1_sent:
            # Already clustered: expansion is trivially complete for this
            # sentinel's round; report phase1 immediately (§5).
            self._send_phase1(self.level)

    # ------------------------------------------------------------------
    # episodes
    # ------------------------------------------------------------------
    def _open_episode(self, parent: Hashable | None, parent_episode: int | None) -> None:
        self._episode_seq += 1
        episode = _Episode(self._episode_seq, parent, parent_episode)
        self._episodes[episode.seq] = episode
        self._current_episode = episode.seq
        self.broadcast(
            "expand",
            payload=(self.root_feature, self.root_id, self.m, episode.seq),
            values=int(np.atleast_1d(self.root_feature).shape[0]),
        )
        if self.config.signalling == "explicit":
            if parent is not None:
                self.send(parent, "ack1", payload=parent_episode)
            # The leaf timeout must cover an expand + ack1 round trip under
            # the worst-case per-hop delay (jitter-aware).
            self.set_timer(
                self.config.ack_window * self.network.max_hop_delay,
                self._episode_timeout,
                episode.seq,
            )
        elif self.config.signalling == "unordered" and parent is not None:
            # Unordered mode needs roots to know whether they still anchor
            # children before dissolving; joins therefore announce
            # themselves, but there is no completion machinery.
            self.send(parent, "ack1", payload=parent_episode)

    def _episode_timeout(self, seq: int) -> None:
        episode = self._episodes[seq]
        episode.timeout_passed = True
        self._maybe_complete_episode(episode)

    def _maybe_complete_episode(self, episode: _Episode) -> None:
        if episode.completed or not episode.timeout_passed or episode.children > 0:
            return
        episode.completed = True
        if episode.parent is not None:
            self.send(episode.parent, "ack2", payload=episode.parent_episode)
        else:
            # Root episode complete: this sentinel's cluster stopped growing.
            self._send_phase1(self.level)

    # ------------------------------------------------------------------
    # Fig 16: cluster expansion
    # ------------------------------------------------------------------
    def handle_expand(self, message: Message) -> None:
        """Fig 16: join, ignore, or switch on a cluster-expansion offer."""
        root_feature, root_id, n, parent_episode = message.payload
        distance_to_root = self.metric.distance(root_feature, self.feature)
        if distance_to_root > self.config.delta / 2.0:
            return
        if not self.clustered:
            self._join(message.src, root_feature, root_id, n, parent_episode)
            return
        if root_id == self.root_id:
            return
        if self.switches_used >= self.config.max_switches:
            return
        if self.config.signalling == "unordered":
            # Unordered mode (§5): every node self-elected at t=0, so all
            # merging is switching.  A childless singleton root dissolves
            # into a cluster within δ/2 — but only toward a smaller root id,
            # otherwise two adjacent roots dissolve into each other
            # simultaneously and both clusters shatter (the symmetry-break
            # every id-based coordination protocol uses).  Members switch
            # on improvement with no level-equality requirement.
            if self.is_cluster_root:
                if self._total_children() > 0:
                    return
                if not _id_less(root_id, self.node_id):
                    return
            else:
                current_distance = self.metric.distance(self.root_feature, self.feature)
                if distance_to_root + self.config.switch_threshold >= current_distance:
                    return
            self.switches_used += 1
            self.is_cluster_root = False
            self._join(message.src, root_feature, root_id, n, parent_episode)
            return
        # Switch guard (Fig 16): same sentinel level, improvement above the
        # threshold, switch budget remaining — and never abandon a cluster we
        # root (that would orphan the whole cluster).
        if self.is_cluster_root or n != self.m:
            return
        current_distance = self.metric.distance(self.root_feature, self.feature)
        if distance_to_root + self.config.switch_threshold >= current_distance:
            return
        self.switches_used += 1
        self._join(message.src, root_feature, root_id, n, parent_episode)

    def _total_children(self) -> int:
        return sum(episode.children for episode in self._episodes.values())

    def _join(
        self,
        via: Hashable,
        root_feature: np.ndarray,
        root_id: Hashable,
        n: int,
        parent_episode: int,
    ) -> None:
        self.clustered = True
        self.root_id = root_id
        self.root_feature = root_feature
        self.m = n
        self.parent = via
        self.clustered_at = self.now
        self._open_episode(parent=via, parent_episode=parent_episode)

    def handle_ack1(self, message: Message) -> None:
        """A neighbour joined under this node; bump its episode's child count."""
        episode = self._episodes[message.payload]
        if episode.timeout_passed:
            raise RuntimeError(
                f"node {self.node_id!r}: ack1 arrived after leaf timeout of episode "
                f"{episode.seq}; increase ack_window"
            )
        episode.children += 1

    def handle_ack2(self, message: Message) -> None:
        """A child subtree finished growing; maybe complete the episode."""
        episode = self._episodes[message.payload]
        if episode.children <= 0:
            raise RuntimeError(f"node {self.node_id!r}: ack2 underflow on episode {episode.seq}")
        episode.children -= 1
        self._maybe_complete_episode(episode)

    # ------------------------------------------------------------------
    # Fig 18: quadtree synchronization (explicit mode)
    # ------------------------------------------------------------------
    def _expected_phase1(self, round_level: int) -> int:
        """Quad children whose subtree holds sentinels at *round_level*."""
        return sum(
            1
            for child in self.quad_children
            if self._child_subtree_max[child] >= round_level
        )

    def _send_phase1(self, round_level: int) -> None:
        if self.config.signalling != "explicit":
            return
        self._phase1_sent = True
        if self.level == 0:
            # Quadtree root: its own round is complete the moment its
            # expansion ends (it is the only member of S_0).
            self._round_complete(round_level)
        else:
            self.route(self.quad_parent, "phase1", payload=round_level)

    def handle_phase1(self, message: Message) -> None:
        """Fig 18: aggregate round-completion reports up the quadtree."""
        round_level = message.payload
        got = self._phase1_received.get(round_level, 0) + 1
        self._phase1_received[round_level] = got
        if got > self._expected_phase1(round_level):
            raise RuntimeError(
                f"node {self.node_id!r}: too many phase1({round_level}) messages"
            )
        if got == self._expected_phase1(round_level):
            if self.level == 0:
                self._round_complete(round_level)
            else:
                self.route(self.quad_parent, "phase1", payload=round_level)

    def _round_complete(self, round_level: int) -> None:
        """At the quadtree root: all of S_round_level finished expanding."""
        if round_level >= self.max_level:
            if self.on_protocol_done is not None:
                self.on_protocol_done(self.now)
            return
        # phase2 travels down to the S_round_level sentinels, which then
        # start their S_{round_level+1} children.  The root is itself the
        # level-0 sentinel, so for round 0 it acts on phase2 directly.
        self._act_on_phase2(round_level)

    def _act_on_phase2(self, round_level: int) -> None:
        if self.level == round_level:
            for child in self.quad_children:
                self.route(child, "start")
        else:
            for child in self.quad_children:
                if self._child_subtree_max[child] >= round_level:
                    self.route(child, "phase2", payload=round_level)

    def handle_phase2(self, message: Message) -> None:
        """Fig 18: forward the round-completion wave down the quadtree."""
        self._act_on_phase2(message.payload)

    def handle_start(self, message: Message) -> None:
        """Fig 18: quadtree parent says this sentinel's round begins."""
        self._phase1_sent = False  # new round for this sentinel
        self.start_elink()

    # Bound by the runner: mapping quad child -> subtree max level.
    _child_subtree_max: Mapping[Hashable, int] = {}


def _id_less(a: Hashable, b: Hashable) -> bool:
    """Total order on node ids (falls back to repr for mixed types)."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return repr(a) < repr(b)


def compute_kappa(n: int, gamma: float, hop_delay: float = 1.0) -> float:
    """κ = (1+γ)·√(N/2) — worst-case root-to-anywhere clustering time (§4)."""
    return (1.0 + gamma) * math.sqrt(n / 2.0) * hop_delay


def implicit_schedule(n: int, depth: int, gamma: float, hop_delay: float = 1.0) -> list[float]:
    """Start times ``T_l = Σ_{j<l} t_j`` for sentinel levels 0..depth (§4)."""
    kappa = compute_kappa(n, gamma, hop_delay)
    durations = [kappa * (2.0 - 2.0 ** (-level)) for level in range(depth + 1)]
    starts = [0.0]
    for level in range(1, depth + 1):
        starts.append(starts[-1] + durations[level - 1])
    return starts


def run_elink(
    topology: Topology,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    config: ELinkConfig,
    *,
    quadtree: QuadTreeDecomposition | None = None,
    network: Network | None = None,
) -> ELinkResult:
    """Run ELink over *topology* and return the resulting δ-clustering.

    Message costs are **measured** on the simulated network, not computed
    from the paper's closed forms.  The returned
    :attr:`ELinkResult.protocol_time` is the simulated completion time: for
    implicit signalling the time the last node joined a cluster plus the
    final level's allotted window; for explicit signalling the time the
    root learns the final round finished.
    """
    missing = set(topology.graph.nodes) - set(features)
    if missing:
        raise ValueError(f"features missing for nodes: {sorted(missing, key=repr)[:5]}")
    if quadtree is None:
        quadtree = QuadTreeDecomposition(topology)
    if network is None:
        network = Network(topology.graph, EventKernel())
    start_stats = network.stats.snapshot()

    # Subtree max levels for the phase1 expectation counts, filled deepest
    # level first so children are ready before their parents.
    subtree_max: dict[Hashable, int] = {}
    order = sorted(quadtree.level_of, key=lambda v: -quadtree.level_of[v])
    for node in order:
        level = quadtree.level_of[node]
        best = level
        for child in quadtree.quad_children.get(node, []):
            best = max(best, subtree_max[child])
        subtree_max[node] = best

    depth = quadtree.depth
    nodes: dict[Hashable, ELinkNode] = {}
    for node_id in topology.graph.nodes:
        elink_node = ELinkNode(
            node_id,
            network,
            np.asarray(features[node_id], dtype=np.float64),
            metric=metric,
            config=config,
            level=quadtree.level_of[node_id],
            quad_parent=quadtree.quad_parent[node_id],
            quad_children=quadtree.quad_children.get(node_id, []),
            subtree_max_level=subtree_max[node_id],
            max_level=depth,
        )
        elink_node._child_subtree_max = subtree_max
        nodes[node_id] = elink_node

    protocol_done_at: list[float] = []
    root_sentinel = quadtree.root
    nodes[root_sentinel].on_protocol_done = protocol_done_at.append

    n = topology.num_nodes
    if config.signalling == "implicit":
        starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
        for level, sentinels in enumerate(quadtree.sentinel_sets):
            for sentinel in sentinels:
                network.kernel.schedule_at(
                    max(starts[level], network.kernel.now), nodes[sentinel].start_elink
                )
    elif config.signalling == "unordered":
        for sentinels in quadtree.sentinel_sets:
            for sentinel in sentinels:
                network.kernel.schedule(0.0, nodes[sentinel].start_elink)
    else:
        network.kernel.schedule(0.0, nodes[root_sentinel].start_elink)

    network.run(max_events=200 * n * (depth + 2) + 10_000)

    # Assemble the clustering from final node states.
    assignment = {node_id: node.root_id for node_id, node in nodes.items()}
    parents = {
        node_id: (node.parent if node.parent is not None else node_id)
        for node_id, node in nodes.items()
    }
    root_feature_map = {
        node_id: node.feature for node_id, node in nodes.items() if node.is_cluster_root
    }
    clustering = clustering_from_assignment(
        topology.graph,
        assignment,
        {node_id: node.feature for node_id, node in nodes.items()},
        root_features=root_feature_map,
        parents=parents,
    )
    repaired = clustering.num_clusters - len(set(assignment.values()))

    completion_time = max(
        (node.clustered_at for node in nodes.values() if node.clustered_at is not None),
        default=0.0,
    )
    if config.signalling == "implicit":
        kappa = compute_kappa(n, config.gamma, network.hop_delay)
        starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
        protocol_time = starts[-1] + kappa * (2.0 - 2.0 ** (-depth))
    elif config.signalling == "unordered":
        # §5: simultaneous expansion finishes within 2κ — the measured
        # completion time is the protocol time.
        protocol_time = completion_time
    else:
        protocol_time = protocol_done_at[0] if protocol_done_at else network.kernel.now

    return ELinkResult(
        clustering=clustering,
        stats=network.stats.diff(start_stats),
        completion_time=completion_time,
        protocol_time=protocol_time,
        total_switches=sum(node.switches_used for node in nodes.values()),
        repaired_components=max(repaired, 0),
        config=config,
    )

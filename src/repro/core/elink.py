"""The ELink distributed δ-clustering algorithm (paper §3–§5, Figs 16–18).

ELink grows clusters from **sentinel sets** — the per-level leaders of a
quadtree decomposition — one level at a time: the single level-0 sentinel
expands first; once level *l* has finished, level *l+1* starts.  A sentinel
that is still unclustered elects itself cluster root and floods ``expand``
messages carrying its feature; a neighbour joins when its distance to the
root feature is at most δ/2 (triangle inequality then gives pairwise
δ-compactness).  A clustered node may *switch* to a cluster grown at the
same level when that improves its root distance by more than φ, at most
*c* times.

Two signalling techniques order the levels:

- **Implicit** (§4, synchronous networks): each sentinel at level *l*
  starts on a local timer ``T_l = Σ_{j<l} t_j`` with
  ``t_l = κ·(1 + 1/2 + … + 1/2^l)`` and ``κ = (1+γ)·√(N/2)``.
- **Explicit** (§5, asynchronous networks): completion is detected with
  ``ack1``/``ack2`` messages on the cluster tree, then synchronized through
  the quadtree with ``phase1`` (up), ``phase2`` (down) and ``start``
  messages.

Implementation note — *episodes*.  The paper allows bounded cluster
switching but leaves the completion book-keeping under switches implicit.
We make it explicit: every join opens an *episode* (parent + child counter
+ leaf timeout).  ``ack1`` increments and ``ack2`` decrements the episode
under which the child joined; a node that switches simply opens a new
episode while the old one keeps draining its subtree acks and finally
reports ``ack2`` to the old parent.  Completion detection therefore stays
exact — and deadlock-free — under arbitrary bounded switching, with no
message kinds beyond the paper's.

Because a switching node does not drag its cluster-tree subtree along, a
cluster's *membership* can in rare cases lose connectivity; the result
assembly repairs this by splitting stray components into their own clusters
(see :func:`repro.core.delta.clustering_from_assignment`), which keeps
every emitted cluster a valid δ-cluster and simply costs one extra cluster
in the quality metric.

Failure detection and repair (DESIGN.md §9).  With
``ELinkConfig.failure_detection`` enabled (default off — the zero-fault
configuration is byte-identical to the paper protocol), explicit-mode
ELink survives fail-stop crashes injected by
:class:`repro.sim.faults.FaultInjector`:

- **ack escalation** — an episode whose leaf timeout passes with children
  outstanding probes them over the link layer (send receipts double as
  synchronous failure detection); dead children are deducted, and after
  ``ack_retries`` rounds the episode force-completes, so a dead or silent
  child can no longer stall completion detection forever.
- **parent heartbeats** — a node with an incomplete episode heartbeats its
  cluster parent; a failed heartbeat (or failed ``ack2``) roots the
  orphaned subtree at the detector, which re-expands with a *repair*
  ``expand`` carrying the dead cluster root's id so orphaned descendants
  rejoin without spending switch budget.
- **sentinel failover** — a quadtree aggregator that misses ``phase1``
  reports past a deadline probes the silent quad children; a dead child's
  cell is taken over by the next-eligible cell member (closest to the cell
  centroid, deterministic tie-break), which adopts the dead sentinel's
  quadtree role; with no eligible replacement the child is *forgiven* so
  rounds still terminate.

Observability (DESIGN.md §10, docs/OBSERVABILITY.md).  With a
:class:`repro.obs.trace.Tracer` attached (``run_elink(..., tracer=...)``
or a pre-traced :class:`Network`), every phase transition emits a typed
event — ``elink.elect`` / ``elink.join`` / ``elink.switch`` /
``elink.rejoin`` / ``elink.episode_done`` / ``elink.phase1`` /
``elink.phase2`` / ``elink.round_done`` / ``elink.orphan`` /
``elink.takeover`` / ``elink.assembled`` — alongside the network's
``msg.*`` and the injector's ``fault.*``/``repair.*`` streams.  Hooks
guard on a cached ``self._obs is not None``, so untraced runs execute the
exact pre-observability instruction stream.

Every retry loop is bounded and every give-up path force-completes, so the
protocol terminates under any crash pattern; validity is restored at
assembly time, which clusters the *surviving* subgraph and keeps each dead
root's feature as the pruning feature for its stranded members (the δ/2
guarantee survives).  Repair traffic (``probe``/``hb``/``takeover``) is
charged to a separate ``repair`` category so fault experiments can report
overhead next to the paper's clustering/sync metrics.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Literal, Mapping

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

import numpy as np

from repro._validation import require_non_negative, require_positive
from repro.core.delta import Clustering, clustering_from_assignment
from repro.features.metrics import Metric
from repro.geometry.quadtree import QuadTreeDecomposition
from repro.geometry.topology import Topology
from repro.sim.faults import FaultInjector
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import ProtocolNode
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class ELinkConfig:
    """Parameters of an ELink run.

    Parameters
    ----------
    delta:
        The clustering threshold δ.
    phi:
        Minimum root-distance improvement required to switch clusters
        (paper default: 0.1·δ, applied when None).
    max_switches:
        The switch budget *c* per node (paper: 3–5, experiments use 4).
    gamma:
        Routing stretch factor used by the implicit timers (paper: 0.2–0.4).
    signalling:
        ``"implicit"`` (timer-driven, synchronous), ``"explicit"``
        (ack/phase-driven, asynchronous), or ``"unordered"`` — the §5
        thought experiment where *every* sentinel starts at once: O(√N)
        time, O(N) messages, but poorer quality from cross-level
        contention.  In unordered mode every node self-elects at t=0, so
        merging happens through switching: the level-equality guard is
        dropped and a childless singleton root may dissolve into a
        neighbouring cluster within δ/2 (joins send ``ack1`` so roots know
        whether they still have children).
    ack_window:
        Leaf-detection timeout in hop-delay units (explicit mode).  Joins
        triggered by an ``expand`` answer with ``ack1`` exactly two hops
        later, so any value in (2, 3) is exact for the unit-delay radio;
        2.5 is the default "conservative time-out" (Fig 18).
    failure_detection:
        Enable the fail-stop detection/repair layer (module docstring).
        Off by default: a zero-fault run with detection off is
        byte-identical to the paper protocol.
    ack_retries:
        Bounded-retry budget shared by the repair machinery: escalation
        rounds per stalled episode, and deadline extensions per quadtree
        round, before force-completing/forgiving.
    vectorized:
        Select the batched round processor (DESIGN.md §8.2).  ``True``
        engages it whenever the scenario is eligible (jitter-free,
        loss-free, untraced, fault-free implicit/explicit runs over 1-d
        features); ``False`` forces the per-message handler path; ``None``
        (default) engages it on the array engine only.  Ineligible
        scenarios always fall back to the handler path — results are
        certified identical either way.
    """

    delta: float
    phi: float | None = None
    max_switches: int = 4
    gamma: float = 0.3
    signalling: Literal["implicit", "explicit", "unordered"] = "implicit"
    ack_window: float = 2.5
    failure_detection: bool = False
    ack_retries: int = 3
    vectorized: bool | None = None

    def __post_init__(self) -> None:
        require_positive(self.delta, "delta")
        if self.phi is not None:
            require_non_negative(self.phi, "phi")
        if self.max_switches < 0:
            raise ValueError(f"max_switches must be >= 0, got {self.max_switches}")
        require_non_negative(self.gamma, "gamma")
        if self.signalling not in ("implicit", "explicit", "unordered"):
            raise ValueError(
                "signalling must be 'implicit', 'explicit' or 'unordered', "
                f"got {self.signalling!r}"
            )
        if not (2.0 < self.ack_window):
            raise ValueError(f"ack_window must exceed 2 hop delays, got {self.ack_window}")
        if self.ack_retries < 1:
            raise ValueError(f"ack_retries must be >= 1, got {self.ack_retries}")

    @property
    def switch_threshold(self) -> float:
        """φ — defaults to 0.1·δ as in the paper's experiments (§8.4)."""
        return 0.1 * self.delta if self.phi is None else self.phi


@dataclass
class ELinkResult:
    """Outcome of one ELink run."""

    clustering: Clustering
    stats: MessageStats
    completion_time: float
    protocol_time: float
    total_switches: int
    repaired_components: int
    config: ELinkConfig

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the result."""
        return self.clustering.num_clusters

    @property
    def clustering_messages(self) -> int:
        """Expansion + cluster-tree ack traffic (the paper's message metric)."""
        return self.stats.category_values("clustering")

    @property
    def sync_messages(self) -> int:
        """phase1/phase2/start traffic (explicit signalling only)."""
        return self.stats.category_values("sync")

    @property
    def repair_messages(self) -> int:
        """Failure-detection/repair traffic (zero in fault-free runs)."""
        return self.stats.category_values("repair")

    @property
    def total_messages(self) -> int:
        """Total communication charged, in the paper's value-messages."""
        return self.clustering_messages + self.sync_messages + self.repair_messages

    def __repr__(self) -> str:
        return (
            f"ELinkResult(clusters={self.num_clusters}, messages={self.total_messages}, "
            f"time={self.completion_time:.1f}, mode={self.config.signalling})"
        )


@dataclass
class _Episode:
    """One membership episode: the accounting unit for ack1/ack2."""

    seq: int
    parent: Hashable | None  # None => this episode roots a cluster
    parent_episode: int | None
    children: int = 0
    timeout_passed: bool = False
    completed: bool = False
    #: Repair episodes (orphan re-expansion) never inject phase1 — the
    #: quadtree round they would report to has moved on.
    repair: bool = False
    #: Which neighbours joined under this episode (failure detection only:
    #: escalation needs identities to probe; ``children`` stays the exact
    #: completion counter).
    child_ids: Counter = field(default_factory=Counter)
    #: Escalation rounds already spent on this episode.
    escalations: int = 0
    #: Outstanding-children count at the previous escalation; a decrease
    #: means the subtree is making progress and the retry budget resets.
    watermark: int = -1


class ELinkNode(ProtocolNode):
    """Per-node ELink runtime implementing Figs 16–18."""

    def __init__(
        self,
        node_id: Hashable,
        network: Network,
        feature: np.ndarray,
        *,
        metric: Metric,
        config: ELinkConfig,
        level: int,
        quad_parent: Hashable,
        quad_children: list[Hashable],
        subtree_max_level: int,
        max_level: int,
    ):
        super().__init__(node_id, network, feature)
        self.metric = metric
        self.config = config
        self.level = level
        self.quad_parent = quad_parent
        self.quad_children = list(quad_children)
        self.subtree_max_level = subtree_max_level
        self.max_level = max_level

        # Fig 16 state.
        self.clustered = False
        self.root_id: Hashable | None = None
        self.root_feature: np.ndarray | None = None
        self.m: int | None = None  # level of the sentinel that clustered us
        self.parent: Hashable | None = None
        self.switches_used = 0
        self.is_cluster_root = False
        self.clustered_at: float | None = None

        # Episode accounting (explicit mode).
        self._episodes: dict[int, _Episode] = {}
        self._episode_seq = 0
        self._current_episode: int | None = None
        self._phase1_sent = False

        # Quadtree synchronization (explicit mode): per-round phase1 counts.
        self._phase1_received: dict[int, int] = {}

        # Failure detection and repair state (DESIGN.md §9).  All of it is
        # inert unless config.failure_detection is set.
        self._orphan_repaired = False
        self._phase1_senders: dict[int, set] = {}
        self._phase1_forgiven: dict[int, set] = {}
        self._phase1_forwarded: set[int] = set()
        self._deadline_attempts: dict[int, int] = {}
        self._taken_over: set[Hashable] = set()
        self._phase2_acted: set[int] = set()

        # Filled by the runner for protocol-termination detection.
        self.on_protocol_done = None

    # ------------------------------------------------------------------
    # signal: ELink(i)
    # ------------------------------------------------------------------
    def start_elink(self) -> None:
        """Fig 16: invoked by timer (implicit) or ``start`` message (explicit)."""
        if not self.clustered:
            self.clustered = True
            self.is_cluster_root = True
            self.root_id = self.node_id
            self.root_feature = self.feature
            self.m = self.level
            self.parent = None
            self.clustered_at = self.now
            if self._obs is not None:
                self._obs.emit(self.now, "elink.elect", self.node_id, level=self.level)
            self._open_episode(parent=None, parent_episode=None)
        elif self.config.signalling == "explicit" and not self._phase1_sent:
            # Already clustered: expansion is trivially complete for this
            # sentinel's round; report phase1 immediately (§5).
            self._send_phase1(self.level)

    # ------------------------------------------------------------------
    # episodes
    # ------------------------------------------------------------------
    def _open_episode(
        self,
        parent: Hashable | None,
        parent_episode: int | None,
        repair_of: Hashable | None = None,
    ) -> None:
        self._episode_seq += 1
        episode = _Episode(
            self._episode_seq, parent, parent_episode, repair=repair_of is not None
        )
        self._episodes[episode.seq] = episode
        self._current_episode = episode.seq
        values = int(np.atleast_1d(self.root_feature).shape[0])
        if repair_of is None:
            self.broadcast(
                "expand",
                payload=(self.root_feature, self.root_id, self.m, episode.seq),
                values=values,
            )
        else:
            # Repair expansion: the payload carries the dead cluster root's
            # id so orphaned members (still assigned to it) rejoin without
            # spending switch budget; charged as repair traffic.
            payload = (self.root_feature, self.root_id, self.m, episode.seq, repair_of)
            self.network.broadcast(
                self.node_id,
                lambda nbr: Message(
                    "expand", self.node_id, nbr, payload, values, category="repair"
                ),
            )
        if self.config.signalling == "explicit":
            if parent is not None:
                acked = self.send(parent, "ack1", payload=parent_episode)
                if not acked and self.config.failure_detection:
                    # Parent crashed between its expand and our join.
                    self._on_parent_dead(episode)
                    return
            # The leaf timeout must cover an expand + ack1 round trip under
            # the worst-case per-hop delay (jitter-aware).
            self.set_timer(
                self.config.ack_window * self.network.max_hop_delay,
                self._episode_timeout,
                episode.seq,
            )
            if self.config.failure_detection and parent is not None:
                self.set_timer(
                    self.config.ack_window * self.network.max_hop_delay,
                    self._parent_check,
                    episode.seq,
                )
        elif self.config.signalling == "unordered" and parent is not None:
            # Unordered mode needs roots to know whether they still anchor
            # children before dissolving; joins therefore announce
            # themselves, but there is no completion machinery.
            self.send(parent, "ack1", payload=parent_episode)

    def _episode_timeout(self, seq: int) -> None:
        episode = self._episodes[seq]
        episode.timeout_passed = True
        if (
            self.config.failure_detection
            and not episode.completed
            and episode.children > 0
        ):
            # Children outstanding at the leaf timeout: begin bounded
            # escalation so a dead/silent child cannot stall us forever.
            self.set_timer(
                self.config.ack_window * self.network.max_hop_delay,
                self._escalate_episode,
                seq,
            )
        self._maybe_complete_episode(episode)

    def _escalate_episode(self, seq: int) -> None:
        """Probe outstanding children; deduct the dead; give up when the
        retry budget is spent *without progress* (the force-complete
        guarantees termination even against a live-but-silent child)."""
        episode = self._episodes[seq]
        if episode.completed or episode.children <= 0:
            return
        if 0 <= episode.children < episode.watermark:
            # ack2s arrived since the last escalation: the subtree is live
            # and draining, so the give-up budget resets.
            episode.escalations = 0
        episode.watermark = episode.children
        episode.escalations += 1
        for child in [c for c, k in episode.child_ids.items() if k > 0]:
            if not self.send(child, "probe", payload=seq):
                episode.children -= episode.child_ids.pop(child)
                self._note_repair("prune_child", child)
        if episode.children > 0:
            if episode.escalations >= self.config.ack_retries:
                # No progress across the whole retry budget: children are
                # live (probes succeeded) but silent.  Force completion:
                # membership is assembled from final node state, so only
                # the completion *accounting* is approximated.
                episode.children = 0
                episode.child_ids.clear()
            else:
                # Exponential backoff: deep subtrees legitimately take
                # O(√N) to drain; give them geometrically more room per
                # retry instead of hammering a fixed short window.
                self.set_timer(
                    self.config.ack_window
                    * self.network.max_hop_delay
                    * (2.0 ** episode.escalations),
                    self._escalate_episode,
                    seq,
                )
        self._maybe_complete_episode(episode)

    def _parent_check(self, seq: int) -> None:
        """Heartbeat the cluster parent while the episode is incomplete."""
        episode = self._episodes[seq]
        if episode.completed or episode.parent is None:
            return
        if not self.send(episode.parent, "hb", payload=seq):
            self._on_parent_dead(episode)
            return
        self.set_timer(
            self.config.ack_window * self.network.max_hop_delay,
            self._parent_check,
            seq,
        )

    def _on_parent_dead(self, episode: _Episode) -> None:
        """Cluster parent crashed: root the orphaned subtree here and
        re-expand so orphaned descendants can rejoin (once per node)."""
        episode.completed = True  # the old episode can never be acked
        if self._orphan_repaired:
            return
        self._orphan_repaired = True
        dead = episode.parent
        old_root = self.root_id
        if self._obs is not None:
            self._obs.emit(self.now, "elink.orphan", self.node_id, dead=dead, old_root=old_root)
        self.is_cluster_root = True
        self.root_id = self.node_id
        self.root_feature = self.feature
        self.parent = None
        self.clustered_at = self.now
        self._note_repair("orphan_root", dead)
        self._open_episode(parent=None, parent_episode=None, repair_of=old_root)

    def _note_repair(self, kind: str, dead: Hashable, by: Hashable | None = None) -> None:
        if self._fault_injector is not None:
            self._fault_injector.note_repair(kind, dead, self.node_id if by is None else by)

    def _maybe_complete_episode(self, episode: _Episode) -> None:
        if episode.completed or not episode.timeout_passed or episode.children > 0:
            return
        episode.completed = True
        if self._obs is not None:
            self._obs.emit(
                self.now,
                "elink.episode_done",
                self.node_id,
                seq=episode.seq,
                root=episode.parent is None,
            )
        if episode.parent is not None:
            acked = self.send(episode.parent, "ack2", payload=episode.parent_episode)
            if not acked and self.config.failure_detection:
                self._on_parent_dead(episode)
        elif not episode.repair:
            # Root episode complete: this sentinel's cluster stopped growing.
            self._send_phase1(self.level)

    # ------------------------------------------------------------------
    # Fig 16: cluster expansion
    # ------------------------------------------------------------------
    def handle_expand(self, message: Message) -> None:
        """Fig 16: join, ignore, or switch on a cluster-expansion offer."""
        payload = message.payload
        if len(payload) == 5:
            root_feature, root_id, n, parent_episode, repair_of = payload
        else:
            root_feature, root_id, n, parent_episode = payload
            repair_of = None
        distance_to_root = self.metric.distance(root_feature, self.feature)
        if distance_to_root > self.config.delta / 2.0:
            return
        if not self.clustered:
            self._join(message.src, root_feature, root_id, n, parent_episode)
            return
        if root_id == self.root_id:
            return
        if (
            repair_of is not None
            and self.config.failure_detection
            and self.root_id == repair_of
        ):
            # Our cluster root died and a repair root is re-expanding: we
            # are orphaned, so rejoining costs no switch budget.  Propagate
            # the repair marker so deeper orphans hear it too.
            self.is_cluster_root = False
            self._join(message.src, root_feature, root_id, n, parent_episode,
                       repair_of=repair_of)
            return
        if self.switches_used >= self.config.max_switches:
            return
        if self.config.signalling == "unordered":
            # Unordered mode (§5): every node self-elected at t=0, so all
            # merging is switching.  A childless singleton root dissolves
            # into a cluster within δ/2 — but only toward a smaller root id,
            # otherwise two adjacent roots dissolve into each other
            # simultaneously and both clusters shatter (the symmetry-break
            # every id-based coordination protocol uses).  Members switch
            # on improvement with no level-equality requirement.
            if self.is_cluster_root:
                if self._total_children() > 0:
                    return
                if not _id_less(root_id, self.node_id):
                    return
            else:
                current_distance = self.metric.distance(self.root_feature, self.feature)
                if distance_to_root + self.config.switch_threshold >= current_distance:
                    return
            self.switches_used += 1
            self.is_cluster_root = False
            self._join(message.src, root_feature, root_id, n, parent_episode)
            return
        # Switch guard (Fig 16): same sentinel level, improvement above the
        # threshold, switch budget remaining — and never abandon a cluster we
        # root (that would orphan the whole cluster).
        if self.is_cluster_root or n != self.m:
            return
        current_distance = self.metric.distance(self.root_feature, self.feature)
        if distance_to_root + self.config.switch_threshold >= current_distance:
            return
        self.switches_used += 1
        self._join(message.src, root_feature, root_id, n, parent_episode)

    def _total_children(self) -> int:
        return sum(episode.children for episode in self._episodes.values())

    def _join(
        self,
        via: Hashable,
        root_feature: np.ndarray,
        root_id: Hashable,
        n: int,
        parent_episode: int,
        repair_of: Hashable | None = None,
    ) -> None:
        if self._obs is not None:
            # Three flavours of membership change share this entry point:
            # first join, bounded switch, and post-crash repair rejoin.
            if repair_of is not None:
                kind = "elink.rejoin"
            elif self.clustered:
                kind = "elink.switch"
            else:
                kind = "elink.join"
            self._obs.emit(
                self.now,
                kind,
                self.node_id,
                root=root_id,
                via=via,
                level=n,
                old_root=self.root_id if self.clustered else None,
            )
        self.clustered = True
        self.root_id = root_id
        self.root_feature = root_feature
        self.m = n
        self.parent = via
        self.clustered_at = self.now
        self._open_episode(parent=via, parent_episode=parent_episode, repair_of=repair_of)

    def handle_ack1(self, message: Message) -> None:
        """A neighbour joined under this node; bump its episode's child count."""
        episode = self._episodes[message.payload]
        if episode.timeout_passed and not self.config.failure_detection:
            raise RuntimeError(
                f"node {self.node_id!r}: ack1 arrived after leaf timeout of episode "
                f"{episode.seq}; increase ack_window"
            )
        episode.children += 1
        if self.config.failure_detection:
            episode.child_ids[message.src] += 1
            if episode.timeout_passed and not episode.completed:
                # The join landed after the leaf timeout, so the timeout's
                # escalation check already ran (or was never armed): arm a
                # fresh escalation so this late child cannot stall us.
                self.set_timer(
                    self.config.ack_window * self.network.max_hop_delay,
                    self._escalate_episode,
                    episode.seq,
                )

    def handle_ack2(self, message: Message) -> None:
        """A child subtree finished growing; maybe complete the episode."""
        episode = self._episodes[message.payload]
        if episode.children <= 0:
            if self.config.failure_detection:
                # Late ack2 from a child we already pruned or force-closed.
                return
            raise RuntimeError(f"node {self.node_id!r}: ack2 underflow on episode {episode.seq}")
        episode.children -= 1
        if self.config.failure_detection and episode.child_ids.get(message.src, 0) > 0:
            episode.child_ids[message.src] -= 1
        self._maybe_complete_episode(episode)

    # ------------------------------------------------------------------
    # failure-detection plumbing: liveness traffic needs no reaction —
    # the synchronous link layer's send/route receipt IS the answer.
    # ------------------------------------------------------------------
    def handle_probe(self, message: Message) -> None:
        """Liveness probe from a waiting episode parent; nothing to do."""

    def handle_hb(self, message: Message) -> None:
        """Heartbeat from a cluster child; nothing to do."""

    def handle_probe_sentinel(self, message: Message) -> None:
        """Liveness probe from a quadtree aggregator; nothing to do."""

    # ------------------------------------------------------------------
    # Fig 18: quadtree synchronization (explicit mode)
    # ------------------------------------------------------------------
    def _expected_phase1(self, round_level: int) -> int:
        """Quad children whose subtree holds sentinels at *round_level*."""
        return sum(
            1
            for child in self.quad_children
            if self._child_subtree_max[child] >= round_level
        )

    def _send_phase1(self, round_level: int) -> None:
        if self.config.signalling != "explicit":
            return
        if self._obs is not None:
            self._obs.emit(self.now, "elink.phase1", self.node_id, round=round_level)
        self._phase1_sent = True
        if self.level == 0:
            # Quadtree root: its own round is complete the moment its
            # expansion ends (it is the only member of S_0).
            self._round_complete(round_level)
        else:
            self.route(self.quad_parent, "phase1", payload=round_level)

    def handle_phase1(self, message: Message) -> None:
        """Fig 18: aggregate round-completion reports up the quadtree."""
        round_level = message.payload
        got = self._phase1_received.get(round_level, 0) + 1
        self._phase1_received[round_level] = got
        if self.config.failure_detection:
            # Tolerant, identity-based aggregation: takeovers and repair
            # re-elections can shift who reports, so exact counting is
            # replaced by a senders ⊇ eligible-children check (idempotent,
            # duplicate-proof).
            self._phase1_senders.setdefault(round_level, set()).add(message.src)
            self._check_round_progress(round_level)
            return
        if got > self._expected_phase1(round_level):
            raise RuntimeError(
                f"node {self.node_id!r}: too many phase1({round_level}) messages"
            )
        if got == self._expected_phase1(round_level):
            if self.level == 0:
                self._round_complete(round_level)
            else:
                self.route(self.quad_parent, "phase1", payload=round_level)

    def _eligible_children(self, round_level: int) -> list[Hashable]:
        """Quad children whose subtree holds sentinels at *round_level*."""
        return [
            child
            for child in self.quad_children
            if self._child_subtree_max.get(child, -1) >= round_level
        ]

    def _check_round_progress(self, round_level: int) -> None:
        """Forward phase1 up (once) when every non-forgiven eligible quad
        child has reported for *round_level*."""
        if round_level in self._phase1_forwarded:
            return
        senders = self._phase1_senders.get(round_level, set())
        forgiven = self._phase1_forgiven.get(round_level, set())
        if all(
            child in senders
            for child in self._eligible_children(round_level)
            if child not in forgiven
        ):
            self._phase1_forwarded.add(round_level)
            if self.level == 0:
                self._round_complete(round_level)
            else:
                self.route(self.quad_parent, "phase1", payload=round_level)

    def _arm_phase_deadline(self, round_level: int) -> None:
        """Watch for the round's phase1 reports; fires bounded probes."""
        if round_level in self._deadline_attempts:
            return
        self._deadline_attempts[round_level] = 0
        self.set_timer(self._phase_patience, self._phase_deadline, round_level)

    def _phase_deadline(self, round_level: int) -> None:
        if round_level in self._phase1_forwarded:
            return
        senders = self._phase1_senders.get(round_level, set())
        forgiven = self._phase1_forgiven.setdefault(round_level, set())
        missing = [
            child
            for child in self._eligible_children(round_level)
            if child not in senders and child not in forgiven
        ]
        if not missing:
            self._check_round_progress(round_level)
            return
        attempts = self._deadline_attempts.get(round_level, 0) + 1
        self._deadline_attempts[round_level] = attempts
        for child in missing:
            if self.route(child, "probe_sentinel", payload=round_level) == -1:
                # Child sentinel dead/unreachable: try a cell takeover.
                if self._failover_sentinel(child, round_level) is None:
                    forgiven.add(child)
        if attempts >= self.config.ack_retries:
            # Budget spent: stop waiting for the stragglers.  Their
            # subtrees keep clustering locally; only round reporting is
            # abandoned (documented accounting approximation).
            for child in missing:
                forgiven.add(child)
        else:
            self.set_timer(self._phase_patience, self._phase_deadline, round_level)
        self._check_round_progress(round_level)

    def _failover_sentinel(self, dead: Hashable, round_level: int) -> Hashable | None:
        """Deterministic takeover: the next-eligible member of the dead
        sentinel's cell (closest to the cell centroid) adopts its role."""
        for candidate in self._cell_fallbacks.get(dead, ()):
            if candidate == self.node_id:
                continue
            if self.route(candidate, "takeover", payload=(dead, round_level)) != -1:
                self.quad_children = [
                    candidate if child == dead else child for child in self.quad_children
                ]
                self._note_repair("sentinel_failover", dead, by=candidate)
                return candidate
        return None

    def _static_subtree_contains(self, root: Hashable, target: Hashable) -> bool:
        """Whether *target* lies in *root*'s original quadtree subtree."""
        stack = [root]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            stack.extend(self._quad_children_of.get(node, ()))
        return False

    def handle_takeover(self, message: Message) -> None:
        """Adopt a dead sentinel's quadtree cell (role merge: the
        replacement keeps its own children and gains the dead node's)."""
        dead, round_level = message.payload
        if dead in self._taken_over:
            return
        self._taken_over.add(dead)
        if self._obs is not None:
            self._obs.emit(self.now, "elink.takeover", self.node_id, dead=dead, round=round_level)
        dead_level = self._quad_level_of.get(dead, self.level)
        dead_children = [
            child
            for child in self._quad_children_of.get(dead, [])
            # Never adopt ourselves, nor a child whose subtree contains us:
            # that would make us our own quadtree ancestor and cycle the
            # phase2/start wave.  Such a child's subtree keeps clustering
            # locally; only its round reporting is lost (bounded by the
            # prober's forgiveness budget).
            if child != self.node_id and not self._static_subtree_contains(child, self.node_id)
        ]
        self.level = min(self.level, dead_level)
        self.quad_parent = message.src
        self.quad_children = list(self.quad_children) + [
            child for child in dead_children if child not in self.quad_children
        ]
        self._child_subtree_max[self.node_id] = max(
            self._child_subtree_max.get(self.node_id, self.level),
            self._child_subtree_max.get(dead, dead_level),
        )
        self._phase1_sent = False
        self.start_elink()

    def _round_complete(self, round_level: int) -> None:
        """At the quadtree root: all of S_round_level finished expanding."""
        if self._obs is not None:
            self._obs.emit(
                self.now,
                "elink.round_done",
                self.node_id,
                round=round_level,
                final=round_level >= self.max_level,
            )
        if round_level >= self.max_level:
            if self.on_protocol_done is not None:
                self.on_protocol_done(self.now)
            return
        # phase2 travels down to the S_round_level sentinels, which then
        # start their S_{round_level+1} children.  The root is itself the
        # level-0 sentinel, so for round 0 it acts on phase2 directly.
        self._act_on_phase2(round_level)

    def _act_on_phase2(self, round_level: int) -> None:
        if self.config.failure_detection:
            # Takeover rewiring can (transiently) put a node on two quadtree
            # paths; acting once per round keeps the completion wave from
            # circulating forever; in fault-free trees this is a no-op.
            if round_level in self._phase2_acted:
                return
            self._phase2_acted.add(round_level)
        if self._obs is not None:
            self._obs.emit(self.now, "elink.phase2", self.node_id, round=round_level)
        if self.level == round_level:
            for child in self.quad_children:
                self.route(child, "start")
        else:
            for child in self.quad_children:
                if self._child_subtree_max[child] >= round_level:
                    self.route(child, "phase2", payload=round_level)
        if self.config.failure_detection and self._eligible_children(round_level + 1):
            # We just kicked off (or relayed) round round_level+1 and will
            # be waiting on its phase1 reports: arm the watchdog.
            self._arm_phase_deadline(round_level + 1)

    def handle_phase2(self, message: Message) -> None:
        """Fig 18: forward the round-completion wave down the quadtree."""
        self._act_on_phase2(message.payload)

    def handle_start(self, message: Message) -> None:
        """Fig 18: quadtree parent says this sentinel's round begins."""
        self._phase1_sent = False  # new round for this sentinel
        self.start_elink()

    # Bound by the runner: mapping quad child -> subtree max level.
    _child_subtree_max: Mapping[Hashable, int] = {}
    # Bound by the runner when failure detection is on (class-level inert
    # defaults keep the zero-fault path untouched):
    _quad_level_of: Mapping[Hashable, int] = {}  # node -> sentinel level
    _quad_children_of: Mapping[Hashable, list] = {}  # node -> quad children
    _cell_fallbacks: Mapping[Hashable, tuple] = {}  # sentinel -> takeover order
    _fault_injector = None  # FaultInjector for repair-latency bookkeeping
    _phase_patience: float = 25.0  # round watchdog period (runner sets ~2.5κ)


def _id_less(a: Hashable, b: Hashable) -> bool:
    """Total order on node ids (falls back to repr for mixed types)."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return repr(a) < repr(b)


def compute_kappa(n: int, gamma: float, hop_delay: float = 1.0) -> float:
    """κ = (1+γ)·√(N/2) — worst-case root-to-anywhere clustering time (§4)."""
    return (1.0 + gamma) * math.sqrt(n / 2.0) * hop_delay


def implicit_schedule(n: int, depth: int, gamma: float, hop_delay: float = 1.0) -> list[float]:
    """Start times ``T_l = Σ_{j<l} t_j`` for sentinel levels 0..depth (§4)."""
    kappa = compute_kappa(n, gamma, hop_delay)
    durations = [kappa * (2.0 - 2.0 ** (-level)) for level in range(depth + 1)]
    starts = [0.0]
    for level in range(1, depth + 1):
        starts.append(starts[-1] + durations[level - 1])
    return starts


def run_elink(
    topology: Topology,
    features: Mapping[Hashable, np.ndarray],
    metric: Metric,
    config: ELinkConfig,
    *,
    quadtree: QuadTreeDecomposition | None = None,
    network: Network | None = None,
    injector: "FaultInjector | None" = None,
    tracer: "Tracer | None" = None,
) -> ELinkResult:
    """Run ELink over *topology* and return the resulting δ-clustering.

    Message costs are **measured** on the simulated network, not computed
    from the paper's closed forms.  The returned
    :attr:`ELinkResult.protocol_time` is the simulated completion time: for
    implicit signalling the time the last node joined a cluster plus the
    final level's allotted window; for explicit signalling the time the
    root learns the final round finished.

    With *injector* (a :class:`repro.sim.faults.FaultInjector`), its fault
    plan is armed on the kernel before the protocol starts; note the
    injector mutates the network's graph in place, so pass a network built
    over a copy if the topology is reused.  When nodes crashed during the
    run, the clustering is assembled over the *surviving* subgraph only
    (crashed roots keep contributing their feature as the pruning feature
    of their stranded members, so every emitted cluster is still a valid
    δ-cluster).  An empty plan schedules nothing: byte-identical to no
    injector at all.

    With *tracer* (a :class:`repro.obs.trace.Tracer`), the run is traced
    end to end — message traffic, timers, faults, ELink phase transitions
    — and can be exported with ``tracer.export_jsonl`` for ``python -m
    repro trace``.  The tracer is attached before any node registers, so
    passing it here is equivalent to building the network with it.  No
    tracer (the default) leaves the run byte-identical to pre-tracing
    builds.
    """
    missing = set(topology.graph.nodes) - set(features)
    if missing:
        raise ValueError(f"features missing for nodes: {sorted(missing, key=repr)[:5]}")
    if quadtree is None:
        quadtree = QuadTreeDecomposition(topology)
    if network is None:
        network = injector.network if injector is not None else Network(topology.graph)
    elif injector is not None and injector.network is not network:
        raise ValueError("injector must be bound to the network running the protocol")
    if tracer is not None:
        network.tracer = tracer
    # The verification hook (lazy import: repro.verify imports run_elink for
    # its replay harness).  With REPRO_VERIFY unset this is None and the run
    # is byte-identical to an unverified build.
    from repro.verify.runtime import runtime_verifier

    verifier = runtime_verifier()
    if verifier is not None:
        # Attach before any node registers: nodes cache the network tracer
        # at registration, so a verifier-installed tracer must exist first.
        verifier.attach(network)
    start_stats = network.stats.snapshot()
    if injector is not None:
        injector.arm()

    if config.vectorized is not False and injector is None:
        # Batched round processor (DESIGN.md §8.2).  Declines — returning
        # None with nothing consumed — whenever the scenario needs
        # per-message handlers (jitter, loss, faults, tracing, unordered
        # signalling, k-d features); certified identical when it engages.
        from repro.core.elink_vec import try_run_vectorized

        vec_result = try_run_vectorized(
            topology,
            features,
            metric,
            config,
            quadtree=quadtree,
            network=network,
            start_stats=start_stats,
        )
        if vec_result is not None:
            return vec_result

    # Subtree max levels for the phase1 expectation counts, filled deepest
    # level first so children are ready before their parents.
    subtree_max: dict[Hashable, int] = {}
    order = sorted(quadtree.level_of, key=lambda v: -quadtree.level_of[v])
    for node in order:
        level = quadtree.level_of[node]
        best = level
        for child in quadtree.quad_children.get(node, []):
            best = max(best, subtree_max[child])
        subtree_max[node] = best

    depth = quadtree.depth
    nodes: dict[Hashable, ELinkNode] = {}
    for node_id in topology.graph.nodes:
        elink_node = ELinkNode(
            node_id,
            network,
            np.asarray(features[node_id], dtype=np.float64),
            metric=metric,
            config=config,
            level=quadtree.level_of[node_id],
            quad_parent=quadtree.quad_parent[node_id],
            quad_children=quadtree.quad_children.get(node_id, []),
            subtree_max_level=subtree_max[node_id],
            max_level=depth,
        )
        elink_node._child_subtree_max = subtree_max
        nodes[node_id] = elink_node

    protocol_done_at: list[float] = []
    root_sentinel = quadtree.root
    nodes[root_sentinel].on_protocol_done = protocol_done_at.append

    n = topology.num_nodes
    if config.failure_detection or injector is not None:
        # Bind the repair registries: cell-takeover orders (cell members by
        # distance to the cell centroid, deterministic tie-break on repr),
        # the quadtree role maps a replacement needs to adopt a dead
        # sentinel's cell, and a round-watchdog patience of ~2.5κ (one
        # worst-case round is 2κ).
        positions = topology.positions
        cell_fallbacks: dict[Hashable, tuple] = {}
        for cells in quadtree._cells_by_level:
            for cell in cells:
                if cell.leader is None:
                    continue
                cx, cy = cell.centroid
                members = [v for v in cell.members if v != cell.leader]
                members.sort(
                    key=lambda v: (
                        (positions[v][0] - cx) ** 2 + (positions[v][1] - cy) ** 2,
                        repr(v),
                    )
                )
                cell_fallbacks[cell.leader] = tuple(members)
        patience = max(
            3.0 * config.ack_window * network.max_hop_delay,
            2.5 * compute_kappa(n, config.gamma, network.hop_delay),
        )
        for elink_node in nodes.values():
            elink_node._cell_fallbacks = cell_fallbacks
            elink_node._quad_level_of = quadtree.level_of
            elink_node._quad_children_of = quadtree.quad_children
            elink_node._fault_injector = injector
            elink_node._phase_patience = patience

    # Start timers are owned by their sentinel, so a crash cancels the
    # node's pending start (schedule_owned wraps the same kernel.schedule
    # call: identical event sequence numbers, byte-identical zero-fault).
    if config.signalling == "implicit":
        starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
        for level, sentinels in enumerate(quadtree.sentinel_sets):
            for sentinel in sentinels:
                network.schedule_owned(
                    sentinel,
                    max(starts[level] - network.kernel.now, 0.0),
                    nodes[sentinel].start_elink,
                )
    elif config.signalling == "unordered":
        for sentinels in quadtree.sentinel_sets:
            for sentinel in sentinels:
                network.schedule_owned(sentinel, 0.0, nodes[sentinel].start_elink)
    else:
        network.schedule_owned(root_sentinel, 0.0, nodes[root_sentinel].start_elink)

    event_budget = 200 * n * (depth + 2) + 10_000
    if config.failure_detection or injector is not None:
        event_budget *= 4  # heartbeats/probes/watchdogs add bounded traffic
    network.run(max_events=event_budget)

    # Assemble the clustering from final node states.
    if network.dead_nodes:
        # Fault-aware assembly: survivors only, over the surviving graph.
        # A dead root's feature is recovered from any member's stored copy
        # so its stranded members keep their δ/2 pruning guarantee; nodes
        # the faults left unclustered become singletons.
        dead = network.dead_nodes
        assignment = {}
        parents = {}
        feature_map = {}
        root_feature_map = {}
        for node_id, node in nodes.items():
            if node_id in dead:
                continue
            root = node.root_id if node.root_id is not None else node_id
            assignment[node_id] = root
            parents[node_id] = node.parent if node.parent is not None else node_id
            feature_map[node_id] = node.feature
            root_feature_map.setdefault(
                root, node.root_feature if node.root_feature is not None else node.feature
            )
        clustering = clustering_from_assignment(
            network.graph,
            assignment,
            feature_map,
            root_features=root_feature_map,
            parents=parents,
        )
    else:
        assignment = {node_id: node.root_id for node_id, node in nodes.items()}
        parents = {
            node_id: (node.parent if node.parent is not None else node_id)
            for node_id, node in nodes.items()
        }
        root_feature_map = {
            node_id: node.feature for node_id, node in nodes.items() if node.is_cluster_root
        }
        feature_map = {node_id: node.feature for node_id, node in nodes.items()}
        clustering = clustering_from_assignment(
            topology.graph,
            assignment,
            feature_map,
            root_features=root_feature_map,
            parents=parents,
        )
    repaired = clustering.num_clusters - len(set(assignment.values()))
    if network._tracer is not None:
        network._tracer.emit(
            network.kernel.now,
            "elink.assembled",
            None,
            clusters=clustering.num_clusters,
            survivors=len(assignment),
            dead=len(network.dead_nodes),
        )
    if verifier is not None:
        # Verify over the population the clustering was assembled on: the
        # surviving subgraph after faults, the full topology otherwise.
        verifier.finish(
            network=network,
            graph=network.graph if network.dead_nodes else topology.graph,
            clustering=clustering,
            features=feature_map,
            metric=metric,
            delta=config.delta,
        )

    completion_time = max(
        (
            node.clustered_at
            for node_id, node in nodes.items()
            if node.clustered_at is not None and node_id not in network.dead_nodes
        ),
        default=0.0,
    )
    if config.signalling == "implicit":
        kappa = compute_kappa(n, config.gamma, network.hop_delay)
        starts = implicit_schedule(n, depth, config.gamma, network.hop_delay)
        protocol_time = starts[-1] + kappa * (2.0 - 2.0 ** (-depth))
    elif config.signalling == "unordered":
        # §5: simultaneous expansion finishes within 2κ — the measured
        # completion time is the protocol time.
        protocol_time = completion_time
    else:
        protocol_time = protocol_done_at[0] if protocol_done_at else network.kernel.now

    return ELinkResult(
        clustering=clustering,
        stats=network.stats.diff(start_stats),
        completion_time=completion_time,
        protocol_time=protocol_time,
        total_switches=sum(
            node.switches_used
            for node_id, node in nodes.items()
            if node_id not in network.dead_nodes
        ),
        repaired_components=max(repaired, 0),
        config=config,
    )

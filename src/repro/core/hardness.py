"""Theorem 1 machinery: NP-completeness of δ-clustering, and exact solvers.

The paper proves δ-clustering NP-complete (and inapproximable within
``n^φ``) by reduction from **clique cover**: given a clique-cover instance
``(G, c)``, build a δ-clustering instance whose communication graph is a
clique, with distances

    d(i, j) = 1  if (i, j) ∈ E(G),   2 otherwise,   δ = 1.

The 1/2-valued distances always satisfy the triangle inequality, and a
partition into *m* δ-clusters exists iff *G* has a clique cover of size
*m*.  This module implements the reduction (both directions), a
brute-force optimal δ-clustering solver for small instances, and an
optimal clique-cover solver — used by the tests to machine-check the
reduction and by the ablation benchmark to measure ELink's optimality gap.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro._validation import require_int_at_least, require_positive
from repro.features.metrics import MatrixMetric, Metric


def clique_cover_to_delta_clustering(
    graph: nx.Graph,
) -> tuple[nx.Graph, MatrixMetric, float]:
    """Map a clique-cover instance to a δ-clustering instance (Theorem 1).

    Returns ``(CG, metric, delta)``: *CG* is a clique over *graph*'s
    vertices, the metric gives distance 1 to *graph*-edges and 2 to
    non-edges, and δ = 1.  Partitions of *CG* into m δ-clusters correspond
    one-to-one to clique covers of *graph* of size m.
    """
    nodes = list(graph.nodes)
    if not nodes:
        raise ValueError("graph must have at least one vertex")
    communication = nx.complete_graph(nodes) if len(nodes) > 1 else nx.Graph()
    if len(nodes) == 1:
        communication.add_node(nodes[0])
    table: dict[tuple[Hashable, Hashable], float] = {}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            table[(a, b)] = 1.0 if graph.has_edge(a, b) else 2.0
    metric = MatrixMetric(table, check_triangle=False)  # {1,2} is always metric
    return communication, metric, 1.0


def delta_clustering_to_clique_cover(
    communication: nx.Graph,
    features: Mapping[Hashable, Hashable],
    metric: Metric,
    delta: float,
) -> nx.Graph:
    """The reverse view: the *compatibility graph* of a δ-clustering instance.

    Vertices are sensors; an edge joins *i* and *j* iff they are adjacent in
    the communication graph's transitive sense needed for co-clustering —
    for a clique communication graph this reduces to ``d(F_i, F_j) <= δ``,
    and δ-clusterings of the instance are exactly clique covers of this
    graph.  (For general communication graphs the correspondence is only
    one-way: every δ-cluster is a clique here, but a clique need not induce
    a connected communication subgraph.)
    """
    require_positive(delta, "delta")
    compatibility = nx.Graph()
    nodes = list(communication.nodes)
    compatibility.add_nodes_from(nodes)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if metric.distance(features[a], features[b]) <= delta:
                compatibility.add_edge(a, b)
    return compatibility


def optimal_delta_clustering(
    graph: nx.Graph,
    features: Mapping[Hashable, Hashable],
    metric: Metric,
    delta: float,
    *,
    max_nodes: int = 16,
) -> list[set[Hashable]]:
    """Exact minimum δ-clustering by branch and bound (small instances only).

    Enumerates partitions with a first-element canonical ordering and
    prunes on the incumbent size; validity (connected induced subgraph +
    pairwise δ) is checked incrementally.  Exponential — guarded by
    *max_nodes*.
    """
    require_positive(delta, "delta")
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    require_int_at_least(max_nodes, 1, "max_nodes")
    if n > max_nodes:
        raise ValueError(
            f"exact solver limited to {max_nodes} nodes (got {n}); "
            "it exists for ground truth on small instances only"
        )
    if n == 0:
        return []

    best: list[list[set[Hashable]]] = [[{v} for v in nodes]]

    def compatible(cluster: set[Hashable], candidate: Hashable) -> bool:
        # Distance compatibility is monotone, so it is safe to prune on;
        # connectivity is not (it can arrive through later members), so it
        # is only checked when a partition closes.
        return all(
            metric.distance(features[candidate], features[member]) <= delta
            for member in cluster
        )

    def cluster_connected(cluster: set[Hashable]) -> bool:
        return nx.is_connected(graph.subgraph(cluster))

    def search(remaining: list[Hashable], clusters: list[set[Hashable]]) -> None:
        if len(clusters) >= len(best[0]):
            return  # cannot improve on the incumbent
        if not remaining:
            if all(cluster_connected(c) for c in clusters):
                best[0] = [set(c) for c in clusters]
            return
        head, rest = remaining[0], remaining[1:]
        # Join an existing cluster...
        for cluster in clusters:
            if compatible(cluster, head):
                cluster.add(head)
                search(rest, clusters)
                cluster.remove(head)
        # ...or open a new one.
        clusters.append({head})
        search(rest, clusters)
        clusters.pop()

    search(nodes, [])
    # Filter: the incumbent from initialization is valid only if connected
    # (singletons always are).
    return best[0]


def optimal_clique_cover(graph: nx.Graph, *, max_nodes: int = 16) -> list[set[Hashable]]:
    """Exact minimum clique cover (= chromatic number of the complement).

    Brute force with the same canonical enumeration as the δ solver;
    used to machine-check the Theorem 1 correspondence.
    """
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n > max_nodes:
        raise ValueError(f"exact solver limited to {max_nodes} nodes (got {n})")
    if n == 0:
        return []
    best: list[list[set[Hashable]]] = [[{v} for v in nodes]]

    def search(remaining: list[Hashable], cliques: list[set[Hashable]]) -> None:
        if len(cliques) >= len(best[0]):
            return
        if not remaining:
            best[0] = [set(c) for c in cliques]
            return
        head, rest = remaining[0], remaining[1:]
        for clique in cliques:
            if all(graph.has_edge(head, member) for member in clique):
                clique.add(head)
                search(rest, cliques)
                clique.remove(head)
        cliques.append({head})
        search(rest, cliques)
        cliques.pop()

    search(nodes, [])
    return best[0]


def verify_reduction(graph: nx.Graph) -> tuple[int, int]:
    """Machine-check Theorem 1 on *graph*: solve clique cover directly and
    through the δ-clustering mapping; returns both optimum sizes (equal iff
    the reduction is answer-preserving, which the tests assert)."""
    communication, metric, delta = clique_cover_to_delta_clustering(graph)
    features = {v: v for v in communication.nodes}
    clusters = optimal_delta_clustering(communication, features, metric, delta)
    cover = optimal_clique_cover(graph)
    return len(clusters), len(cover)

"""The paper's primary contribution: δ-clustering with ELink + maintenance."""

from repro.core.delta import (
    Clustering,
    ClusteringViolation,
    check_delta_compact,
    clustering_from_assignment,
    validate_clustering,
)
from repro.core.elink import (
    ELinkConfig,
    ELinkNode,
    ELinkResult,
    compute_kappa,
    implicit_schedule,
    run_elink,
)
from repro.core.hardness import (
    clique_cover_to_delta_clustering,
    delta_clustering_to_clique_cover,
    optimal_clique_cover,
    optimal_delta_clustering,
    verify_reduction,
)
from repro.core.maintenance import (
    CentralizedUpdateBaseline,
    MaintenanceSession,
    UpdateOutcome,
)
from repro.core.representatives import AcquisitionPlan, RepresentativeSampler

__all__ = [
    "AcquisitionPlan",
    "CentralizedUpdateBaseline",
    "Clustering",
    "ClusteringViolation",
    "ELinkConfig",
    "ELinkNode",
    "ELinkResult",
    "MaintenanceSession",
    "RepresentativeSampler",
    "UpdateOutcome",
    "check_delta_compact",
    "clique_cover_to_delta_clustering",
    "clustering_from_assignment",
    "compute_kappa",
    "delta_clustering_to_clique_cover",
    "implicit_schedule",
    "optimal_clique_cover",
    "optimal_delta_clustering",
    "run_elink",
    "validate_clustering",
    "verify_reduction",
]

"""Representative sampling over a δ-clustering (paper §1 motivation).

"Instead of gathering data from every node in the cluster, only a set of
cluster representatives need to be sampled" — the acquisition-cost payoff
the paper's introduction promises from spatial clustering.  δ-compactness
makes the payoff *quantifiable*: every member's feature is within δ of its
cluster representative's feature (pairwise compactness), and within δ/2 of
the root's pruning feature for ELink clusterings, so answering a
feature-level question from representatives alone carries a bounded error.

:class:`RepresentativeSampler` plans the acquisition (which nodes to
sample, what it costs to collect them at a base station versus sampling
everyone) and reconstructs the full feature field from a representative
sample with the guaranteed error bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro.core.delta import Clustering
from repro.features.metrics import Metric


@dataclass(frozen=True)
class AcquisitionPlan:
    """Which nodes to sample and what the round costs."""

    representatives: tuple[Hashable, ...]
    sampled_fraction: float  # representatives / all nodes
    full_collection_cost: int  # values x hops, everyone ships to base
    representative_collection_cost: int  # only representatives ship

    @property
    def cost_reduction(self) -> float:
        """Full-collection cost over representative-collection cost."""
        if self.representative_collection_cost == 0:
            return float("inf")
        return self.full_collection_cost / self.representative_collection_cost


class RepresentativeSampler:
    """Plan and evaluate representative-only data acquisition."""

    def __init__(
        self,
        graph: nx.Graph,
        clustering: Clustering,
        metric: Metric,
        *,
        feature_dim: int = 1,
    ):
        self.graph = graph
        self.clustering = clustering
        self.metric = metric
        self.feature_dim = feature_dim

    def plan(self, base_station: Hashable) -> AcquisitionPlan:
        """Cost of collecting representatives vs everyone at *base_station*."""
        hops = nx.single_source_shortest_path_length(self.graph, base_station)
        full = sum(
            self.feature_dim * max(h, 1) for node, h in hops.items() if node != base_station
        )
        roots = tuple(sorted(self.clustering.roots, key=repr))
        representative = sum(
            self.feature_dim * max(hops[root], 1)
            for root in roots
            if root != base_station
        )
        return AcquisitionPlan(
            representatives=roots,
            sampled_fraction=len(roots) / max(len(self.clustering.assignment), 1),
            full_collection_cost=full,
            representative_collection_cost=representative,
        )

    def reconstruct(
        self,
        sampled: Mapping[Hashable, np.ndarray],
        *,
        partial: bool = False,
    ) -> dict[Hashable, np.ndarray]:
        """Estimate every node's feature from its cluster's representative.

        *sampled* must contain a feature for every cluster root.  The
        estimate for each node is its root's sampled feature; by pairwise
        δ-compactness the error is at most δ per node (checked by
        :meth:`reconstruction_error` and the tests).

        With ``partial=True`` (degraded operation: some representatives
        crashed before reporting), missing roots are tolerated and their
        clusters are simply absent from the result — pair with
        :meth:`coverage` to report the answered fraction.
        """
        missing = set(self.clustering.roots) - set(sampled)
        if missing and not partial:
            raise ValueError(
                f"sample missing cluster roots: {sorted(missing, key=repr)[:5]}"
            )
        return {
            node: np.asarray(sampled[root], dtype=np.float64)
            for node in self.clustering.assignment
            if (root := self.clustering.root_of(node)) in sampled
        }

    def coverage(self, sampled: Mapping[Hashable, np.ndarray]) -> float:
        """Fraction of nodes whose cluster representative reported."""
        total = len(self.clustering.assignment)
        if total == 0:
            return 1.0
        answered = sum(
            1
            for node in self.clustering.assignment
            if self.clustering.root_of(node) in sampled
        )
        return answered / total

    def reconstruction_error(
        self, true_features: Mapping[Hashable, np.ndarray]
    ) -> dict[Hashable, float]:
        """Per-node error of the representative estimate against truth."""
        sampled = {root: true_features[root] for root in self.clustering.roots}
        estimates = self.reconstruct(sampled)
        return {
            node: self.metric.distance(true_features[node], estimates[node])
            for node in self.clustering.assignment
        }

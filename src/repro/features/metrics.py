"""Metric distances between node features (paper §2.2).

A *feature* is the coefficient vector of a node's fitted data model (or, for
static datasets such as elevation, a 1-d value).  Clustering operates on a
metric ``d(F_i, F_j)`` over features; the paper motivates a **weighted
Euclidean** distance that emphasises higher-order model coefficients, and
formulates everything over general metric spaces.

This module provides the metrics used throughout the reproduction:

- :class:`EuclideanMetric`
- :class:`ManhattanMetric`
- :class:`WeightedEuclideanMetric` — the paper's choice; the Tao experiment
  uses weights ``(0.5, 0.3, 0.2, 0.1)``.
- :class:`MatrixMetric` — an explicit distance-matrix lookup, used for the
  worked examples (Figs 3 and 5) and for the NP-hardness reduction where
  distances take only the values 1 and 2.

All metrics satisfy positivity, symmetry and the triangle inequality; the
property-based tests in ``tests/test_metrics.py`` check these on random
inputs, and :func:`check_metric_axioms` performs the same check on a concrete
sample of features.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro._validation import require_non_empty

#: Features are accepted as anything convertible to a 1-d float array.
FeatureLike = Sequence[float] | np.ndarray | float

_FLOAT64 = np.dtype(np.float64)


def _coerce_pair(a: FeatureLike, b: FeatureLike) -> tuple[np.ndarray, np.ndarray]:
    """Feature pair for a distance computation.

    Already-valid 1-d float64 arrays (the long-lived per-node feature
    vectors every hot loop passes) are returned as-is; anything else goes
    through the full :func:`as_feature` coercion and validation.
    """
    if (
        type(a) is np.ndarray
        and type(b) is np.ndarray
        and a.dtype == _FLOAT64
        and b.dtype == _FLOAT64
        and a.ndim == 1
        and b.ndim == 1
    ):
        return a, b
    return as_feature(a), as_feature(b)


def as_feature(value: FeatureLike) -> np.ndarray:
    """Coerce *value* to a 1-d float64 feature vector.

    Scalars become length-1 vectors so that static datasets (e.g. elevation)
    use the same code paths as model-coefficient features.
    """
    array = np.atleast_1d(np.asarray(value, dtype=np.float64))
    if array.ndim != 1:
        raise ValueError(f"feature must be a scalar or 1-d vector, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"feature must be finite, got {array!r}")
    return array


def _check_same_dim(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"feature dimensions differ: {a.shape[0]} vs {b.shape[0]}")


class Metric:
    """Base class for feature metrics.

    Subclasses implement :meth:`distance`.  ``pairwise`` has a generic
    fallback; array-based metrics override it with a vectorized version.
    """

    def distance(self, a: FeatureLike, b: FeatureLike) -> float:
        """Metric distance between two features."""
        raise NotImplementedError

    def __call__(self, a: FeatureLike, b: FeatureLike) -> float:
        return self.distance(a, b)

    def pairwise(self, features: Sequence[FeatureLike]) -> np.ndarray:
        """Return the symmetric matrix of distances between all *features*."""
        items = require_non_empty(features, "features")
        n = len(items)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = out[j, i] = self.distance(items[i], items[j])
        return out

    def pairwise_matrix(self, matrix: np.ndarray) -> np.ndarray | None:
        """All-pairs distances over the rows of a prebuilt (n, d) matrix.

        Returns None when the metric has no vectorized form (e.g.
        :class:`MatrixMetric`, whose features are node ids, not vectors);
        callers then fall back to per-pair :meth:`distance`.
        """
        return None


class EuclideanMetric(Metric):
    """Plain Euclidean distance between feature vectors."""

    def distance(self, a: FeatureLike, b: FeatureLike) -> float:
        """Metric distance between two features."""
        # _coerce_pair and _check_same_dim are inlined: this is the hottest
        # scalar call in the codebase and the two extra frames are measurable.
        if (
            type(a) is np.ndarray
            and type(b) is np.ndarray
            and a.dtype == _FLOAT64
            and b.dtype == _FLOAT64
            and a.ndim == 1
            and b.ndim == 1
        ):
            va, vb = a, b
        else:
            va, vb = as_feature(a), as_feature(b)
        if va.shape != vb.shape:
            raise ValueError(f"feature dimensions differ: {va.shape[0]} vs {vb.shape[0]}")
        if va.shape[0] == 1:
            # sqrt((a-b)^2) is exactly |a-b| in IEEE-754, so the scalar
            # form is bitwise identical to the vector form below.
            return abs(float(va[0]) - float(vb[0]))
        diff = va - vb
        # math.sqrt and np.sqrt are both correctly-rounded IEEE-754 sqrt,
        # so swapping in the cheaper scalar call cannot change a bit.
        return math.sqrt(np.dot(diff, diff))

    def pairwise(self, features: Sequence[FeatureLike]) -> np.ndarray:
        """Vectorized all-pairs distance matrix."""
        items = require_non_empty(features, "features")
        matrix = np.asarray([as_feature(f) for f in items], dtype=np.float64)
        return self.pairwise_matrix(matrix)

    def pairwise_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized all-pairs distances over the rows of an (n, d) matrix."""
        diff = matrix[:, None, :] - matrix[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def __repr__(self) -> str:
        return "EuclideanMetric()"


class ManhattanMetric(Metric):
    """L1 distance between feature vectors."""

    def distance(self, a: FeatureLike, b: FeatureLike) -> float:
        """Metric distance between two features."""
        va, vb = _coerce_pair(a, b)
        _check_same_dim(va, vb)
        return float(np.sum(np.abs(va - vb)))

    def pairwise(self, features: Sequence[FeatureLike]) -> np.ndarray:
        """Vectorized all-pairs distance matrix."""
        items = require_non_empty(features, "features")
        matrix = np.asarray([as_feature(f) for f in items], dtype=np.float64)
        return self.pairwise_matrix(matrix)

    def pairwise_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized all-pairs distances over the rows of an (n, d) matrix."""
        return np.sum(np.abs(matrix[:, None, :] - matrix[None, :, :]), axis=-1)

    def __repr__(self) -> str:
        return "ManhattanMetric()"


class WeightedEuclideanMetric(Metric):
    """Weighted Euclidean distance ``sqrt(sum_k w_k (a_k - b_k)^2)``.

    The paper uses this to weight higher-order model coefficients more
    heavily; the Tao experiment uses weights ``(0.5, 0.3, 0.2, 0.1)``.
    Weights must be positive — a zero weight would collapse a coordinate and
    break the positivity axiom of the metric.
    """

    def __init__(self, weights: Sequence[float]):
        array = np.asarray(list(weights), dtype=np.float64)
        if array.ndim != 1 or array.size == 0:
            raise ValueError("weights must be a non-empty 1-d sequence")
        if not np.all(np.isfinite(array)) or np.any(array <= 0):
            raise ValueError(f"weights must be finite and > 0, got {array!r}")
        self.weights = array

    def distance(self, a: FeatureLike, b: FeatureLike) -> float:
        """Metric distance between two features."""
        # Inlined coercion/validation, as in EuclideanMetric.distance.
        if (
            type(a) is np.ndarray
            and type(b) is np.ndarray
            and a.dtype == _FLOAT64
            and b.dtype == _FLOAT64
            and a.ndim == 1
            and b.ndim == 1
        ):
            va, vb = a, b
        else:
            va, vb = as_feature(a), as_feature(b)
        if va.shape != vb.shape:
            raise ValueError(f"feature dimensions differ: {va.shape[0]} vs {vb.shape[0]}")
        if va.shape != self.weights.shape:
            raise ValueError(
                f"feature dimension {va.shape[0]} does not match "
                f"weight dimension {self.weights.shape[0]}"
            )
        diff = va - vb
        return math.sqrt(np.dot(self.weights, diff * diff))

    def pairwise(self, features: Sequence[FeatureLike]) -> np.ndarray:
        """Vectorized all-pairs distance matrix."""
        items = require_non_empty(features, "features")
        matrix = np.asarray([as_feature(f) for f in items], dtype=np.float64)
        return self.pairwise_matrix(matrix)

    def pairwise_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized all-pairs distances over the rows of an (n, d) matrix."""
        diff = matrix[:, None, :] - matrix[None, :, :]
        return np.sqrt(np.einsum("k,ijk->ij", self.weights, diff * diff))

    def __repr__(self) -> str:
        return f"WeightedEuclideanMetric(weights={self.weights.tolist()})"


class MatrixMetric(Metric):
    """Distance defined by an explicit lookup table over node identifiers.

    Features under this metric are hashable node ids rather than coefficient
    vectors.  Used to reproduce the paper's worked examples (Fig 3, Fig 5)
    and the clique-cover reduction of Theorem 1.  The table is validated for
    symmetry, zero diagonal and (optionally) the triangle inequality.
    """

    def __init__(
        self,
        distances: Mapping[tuple[Hashable, Hashable], float],
        *,
        check_triangle: bool = True,
    ):
        table: dict[tuple[Hashable, Hashable], float] = {}
        nodes: set[Hashable] = set()
        for (a, b), value in distances.items():
            if value < 0:
                raise ValueError(f"distance d({a!r},{b!r}) must be >= 0, got {value}")
            if a == b and value != 0:
                raise ValueError(f"self-distance d({a!r},{a!r}) must be 0, got {value}")
            table[(a, b)] = float(value)
            table[(b, a)] = float(value)
            nodes.update((a, b))
        for (a, b) in list(table):
            if (b, a) in distances and distances[(b, a)] != table[(a, b)]:
                raise ValueError(f"asymmetric distances given for pair ({a!r}, {b!r})")
        self._table = table
        self.nodes = frozenset(nodes)
        if check_triangle:
            self._check_triangle()

    def _check_triangle(self) -> None:
        nodes = sorted(self.nodes, key=repr)
        for a in nodes:
            for b in nodes:
                if a == b or (a, b) not in self._table:
                    continue
                for c in nodes:
                    if c in (a, b):
                        continue
                    if (a, c) in self._table and (c, b) in self._table:
                        if self._table[(a, b)] > self._table[(a, c)] + self._table[(c, b)] + 1e-12:
                            raise ValueError(
                                f"triangle inequality violated: d({a!r},{b!r}) > "
                                f"d({a!r},{c!r}) + d({c!r},{b!r})"
                            )

    def distance(self, a: Hashable, b: Hashable) -> float:
        """Metric distance between two features."""
        if a == b:
            return 0.0
        try:
            return self._table[(a, b)]
        except KeyError:
            raise KeyError(f"no distance defined between {a!r} and {b!r}") from None

    def __repr__(self) -> str:
        return f"MatrixMetric(<{len(self.nodes)} nodes>)"


def check_metric_axioms(
    metric: Metric, features: Sequence[FeatureLike], *, tolerance: float = 1e-9
) -> None:
    """Raise ``AssertionError`` if *metric* violates the metric axioms on *features*.

    Checks identity of indiscernibles (d(x, x) == 0), non-negativity,
    symmetry and the triangle inequality over every triple.  Intended for
    tests and for validating user-supplied metrics on a data sample.
    """
    items = require_non_empty(features, "features")
    n = len(items)
    for i in range(n):
        assert abs(metric.distance(items[i], items[i])) <= tolerance, "d(x,x) != 0"
        for j in range(n):
            dij = metric.distance(items[i], items[j])
            dji = metric.distance(items[j], items[i])
            assert dij >= -tolerance, "negative distance"
            assert abs(dij - dji) <= tolerance, "asymmetric distance"
    for i in range(n):
        for j in range(n):
            dij = metric.distance(items[i], items[j])
            for k in range(n):
                dik = metric.distance(items[i], items[k])
                dkj = metric.distance(items[k], items[j])
                assert dij <= dik + dkj + tolerance, "triangle inequality violated"

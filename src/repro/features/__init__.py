"""Features and metric distances (paper §2.2)."""

from repro.features.metrics import (
    EuclideanMetric,
    FeatureLike,
    ManhattanMetric,
    MatrixMetric,
    Metric,
    WeightedEuclideanMetric,
    as_feature,
    check_metric_axioms,
)

#: Weight vector the paper uses for the Tao dataset's 4-coefficient feature.
TAO_WEIGHTS = (0.5, 0.3, 0.2, 0.1)

__all__ = [
    "EuclideanMetric",
    "FeatureLike",
    "ManhattanMetric",
    "MatrixMetric",
    "Metric",
    "TAO_WEIGHTS",
    "WeightedEuclideanMetric",
    "as_feature",
    "check_metric_axioms",
]

"""Synthetic spatially-uncorrelated dataset (paper §8.1).

Faithful implementation of the paper's generator: networks of 100–800
nodes placed uniformly at random (densities 0.7–0.9, ~4 radio neighbours),
with per-node data

    x_t = α_i · x_{t-1} + e_t,   e_t ~ U(0,1),   α_i ~ U(0.4, 0.8)

The AR(1) coefficient α_i is i.i.d. across nodes, so *neighbouring nodes
are uncorrelated* — the worst case for spatial clustering, which is the
point of the dataset (Figs 13, 15 show shrunken gains).

Estimation note.  ``e_t ~ U(0,1)`` has mean 1/2, so the process has a
non-zero level ``0.5/(1-α)``; a no-intercept AR(1) regression is then
biased toward 1 for *every* node (the level term dominates), which would
collapse all features into a tiny band and make the dataset useless for a
δ sweep.  We therefore fit the AR(1) coefficient jointly with an intercept
(equivalently, the model is ``x_t - m = α(x_{t-1} - m) + ẽ_t``), which is
consistent and recovers the i.i.d. α_i spread the experiments rely on.
This deviation from the paper's literal "initialized with α1 = 1, updated
every measurement" wording is recorded in DESIGN.md; the online estimator
still starts at α=1 before data arrives and refines with every
measurement, keeping the streaming character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro._validation import require_in_range, require_int_at_least
from repro.features import EuclideanMetric
from repro.geometry.topology import Topology, random_geometric_topology
from repro.perf.cache import cached_artifact

#: The paper's α range for the per-node AR(1) coefficient.
ALPHA_RANGE = (0.4, 0.8)


class OnlineAR1Ensemble:
    """Streaming AR(1)-with-intercept estimators for a whole network.

    Maintains per-node running sums so each measurement round updates every
    node's α estimate in O(1) vectorized work — the simulation-side stand-in
    for each node's on-mote recursive estimator.
    """

    def __init__(self, n: int):
        require_int_at_least(n, 1, "n")
        self.n = n
        self._count = 0
        self._sx = np.zeros(n)
        self._sy = np.zeros(n)
        self._sxx = np.zeros(n)
        self._sxy = np.zeros(n)

    def update(self, previous: np.ndarray, values: np.ndarray) -> None:
        """Absorb one measurement round: regress values on previous."""
        if previous.shape != (self.n,) or values.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},) arrays")
        self._count += 1
        self._sx += previous
        self._sy += values
        self._sxx += previous * previous
        self._sxy += previous * values

    @property
    def observations(self) -> int:
        """Number of measurement rounds absorbed."""
        return self._count

    def alphas(self) -> np.ndarray:
        """Current α estimates (α=1 until two observations arrive, as the
        paper initializes every node with α1 = 1)."""
        if self._count < 2:
            return np.ones(self.n)
        denominator = self._count * self._sxx - self._sx * self._sx
        numerator = self._count * self._sxy - self._sx * self._sy
        safe = np.abs(denominator) > 1e-12
        out = np.ones(self.n)
        out[safe] = numerator[safe] / denominator[safe]
        return out


@dataclass
class SyntheticDataset:
    """A generated uncorrelated dataset.

    Attributes
    ----------
    topology:
        Random geometric communication graph.
    features:
        Per-node fitted AR(1) coefficient (1-d feature), estimated online
        from ``readings`` streamed measurements.
    true_alphas:
        The ground-truth α_i values (never shown to the algorithms).
    estimator:
        The streaming ensemble, ready to absorb further measurements.
    """

    topology: Topology
    features: dict[Hashable, np.ndarray]
    true_alphas: dict[Hashable, float]
    estimator: OnlineAR1Ensemble
    _state: np.ndarray  # last measurement per node, for stream continuation

    def metric(self) -> EuclideanMetric:
        """The metric this dataset is clustered under."""
        return EuclideanMetric()

    @property
    def nodes(self) -> list[Hashable]:
        """Node ids in topology order."""
        return list(self.topology.graph.nodes)


@cached_artifact("1")
def generate_synthetic_dataset(
    n: int,
    *,
    seed: int,
    density: float = 0.8,
    readings: int = 2000,
) -> SyntheticDataset:
    """Generate the paper's synthetic dataset for an *n*-node network.

    *readings* is the number of streamed measurements used to fit each
    node's AR(1) model (the paper streams 100,000; a couple of thousand
    already converges the estimate to ~2 decimals, so tests and benchmarks
    default lower).  Deterministic per parameter set, so served from the
    artifact cache when ``REPRO_CACHE`` is set.
    """
    require_int_at_least(n, 1, "n")
    require_in_range(density, 0.1, 2.0, "density")
    require_int_at_least(readings, 10, "readings")
    rng = np.random.default_rng(seed)
    topology = random_geometric_topology(n, seed=seed, density=density, target_degree=4.0)
    nodes = list(topology.graph.nodes)

    alphas = rng.uniform(*ALPHA_RANGE, size=n)
    estimator = OnlineAR1Ensemble(n)
    state = rng.uniform(0.0, 1.0, size=n)
    for _ in range(readings):
        values = alphas * state + rng.uniform(0.0, 1.0, size=n)
        estimator.update(state, values)
        state = values

    fitted = estimator.alphas()
    features = {node: np.array([fitted[k]]) for k, node in enumerate(nodes)}
    true_alphas = {node: float(alphas[k]) for k, node in enumerate(nodes)}
    return SyntheticDataset(topology, features, true_alphas, estimator, state)


def stream_measurements(dataset: SyntheticDataset, steps: int, *, seed: int) -> np.ndarray:
    """Continue the per-node streams for *steps* rounds, updating estimates.

    Returns the fitted-α trajectory, shape ``(steps, n)`` in node order; the
    dataset's ``features`` are updated in place.  Used by the
    update-handling and scalability experiments.
    """
    require_int_at_least(steps, 1, "steps")
    rng = np.random.default_rng(seed)
    nodes = dataset.nodes
    n = len(nodes)
    alphas = np.array([dataset.true_alphas[node] for node in nodes])
    state = dataset._state
    out = np.empty((steps, n), dtype=np.float64)
    for step in range(steps):
        values = alphas * state + rng.uniform(0.0, 1.0, size=n)
        dataset.estimator.update(state, values)
        state = values
        out[step] = dataset.estimator.alphas()
    dataset._state = state
    for k, node in enumerate(nodes):
        dataset.features[node] = np.array([out[-1, k]])
    return out

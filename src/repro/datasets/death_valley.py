"""Death-Valley-like elevation dataset (paper §8.1).

The paper scatters sensors over the USGS EROS Death Valley elevation grid
and assigns each sensor the terrain elevation at its location (a *static*,
spatially correlated scalar feature; range 175–1996 m, 2500 samples, results
averaged over 5 random topologies).  The USGS archive is not available
offline, so we synthesize terrain with the **diamond–square** fractal
algorithm — the classic mid-point-displacement method whose output has the
same spatial-autocorrelation character as real terrain (smooth valley
floors, rugged ridges) — and rescale it to the published elevation range.

What the clustering experiments exercise is exactly this property: nearby
sensors read similar elevations, so cluster counts fall steeply as δ grows;
fractal terrain reproduces that behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro._validation import require_in_range, require_int_at_least
from repro.features import EuclideanMetric
from repro.geometry.topology import Topology, scatter_topology
from repro.perf.cache import cached_artifact

#: Published elevation range of the Death Valley grid (metres).
ELEVATION_RANGE = (175.0, 1996.0)


@dataclass
class DeathValleyDataset:
    """A generated terrain dataset: topology + per-node elevation feature."""

    topology: Topology
    features: dict[Hashable, np.ndarray]  # 1-d elevation features
    terrain: np.ndarray  # the full grid, for visualization / examples

    def metric(self) -> EuclideanMetric:
        """Elevation distance is plain absolute difference (1-d Euclidean)."""
        return EuclideanMetric()


def diamond_square(size_exponent: int, *, roughness: float = 0.55, seed: int = 0) -> np.ndarray:
    """Generate a (2^k + 1)² fractal height map via diamond–square.

    *roughness* in (0, 1) controls how fast displacement amplitude decays
    per subdivision: higher values give more rugged terrain.
    """
    require_int_at_least(size_exponent, 1, "size_exponent")
    require_in_range(roughness, 0.0, 1.0, "roughness", inclusive=False)
    rng = np.random.default_rng(seed)
    size = 2**size_exponent + 1
    grid = np.zeros((size, size), dtype=np.float64)
    for corner in [(0, 0), (0, size - 1), (size - 1, 0), (size - 1, size - 1)]:
        grid[corner] = rng.normal(0.0, 1.0)

    step = size - 1
    amplitude = 1.0
    while step > 1:
        half = step // 2
        # Diamond step: centre of each square gets the corner mean + noise.
        for y in range(half, size, step):
            for x in range(half, size, step):
                corners = (
                    grid[y - half, x - half]
                    + grid[y - half, x + half]
                    + grid[y + half, x - half]
                    + grid[y + half, x + half]
                ) / 4.0
                grid[y, x] = corners + rng.normal(0.0, amplitude)
        # Square step: edge mid-points get the mean of their diamond
        # neighbours + noise (edges wrap to 3-point means).
        for y in range(0, size, half):
            x_start = half if (y // half) % 2 == 0 else 0
            for x in range(x_start, size, step):
                total, count = 0.0, 0
                for dy, dx in ((-half, 0), (half, 0), (0, -half), (0, half)):
                    ny, nx_ = y + dy, x + dx
                    if 0 <= ny < size and 0 <= nx_ < size:
                        total += grid[ny, nx_]
                        count += 1
                grid[y, x] = total / count + rng.normal(0.0, amplitude)
        step = half
        amplitude *= roughness
    return grid


@cached_artifact("1")
def generate_death_valley_dataset(
    *,
    seed: int = 11,
    num_sensors: int = 2500,
    terrain_exponent: int = 7,
    roughness: float = 0.55,
    target_degree: float = 6.0,
) -> DeathValleyDataset:
    """Scatter *num_sensors* sensors over fractal terrain (see module doc).

    The per-seed terrain AND topology both vary with *seed*, matching the
    paper's "averaged over 5 different random topologies".  Deterministic
    per parameter set, so the output is served from the artifact cache
    when ``REPRO_CACHE`` is set (see :mod:`repro.perf.cache`).
    """
    require_int_at_least(num_sensors, 2, "num_sensors")
    rng = np.random.default_rng(seed)
    terrain = diamond_square(terrain_exponent, roughness=roughness, seed=seed)
    lo, hi = terrain.min(), terrain.max()
    terrain = ELEVATION_RANGE[0] + (terrain - lo) / (hi - lo) * (
        ELEVATION_RANGE[1] - ELEVATION_RANGE[0]
    )
    size = terrain.shape[0]

    side = float(size - 1)
    xy = rng.uniform(0.0, side, size=(num_sensors, 2))
    points = {i: (float(xy[i, 0]), float(xy[i, 1])) for i in range(num_sensors)}
    radio_range = side * math.sqrt(target_degree / (math.pi * max(num_sensors - 1, 1)))
    topology = scatter_topology(points, radio_range=radio_range)

    features = {
        i: np.array([_bilinear(terrain, xy[i, 0], xy[i, 1])]) for i in range(num_sensors)
    }
    return DeathValleyDataset(topology, features, terrain)


def _bilinear(grid: np.ndarray, x: float, y: float) -> float:
    """Bilinear interpolation of *grid* at continuous position (x, y)."""
    size = grid.shape[0]
    x = min(max(x, 0.0), size - 1.0)
    y = min(max(y, 0.0), size - 1.0)
    x0, y0 = int(x), int(y)
    x1, y1 = min(x0 + 1, size - 1), min(y0 + 1, size - 1)
    fx, fy = x - x0, y - y0
    top = grid[y0, x0] * (1 - fx) + grid[y0, x1] * fx
    bottom = grid[y1, x0] * (1 - fx) + grid[y1, x1] * fx
    return float(top * (1 - fy) + bottom * fy)

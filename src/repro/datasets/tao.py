"""Tao-like sea-surface-temperature dataset (paper §8.1).

The paper uses sea-surface temperature from the Tropical Atmosphere Ocean
(TAO) buoy array: a 6×9 grid between 2S–2N and 140W–165E, 10-minute
resolution for December 1998, range (19.57, 32.79), μ=25.61, σ=0.67.  That
archive is not available offline, so this module generates a synthetic
stand-in engineered to preserve exactly the properties the experiments
exercise:

- **Spatial regimes.**  The tropical Pacific splits into a handful of
  contiguous temperature zones (warm pool west, cold tongue east — Fig 1).
  We partition the 9 longitudes into ``num_zones`` contiguous zones.
- **Zone-coherent model coefficients.**  Each zone draws its own seasonal
  AR parameters ``(α1, β1, β2, β3)`` (with per-node jitter), and node data
  is generated *from that model family*:

      x_t = α1·x_{t-1} + β1·μ_{T-1} + β2·μ_{T-2} + β3·μ_{T-3} + ε_t

  with ``μ_{T-j}`` the node's own observed previous daily means and
  ``Σβ = 1 - α1`` so the process stays at the zone's temperature level.
  Fitting the paper's model to this data therefore recovers features that
  cluster by zone — the property the real SST regimes gave the authors.
- **Calibration.**  Zone bases span ~23.5–28 °C so the overall mean lands
  near the published 25.6 °C with a sub-degree within-zone σ.

Each node is initialized with a model trained on the previous month
(:func:`fit_features`), mirroring the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro._validation import require_int_at_least, require_non_negative
from repro.features import TAO_WEIGHTS, WeightedEuclideanMetric
from repro.geometry.topology import Topology, grid_topology
from repro.models.seasonal import SEASONAL_LAGS, TaoNodeModel
from repro.perf.cache import cached_artifact, get_cache

#: Grid shape of the TAO buoy array used by the paper.
TAO_ROWS, TAO_COLS = 6, 9
#: 10-minute resolution => 144 samples per day.
TAO_SAMPLES_PER_DAY = 144

#: Per-zone lag profiles for the seasonal betas (scaled by 1 - α1): west
#: zones weight recent days, east zones spread over longer memory.
_ZONE_LAG_PROFILES = np.array(
    [
        [0.70, 0.20, 0.10],
        [0.50, 0.30, 0.20],
        [0.30, 0.45, 0.25],
        [0.15, 0.35, 0.50],
        [0.10, 0.25, 0.65],
        [0.05, 0.20, 0.75],
    ]
)


@dataclass
class TaoDataset:
    """A generated Tao-like dataset.

    Attributes
    ----------
    topology:
        The 6×9 grid communication graph.
    training:
        Per-node "previous month" series used to initialize models.
    stream:
        Per-node measurement series for the experiment month.
    zone_of:
        Ground-truth zone id per node (for sanity checks; the algorithms
        never see it).
    true_coefficients:
        The generating ``(α1, β1, β2, β3)`` per node (ground truth).
    """

    topology: Topology
    training: dict[Hashable, np.ndarray]
    stream: dict[Hashable, np.ndarray]
    zone_of: dict[Hashable, int]
    true_coefficients: dict[Hashable, np.ndarray]
    samples_per_day: int = TAO_SAMPLES_PER_DAY

    def metric(self) -> WeightedEuclideanMetric:
        """The paper's weighted Euclidean metric with weights (0.5,0.3,0.2,0.1)."""
        return WeightedEuclideanMetric(TAO_WEIGHTS)


@cached_artifact("1")
def generate_tao_dataset(
    *,
    seed: int = 7,
    num_zones: int = 4,
    training_days: int = 31,
    stream_days: int = 31,
    samples_per_day: int = TAO_SAMPLES_PER_DAY,
    coefficient_jitter: float = 0.008,
    noise_sigma: float = 0.25,
    day_shock_sigma: float = 0.45,
) -> TaoDataset:
    """Generate a Tao-like SST dataset (see module docstring).

    Smaller ``samples_per_day`` / day counts make tests fast while keeping
    the same statistical structure; defaults match the paper's setup
    (10-minute resolution, a month-long stream).
    """
    require_int_at_least(num_zones, 1, "num_zones")
    if num_zones > _ZONE_LAG_PROFILES.shape[0]:
        raise ValueError(f"num_zones must be <= {_ZONE_LAG_PROFILES.shape[0]}")
    require_int_at_least(training_days, SEASONAL_LAGS + 1, "training_days")
    require_int_at_least(stream_days, 1, "stream_days")
    require_int_at_least(samples_per_day, 4, "samples_per_day")
    require_non_negative(coefficient_jitter, "coefficient_jitter")
    require_non_negative(noise_sigma, "noise_sigma")
    rng = np.random.default_rng(seed)
    topology = grid_topology(TAO_ROWS, TAO_COLS)

    # Contiguous longitudinal zones: warm pool (west) -> cold tongue (east).
    zone_of_col: dict[int, int] = {}
    for zone, cols in enumerate(np.array_split(np.arange(TAO_COLS), num_zones)):
        for col in cols:
            zone_of_col[int(col)] = zone
    zone_base = np.linspace(28.0, 23.5, num_zones)
    zone_alpha = np.linspace(0.75, 0.45, num_zones)

    total_days = training_days + stream_days
    training: dict[Hashable, np.ndarray] = {}
    stream: dict[Hashable, np.ndarray] = {}
    zone_of: dict[Hashable, int] = {}
    true_coefficients: dict[Hashable, np.ndarray] = {}

    # Temperature fluctuations are *regional*: all nodes of a zone share the
    # same innovation sequence (plus a small node-specific residual).  This
    # is physically faithful — buoys inside one SST regime see the same
    # synoptic weather — and it is what makes per-node fitted features
    # coherent within a zone: nodes regressing against near-identical
    # daily-mean trajectories incur near-identical estimation error, so
    # within-zone feature distances stay far below cross-zone distances.
    total_samples = total_days * samples_per_day
    zone_noise = rng.normal(0.0, noise_sigma, size=(num_zones, total_samples))
    zone_init = rng.normal(0.0, day_shock_sigma, size=(num_zones, SEASONAL_LAGS))

    for node in topology.graph.nodes:
        zone = zone_of_col[node % TAO_COLS]
        zone_of[node] = zone
        alpha = float(
            np.clip(zone_alpha[zone] + rng.normal(0.0, coefficient_jitter), 0.05, 0.95)
        )
        profile = _ZONE_LAG_PROFILES[zone] + rng.normal(0.0, coefficient_jitter, SEASONAL_LAGS)
        profile = np.clip(profile, 0.01, None)
        betas = profile / profile.sum() * (1.0 - alpha)
        true_coefficients[node] = np.concatenate(([alpha], betas))

        node_noise = zone_noise[zone] + rng.normal(0.0, 0.15 * noise_sigma, size=total_samples)
        series = _simulate_node(
            alpha,
            betas,
            base=float(zone_base[zone] + rng.normal(0.0, 0.15)),
            total_days=total_days,
            samples_per_day=samples_per_day,
            noise=node_noise,
            mean_init=zone_init[zone],
        )
        split = training_days * samples_per_day
        training[node] = series[:split]
        stream[node] = series[split:]

    return TaoDataset(topology, training, stream, zone_of, true_coefficients, samples_per_day)


def _simulate_node(
    alpha: float,
    betas: np.ndarray,
    *,
    base: float,
    total_days: int,
    samples_per_day: int,
    noise: np.ndarray,
    mean_init: np.ndarray,
) -> np.ndarray:
    """Simulate one node's series *exactly* from the seasonal model.

    The series follows ``x_t = α·x_{t-1} + β·(μ_{T-1},μ_{T-2},μ_{T-3}) + ε_t``
    where the μ's are the node's own *observed* previous daily means —
    exactly the regressors the fitted model uses, so OLS is consistent.
    Because ``Σβ = 1-α`` the daily-mean sequence is a driftless random walk
    (the day-to-day "weather" variation that identifies the β's).
    """
    daily_means = [base + float(mean_init[j]) for j in range(SEASONAL_LAGS)]
    x = base
    out = np.empty(total_days * samples_per_day, dtype=np.float64)
    idx = 0
    for _ in range(total_days):
        mu = np.array(daily_means[-SEASONAL_LAGS:])[::-1]  # mu_{T-1}, mu_{T-2}, mu_{T-3}
        drive = float(betas @ mu)
        day_start = idx
        for _ in range(samples_per_day):
            x = alpha * x + drive + noise[idx]
            out[idx] = x
            idx += 1
        daily_means.append(float(out[day_start:idx].mean()))
    return out


def fit_features(
    dataset: TaoDataset,
) -> tuple[dict[Hashable, TaoNodeModel], dict[Hashable, np.ndarray]]:
    """Initialize every node's seasonal model from the training month.

    Returns (models, features); *features* maps each node to its fitted
    ``(α1, β1, β2, β3)`` coefficient vector.  The fit is a pure function
    of the training series, so with ``REPRO_CACHE`` set the fitted models
    and features are content-addressed by the training data itself and a
    warm run skips the per-node RLS batch solves entirely.
    """
    cache = get_cache()
    if cache is not None:
        params = {
            "training": dataset.training,
            "samples_per_day": dataset.samples_per_day,
        }
        return cache.get_or_compute(
            "fit_features", params, lambda: _fit_features(dataset), salt="1"
        )
    return _fit_features(dataset)


def _fit_features(
    dataset: TaoDataset,
) -> tuple[dict[Hashable, TaoNodeModel], dict[Hashable, np.ndarray]]:
    models: dict[Hashable, TaoNodeModel] = {}
    features: dict[Hashable, np.ndarray] = {}
    for node in dataset.topology.graph.nodes:
        model = TaoNodeModel(dataset.samples_per_day)
        features[node] = model.fit(dataset.training[node])
        models[node] = model
    return models, features

"""Datasets used by the paper's evaluation (§8.1), rebuilt synthetically.

See DESIGN.md §2 for the substitution rationale (the real TAO / USGS
archives are not reachable offline; the generators preserve the spatial and
temporal structure the experiments exercise).
"""

from repro.datasets.death_valley import (
    ELEVATION_RANGE,
    DeathValleyDataset,
    diamond_square,
    generate_death_valley_dataset,
)
from repro.datasets.synthetic import (
    ALPHA_RANGE,
    SyntheticDataset,
    generate_synthetic_dataset,
    stream_measurements,
)
from repro.datasets.tao import (
    TAO_COLS,
    TAO_ROWS,
    TAO_SAMPLES_PER_DAY,
    TaoDataset,
    fit_features,
    generate_tao_dataset,
)

__all__ = [
    "ALPHA_RANGE",
    "DeathValleyDataset",
    "ELEVATION_RANGE",
    "SyntheticDataset",
    "TAO_COLS",
    "TAO_ROWS",
    "TAO_SAMPLES_PER_DAY",
    "TaoDataset",
    "diamond_square",
    "fit_features",
    "generate_death_valley_dataset",
    "generate_synthetic_dataset",
    "generate_tao_dataset",
    "stream_measurements",
]

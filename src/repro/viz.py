"""Terminal visualization of clusterings and fields (no plotting deps).

Renders cluster maps like the paper's Fig 1/Fig 5 as ASCII grids — enough
to eyeball whether a clustering tracks the underlying spatial structure
from a terminal or a CI log.

- :func:`render_clustering` — one character per node, letters identify
  clusters (grid topologies render as the grid; scattered topologies are
  binned onto a character raster).
- :func:`render_field` — shade a scalar field (e.g. temperature,
  elevation) with a density ramp.
- :func:`cluster_summary` — a text table of clusters, sizes and feature
  spans.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro._validation import require_int_at_least
from repro.core.delta import Clustering
from repro.geometry.topology import Topology

#: Cluster glyphs: letters, then digits, then punctuation; reused cyclically.
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
#: Density ramp for scalar fields, light to dark.
_RAMP = " .:-=+*#%@"


def render_clustering(
    topology: Topology,
    clustering: Clustering,
    *,
    width: int = 60,
    height: int | None = None,
) -> str:
    """ASCII cluster map: each node drawn as its cluster's glyph."""
    require_int_at_least(width, 2, "width")
    glyph_of = _cluster_glyphs(clustering)
    cells, rows, cols = _rasterize(topology, width, height)
    canvas = [[" "] * cols for _ in range(rows)]
    for (r, c), nodes in cells.items():
        # Majority cluster wins the cell; deterministic tie-break.
        counts: dict[str, int] = {}
        for node in nodes:
            glyph = glyph_of[clustering.root_of(node)]
            counts[glyph] = counts.get(glyph, 0) + 1
        canvas[r][c] = max(sorted(counts), key=lambda g: counts[g])
    return "\n".join("".join(row) for row in canvas)


def render_field(
    topology: Topology,
    values: Mapping[Hashable, float],
    *,
    width: int = 60,
    height: int | None = None,
) -> str:
    """ASCII heat map of a per-node scalar (mean per raster cell)."""
    require_int_at_least(width, 2, "width")
    lo = min(values.values())
    hi = max(values.values())
    span = (hi - lo) or 1.0
    cells, rows, cols = _rasterize(topology, width, height)
    canvas = [[" "] * cols for _ in range(rows)]
    for (r, c), nodes in cells.items():
        level = (np.mean([values[v] for v in nodes]) - lo) / span
        canvas[r][c] = _RAMP[min(int(level * (len(_RAMP) - 1)), len(_RAMP) - 1)]
    return "\n".join("".join(row) for row in canvas)


def cluster_summary(
    clustering: Clustering,
    features: Mapping[Hashable, np.ndarray],
    *,
    top: int = 10,
) -> str:
    """Text table of the *top* largest clusters with feature statistics."""
    glyph_of = _cluster_glyphs(clustering)
    rows = []
    for root, members in sorted(
        clustering.clusters().items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
    )[:top]:
        matrix = np.asarray([np.atleast_1d(features[v]) for v in members])
        rows.append(
            f"  {glyph_of[root]}  root={root!r:>8}  size={len(members):>4}  "
            f"feature mean={np.round(matrix.mean(axis=0), 3).tolist()}  "
            f"span={np.round(matrix.max(axis=0) - matrix.min(axis=0), 3).tolist()}"
        )
    header = f"{clustering.num_clusters} clusters; {len(clustering.assignment)} nodes"
    return "\n".join([header] + rows)


def _cluster_glyphs(clustering: Clustering) -> dict[Hashable, str]:
    ordered = sorted(
        clustering.clusters().items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
    )
    return {
        root: _GLYPHS[index % len(_GLYPHS)] for index, (root, _) in enumerate(ordered)
    }


def _rasterize(topology: Topology, width: int, height: int | None):
    """Bin nodes onto a (rows x cols) character raster."""
    bounds = topology.bounds
    cols = width
    if height is None:
        # Terminal characters are ~2x taller than wide.
        aspect = bounds.height / bounds.width if bounds.width else 1.0
        rows = max(2, int(width * aspect / 2))
    else:
        rows = require_int_at_least(height, 2, "height")
    cells: dict[tuple[int, int], list[Hashable]] = {}
    for node, (x, y) in topology.positions.items():
        c = min(int((x - bounds.xmin) / (bounds.width or 1.0) * (cols - 1)), cols - 1)
        r = min(int((y - bounds.ymin) / (bounds.height or 1.0) * (rows - 1)), rows - 1)
        r = rows - 1 - r  # screen rows grow downward
        cells.setdefault((r, c), []).append(node)
    return cells, rows, cols

"""Trace inspector: reconstruct what a run did from its JSONL trace.

Library API (:class:`TraceInspector`) and CLI (``python -m repro trace
run.jsonl``) over the event stream exported by
:meth:`repro.obs.trace.Tracer.export_jsonl`.  The inspector answers the
questions a misbehaving run raises:

- *what happened, overall?* — event counts by type, time span, node count
  (:meth:`TraceInspector.summary_text`);
- *what did node X see?* — a per-node timeline of every event the node is
  the subject of **or referenced by** (as ``src``/``dst``/``dead``/...),
  so a crash shows up in its neighbours' timelines too
  (:meth:`TraceInspector.node_timeline`);
- *why were messages dropped?* — drops grouped by structured reason
  (:meth:`TraceInspector.drop_summary`);
- *how fast did repair happen?* — per crashed node: crash time, first
  detection (orphan re-rooting / sentinel takeover), first repair notice,
  and the crash→repair latency (:meth:`TraceInspector.repair_report`);
- *what did the live service endure?* — for traces from ``repro serve``:
  stage restarts, shed/backpressure episodes, source retries and stalls,
  checkpoint write/restore activity, and degraded-coverage windows with
  their recovery times (:meth:`TraceInspector.serve_report`);
- *how were queries planned and cached?* — for traces with ``queries.*``
  events from the cost-model planner: plan choices per backend and op,
  estimate accuracy (mean and worst actual/estimated cost ratio), and
  cache hit/miss traffic with the generation span it crossed
  (:meth:`TraceInspector.queries_report`).

CLI usage::

    python -m repro trace run.jsonl                  # summary
    python -m repro trace run.jsonl --node 57        # node 57's timeline
    python -m repro trace run.jsonl --type msg.drop  # filter by type
    python -m repro trace run.jsonl --since 10 --until 40 --prefix elink.
    python -m repro trace run.jsonl --drops --repairs
    python -m repro trace serve.jsonl --serve        # live-service rollup
    python -m repro trace serve.jsonl --queries      # planner/cache rollup
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Any, Iterable, Sequence

from repro.obs.trace import TraceEvent, iter_jsonl

#: Payload keys that reference other nodes; used to pull an event into the
#: timeline of every node it mentions, not just its subject.  ``stage``,
#: ``source`` and ``reading_node`` are the serving layer's subjects
#: (``serve.*`` events), so ``--node ingest:src-0`` works too.
_NODE_REF_KEYS = ("src", "dst", "via", "dead", "by", "root", "owner", "stage", "source", "reading_node")

#: Event types marking the first protocol-level *detection* of a crash.
_DETECTION_TYPES = {"elink.orphan", "elink.takeover"}


class TraceInspector:
    """Query layer over a loaded trace (a list of :class:`TraceEvent`)."""

    def __init__(self, events: Sequence[TraceEvent]):
        self.events = sorted(events, key=lambda e: e.time)

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceInspector":
        """Load the JSONL trace at *path*."""
        return cls(list(iter_jsonl(path)))

    @classmethod
    def stream_jsonl(
        cls,
        path: str,
        *,
        types: Iterable[str] | None = None,
        prefix: str | None = None,
        node: Any = None,
        since: float | None = None,
        until: float | None = None,
    ) -> "TraceInspector":
        """Stream the trace at *path*, retaining only matching events.

        Equivalent to ``from_jsonl(path).filtered(...)`` but the
        non-matching events are decoded one line at a time and dropped
        immediately — a filtered question against a multi-gigabyte trace
        holds only its answer in memory, never the file.
        """
        type_set = set(types) if types is not None else None
        return cls(
            [
                event
                for event in iter_jsonl(path)
                if _matches(event, type_set, prefix, node, since, until)
            ]
        )

    # -- basic shape ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first, last) event timestamps; (0, 0) for an empty trace."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def nodes(self) -> list[Any]:
        """Every distinct subject node, sorted by repr."""
        return sorted({e.node for e in self.events if e.node is not None}, key=repr)

    def type_counts(self) -> Counter:
        """Event counts by type."""
        return Counter(e.type for e in self.events)

    # -- filtering ------------------------------------------------------
    def filtered(
        self,
        *,
        types: Iterable[str] | None = None,
        prefix: str | None = None,
        node: Any = None,
        since: float | None = None,
        until: float | None = None,
    ) -> "TraceInspector":
        """A new inspector over the matching subset of events.

        ``node`` matches the subject *or* any node-reference payload key,
        so a node's view includes messages sent to it and repairs of it.
        """
        type_set = set(types) if types is not None else None
        return TraceInspector(
            [
                event
                for event in self.events
                if _matches(event, type_set, prefix, node, since, until)
            ]
        )

    def node_timeline(self, node: Any) -> list[TraceEvent]:
        """Every event involving *node* (subject or referenced), in time order."""
        return self.filtered(node=node).events

    # -- diagnosis ------------------------------------------------------
    def drop_summary(self) -> Counter:
        """Structured-drop counts keyed by reason (``msg.drop`` events)."""
        return Counter(
            e.data.get("reason", "?") for e in self.events if e.type == "msg.drop"
        )

    def repair_report(self) -> list[dict[str, Any]]:
        """Per crashed node: crash / detection / repair times and latency.

        One dict per ``node.crash`` event (recoveries open a new entry if
        the node crashes again), with ``detect_time``/``repair_time`` of
        ``None`` when the trace holds no matching event — a stall worth
        investigating, which is the point of this report.
        """
        reports: list[dict[str, Any]] = []
        open_by_node: dict[Any, dict[str, Any]] = {}
        for event in self.events:
            if event.type == "node.crash":
                entry = {
                    "node": event.node,
                    "crash_time": event.time,
                    "detect_time": None,
                    "detect_kind": None,
                    "repair_time": None,
                    "repair_kind": None,
                    "repair_by": None,
                    "latency": None,
                }
                reports.append(entry)
                open_by_node[event.node] = entry
                continue
            if event.type in _DETECTION_TYPES:
                entry = open_by_node.get(event.data.get("dead"))
                if entry is not None and entry["detect_time"] is None:
                    entry["detect_time"] = event.time
                    entry["detect_kind"] = event.type
                continue
            if event.type == "repair.note":
                entry = open_by_node.get(event.data.get("dead"))
                if entry is not None and entry["repair_time"] is None:
                    entry["repair_time"] = event.time
                    entry["repair_kind"] = event.data.get("kind")
                    entry["repair_by"] = event.node
                    entry["latency"] = event.time - entry["crash_time"]
                    # A repair implies detection: the probe timeout that
                    # initiates a failover is itself the detection, and it
                    # can precede the elink.takeover event (which fires
                    # when the takeover *order arrives*).  Events are
                    # processed in time order, so first evidence wins.
                    if entry["detect_time"] is None:
                        entry["detect_time"] = event.time
                        entry["detect_kind"] = "repair.note"
        return reports

    def repair_latencies(self) -> list[float]:
        """Crash→first-repair latencies for every repaired crash."""
        return [
            r["latency"] for r in self.repair_report() if r["latency"] is not None
        ]

    def serve_report(self) -> dict[str, Any] | None:
        """Rollup of the ``serve.*`` event family, or None if absent.

        Summarizes what the resilience machinery of a live service run
        actually did: stage crashes/restarts/giveups per supervised
        stage, shed and backpressure episodes per queue, source
        retries/stalls/malformed readings per ingest source, checkpoint
        write/restore/reject activity, degraded-coverage episodes
        (paired ``serve.degraded`` → ``serve.recovered``, with the
        coverage floor each reached), and the run's lifecycle endpoints
        (resume, drain reason, exit code).
        """
        serve = [e for e in self.events if e.type.startswith("serve.")]
        if not serve:
            return None
        report: dict[str, Any] = {
            "events": len(serve),
            "resumed": None,
            "drain": None,
            "exit": None,
            "stage_crashes": Counter(),
            "stage_giveups": [],
            "shed_episodes": Counter(),
            "shed_total": Counter(),
            "backpressure_episodes": Counter(),
            "source_retries": Counter(),
            "source_stalls": Counter(),
            "malformed": Counter(),
            "checkpoint_writes": 0,
            "checkpoint_last_seq": None,
            "checkpoint_restores": 0,
            "checkpoint_rejected": 0,
            "degraded_episodes": [],
        }
        open_degraded: dict[str, Any] | None = None
        for event in serve:
            kind = event.type[len("serve."):]
            data = event.data
            if kind == "resumed":
                report["resumed"] = {"time": event.time, "seq": data.get("seq")}
            elif kind == "drain":
                report["drain"] = {"time": event.time, "reason": data.get("reason")}
            elif kind == "exit":
                report["exit"] = {
                    "time": event.time,
                    "code": data.get("code"),
                    "reason": data.get("reason"),
                }
            elif kind == "stage_crash":
                report["stage_crashes"][data.get("stage")] += 1
            elif kind == "stage_giveup":
                report["stage_giveups"].append(data.get("stage"))
            elif kind == "shed_episode":
                report["shed_episodes"][event.node] += 1
                report["shed_total"][event.node] += data.get("count", 0)
            elif kind == "backpressure":
                report["backpressure_episodes"][event.node] += 1
            elif kind == "source_retry":
                report["source_retries"][data.get("source")] += 1
            elif kind == "source_stall":
                report["source_stalls"][data.get("source")] += 1
            elif kind == "reading_malformed":
                report["malformed"][data.get("source")] += 1
            elif kind == "checkpoint_write":
                report["checkpoint_writes"] += 1
                report["checkpoint_last_seq"] = data.get("seq")
            elif kind == "checkpoint_restore":
                report["checkpoint_restores"] += 1
            elif kind == "checkpoint_rejected":
                report["checkpoint_rejected"] += 1
            elif kind == "degraded":
                if open_degraded is None:
                    open_degraded = {
                        "start": event.time,
                        "end": None,
                        "duration": None,
                        "floor": data.get("coverage"),
                    }
                    report["degraded_episodes"].append(open_degraded)
                else:
                    floor = data.get("coverage")
                    if floor is not None and (
                        open_degraded["floor"] is None or floor < open_degraded["floor"]
                    ):
                        open_degraded["floor"] = floor
            elif kind == "recovered" and open_degraded is not None:
                open_degraded["end"] = event.time
                open_degraded["duration"] = event.time - open_degraded["start"]
                open_degraded = None
        return report

    def queries_report(self) -> dict[str, Any] | None:
        """Rollup of the ``queries.*`` event family, or None if absent.

        Summarizes the cost-model planner's behaviour over the trace:
        how many queries ran per operation, which backend each plan
        chose, how accurate the cost model was (``actual/estimated``
        ratios over ``queries.execute`` events), and how the result
        cache behaved (hits/misses and the structure-generation span
        the trace covers).
        """
        queries = [e for e in self.events if e.type.startswith("queries.")]
        if not queries:
            return None
        report: dict[str, Any] = {
            "events": len(queries),
            "executed": Counter(),
            "plans": Counter(),
            "cache_hits": Counter(),
            "cache_misses": Counter(),
            "generations": set(),
        }
        ratios: list[float] = []
        for event in queries:
            kind = event.type[len("queries."):]
            data = event.data
            if kind == "plan":
                report["plans"][data.get("backend")] += 1
            elif kind == "execute":
                report["executed"][data.get("op")] += 1
                estimated = data.get("estimated")
                actual = data.get("actual")
                if estimated and actual is not None:
                    ratios.append(actual / estimated)
            elif kind == "cache_hit":
                report["cache_hits"][data.get("op")] += 1
                report["generations"].add(data.get("generation"))
            elif kind == "cache_miss":
                report["cache_misses"][data.get("op")] += 1
                report["generations"].add(data.get("generation"))
        report["estimate_ratio_mean"] = (
            round(sum(ratios) / len(ratios), 3) if ratios else None
        )
        report["estimate_ratio_worst"] = (
            round(max(ratios), 3) if ratios else None
        )
        report["generations"] = sorted(
            g for g in report["generations"] if g is not None
        )
        return report

    def shard_report(self) -> dict[str, Any] | None:
        """Rollup of the ``shard.*`` event family, or None if absent.

        Summarizes a sharded-engine run: how many epoch barriers the
        coordinator opened (``shard.epoch``), how much work they carried,
        how many cross-shard boundary messages crossed the barriers
        (``shard.boundary``), and how evenly the per-shard dispatch load
        was balanced (``shard.queues`` depth totals).
        """
        epochs = [e for e in self.events if e.type == "shard.epoch"]
        if not epochs:
            return None
        entries = sum(e.data.get("entries", 0) for e in epochs)
        boundary = sum(
            e.data.get("messages", 0)
            for e in self.events
            if e.type == "shard.boundary"
        )
        depths: list[int] = []
        for event in self.events:
            if event.type != "shard.queues":
                continue
            for shard, depth in enumerate(event.data.get("depths", ())):
                while len(depths) <= shard:
                    depths.append(0)
                depths[shard] += depth
        total_dispatch = sum(depths)
        balance = (
            round(max(depths) * len(depths) / total_dispatch, 3)
            if total_dispatch
            else None
        )
        return {
            "epochs": len(epochs),
            "entries": entries,
            "entries_per_epoch": round(entries / len(epochs), 1),
            "boundary_messages": boundary,
            "shard_dispatch": depths,
            "balance_ratio": balance,
        }

    def shard_text(self) -> str:
        """Render the ``shard.*`` rollup (see :meth:`shard_report`)."""
        report = self.shard_report()
        if report is None:
            return "no shard.* events in trace"
        lines = [
            f"shards: {report['epochs']} epoch barriers, "
            f"{report['entries']} dispatch entries "
            f"({report['entries_per_epoch']}/epoch)",
            f"  cross-shard boundary messages: {report['boundary_messages']}",
        ]
        if report["shard_dispatch"]:
            per_shard = ", ".join(
                f"s{shard}={count}"
                for shard, count in enumerate(report["shard_dispatch"])
            )
            line = f"  dispatch by shard: {per_shard}"
            if report["balance_ratio"] is not None:
                line += f" (max/mean balance {report['balance_ratio']}x)"
            lines.append(line)
        return "\n".join(lines)

    def queries_text(self) -> str:
        """Render the ``queries.*`` rollup (see :meth:`queries_report`)."""
        report = self.queries_report()
        if report is None:
            return "no queries.* events in trace"
        lines = [f"queries: {report['events']} events"]
        if report["executed"]:
            per_op = ", ".join(
                f"{op}={count}" for op, count in sorted(report["executed"].items())
            )
            lines.append(f"  executed: {sum(report['executed'].values())} ({per_op})")
        if report["plans"]:
            per_backend = ", ".join(
                f"{backend}={count}" for backend, count in sorted(report["plans"].items())
            )
            lines.append(f"  plans: {per_backend}")
        if report["estimate_ratio_mean"] is not None:
            lines.append(
                f"  cost model: actual/estimated mean "
                f"{report['estimate_ratio_mean']}x, worst "
                f"{report['estimate_ratio_worst']}x"
            )
        hits, misses = report["cache_hits"], report["cache_misses"]
        if hits or misses:
            total = sum(hits.values()) + sum(misses.values())
            rate = sum(hits.values()) / total if total else 0.0
            lines.append(
                f"  cache: {sum(hits.values())} hits, {sum(misses.values())} "
                f"misses ({rate:.0%} hit rate)"
            )
        if report["generations"]:
            first, last = report["generations"][0], report["generations"][-1]
            lines.append(f"  structure generations seen: {first}..{last}")
        return "\n".join(lines)

    def serve_text(self) -> str:
        """Render the ``serve.*`` rollup (see :meth:`serve_report`)."""
        report = self.serve_report()
        if report is None:
            return "no serve.* events in trace"
        lines = [f"serve: {report['events']} events"]
        if report["resumed"] is not None:
            lines.append(
                f"  resumed from checkpoint at t={report['resumed']['time']:.2f} "
                f"(seq {report['resumed']['seq']})"
            )
        crashes = report["stage_crashes"]
        if crashes:
            per_stage = ", ".join(f"{s}={c}" for s, c in sorted(crashes.items(), key=lambda kv: str(kv[0])))
            lines.append(f"  stage crashes/restarts: {sum(crashes.values())} ({per_stage})")
        for stage in report["stage_giveups"]:
            lines.append(f"  stage GAVE UP (crash budget exhausted): {stage}")
        for name, episodes in sorted(report["shed_episodes"].items(), key=lambda kv: str(kv[0])):
            lines.append(
                f"  shed: {report['shed_total'][name]} readings over "
                f"{episodes} episode(s) on {name!r}"
            )
        for name, episodes in sorted(report["backpressure_episodes"].items(), key=lambda kv: str(kv[0])):
            lines.append(f"  backpressure: {episodes} episode(s) on {name!r}")
        for source, count in sorted(report["source_retries"].items(), key=lambda kv: str(kv[0])):
            lines.append(f"  source retries: {count} on {source!r}")
        for source, count in sorted(report["source_stalls"].items(), key=lambda kv: str(kv[0])):
            lines.append(f"  source stalls: {count} on {source!r}")
        for source, count in sorted(report["malformed"].items(), key=lambda kv: str(kv[0])):
            lines.append(f"  malformed readings: {count} from {source!r}")
        if report["checkpoint_writes"] or report["checkpoint_restores"] or report["checkpoint_rejected"]:
            lines.append(
                f"  checkpoints: {report['checkpoint_writes']} written "
                f"(last seq {report['checkpoint_last_seq']}), "
                f"{report['checkpoint_restores']} restored, "
                f"{report['checkpoint_rejected']} rejected"
            )
        for episode in report["degraded_episodes"]:
            floor = episode["floor"]
            floor_text = f"coverage floor {floor:.3f}" if floor is not None else "coverage floor ?"
            if episode["end"] is not None:
                lines.append(
                    f"  degraded t=[{episode['start']:.2f}, {episode['end']:.2f}] "
                    f"({episode['duration']:.2f}s, {floor_text}) — recovered"
                )
            else:
                lines.append(
                    f"  degraded from t={episode['start']:.2f} ({floor_text}) — NOT recovered"
                )
        if report["exit"] is not None:
            lines.append(
                f"  exit {report['exit']['code']} ({report['exit']['reason']}) "
                f"at t={report['exit']['time']:.2f}"
            )
        return "\n".join(lines)

    # -- rendering ------------------------------------------------------
    def summary_text(self) -> str:
        """Human-readable run summary (the default CLI output)."""
        first, last = self.span
        lines = [
            f"trace: {len(self.events)} events, "
            f"t = [{first:.2f}, {last:.2f}], {len(self.nodes())} nodes",
            "",
            "events by type:",
        ]
        for type_name, count in sorted(
            self.type_counts().items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {type_name:<22} {count:>9}")
        drops = self.drop_summary()
        if drops:
            lines += ["", "drops by reason:"]
            for reason, count in drops.most_common():
                lines.append(f"  {reason:<22} {count:>9}")
        repairs = self.repair_report()
        if repairs:
            latencies = self.repair_latencies()
            repaired = len(latencies)
            lines += [
                "",
                f"crashes: {len(repairs)}, repaired: {repaired}"
                + (
                    f", mean repair latency {sum(latencies) / repaired:.1f}"
                    if repaired
                    else ""
                ),
            ]
        if self.serve_report() is not None:
            lines += ["", self.serve_text()]
        if self.queries_report() is not None:
            lines += ["", self.queries_text()]
        if self.shard_report() is not None:
            lines += ["", self.shard_text()]
        return "\n".join(lines)

    def timeline_text(self, node: Any, limit: int | None = None) -> str:
        """Render *node*'s timeline, one event per line."""
        events = self.node_timeline(node)
        shown = events if limit is None else events[:limit]
        lines = [f"timeline of node {node!r}: {len(events)} events"]
        for event in shown:
            detail = " ".join(f"{k}={_short(v)}" for k, v in event.data.items())
            subject = "" if event.node == node else f" @{event.node!r}"
            lines.append(f"  t={event.time:9.2f}  {event.type:<20}{subject}  {detail}")
        if limit is not None and len(events) > limit:
            lines.append(f"  ... {len(events) - limit} more (raise --limit)")
        return "\n".join(lines)

    def repair_text(self) -> str:
        """Render the crash→detection→repair table."""
        reports = self.repair_report()
        if not reports:
            return "no crashes in trace"
        lines = ["crash -> detection -> repair:"]
        for r in reports:
            detect = (
                f"detected t={r['detect_time']:.2f} ({r['detect_kind']})"
                if r["detect_time"] is not None
                else "never detected"
            )
            repair = (
                f"repaired t={r['repair_time']:.2f} ({r['repair_kind']} by "
                f"{r['repair_by']!r}, latency {r['latency']:.2f})"
                if r["repair_time"] is not None
                else "never repaired"
            )
            lines.append(
                f"  node {r['node']!r}: crash t={r['crash_time']:.2f} -> "
                f"{detect} -> {repair}"
            )
        return "\n".join(lines)


def _matches(
    event: TraceEvent,
    type_set: set[str] | None,
    prefix: str | None,
    node: Any,
    since: float | None,
    until: float | None,
) -> bool:
    """One event against the shared filter set (streaming and in-memory)."""
    if type_set is not None and event.type not in type_set:
        return False
    if prefix is not None and not event.type.startswith(prefix):
        return False
    if node is not None and not _involves(event, node):
        return False
    if since is not None and event.time < since:
        return False
    if until is not None and event.time > until:
        return False
    return True


def _involves(event: TraceEvent, node: Any) -> bool:
    """Whether *event* concerns *node* as subject or payload reference."""
    if event.node == node:
        return True
    data = event.data
    for key in _NODE_REF_KEYS:
        if key in data and data[key] == node:
            return True
    return False


def _short(value: Any, limit: int = 40) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _parse_node(raw: str) -> Any:
    """CLI node ids: prefer int (the common case), fall back to string."""
    try:
        return int(raw)
    except ValueError:
        return raw


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect a JSONL protocol trace (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument("path", help="JSONL trace written by Tracer.export_jsonl")
    parser.add_argument("--node", help="show this node's timeline")
    parser.add_argument(
        "--type", action="append", default=None, help="keep only this event type (repeatable)"
    )
    parser.add_argument("--prefix", help="keep only event types with this prefix (e.g. msg.)")
    parser.add_argument("--since", type=float, default=None, help="keep events at/after this time")
    parser.add_argument("--until", type=float, default=None, help="keep events at/before this time")
    parser.add_argument("--limit", type=int, default=100, help="max timeline lines (default 100)")
    parser.add_argument("--drops", action="store_true", help="print only the drop summary")
    parser.add_argument("--repairs", action="store_true", help="print the crash/repair table")
    parser.add_argument(
        "--serve", action="store_true", help="print the serve.* rollup (live service runs)"
    )
    parser.add_argument(
        "--queries",
        action="store_true",
        help="print the queries.* rollup (cost-model planner and result cache)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro trace``."""
    args = build_parser().parse_args(argv)
    if args.limit < 1:
        print("--limit must be >= 1", file=sys.stderr)
        return 2
    # One streaming pass with the filters applied per decoded line: only
    # the events this invocation can actually print survive the read.  A
    # --node-only query also filters by node at read time (the rollup
    # sections aggregate across nodes, so node stays in-memory for them).
    node_only = args.node is not None and not (
        args.drops or args.repairs or args.serve or args.queries
    )
    try:
        inspector = TraceInspector.stream_jsonl(
            args.path,
            types=args.type,
            prefix=args.prefix,
            node=_parse_node(args.node) if node_only else None,
            since=args.since,
            until=args.until,
        )
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    try:
        printed = False
        if args.drops:
            drops = inspector.drop_summary()
            if drops:
                for reason, count in drops.most_common():
                    print(f"{reason:<22} {count:>9}")
            else:
                print("no drops in trace")
            printed = True
        if args.repairs:
            print(inspector.repair_text())
            printed = True
        if args.serve:
            print(inspector.serve_text())
            printed = True
        if args.queries:
            print(inspector.queries_text())
            printed = True
        if args.node is not None:
            print(inspector.timeline_text(_parse_node(args.node), limit=args.limit))
            printed = True
        if not printed:
            print(inspector.summary_text())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like
        # other line-oriented tools instead of dumping a traceback.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
